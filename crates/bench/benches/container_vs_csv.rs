//! Cold-start ingestion: the binary `.convoy` columnar container against
//! plain CSV, on identical databases. "Cold" means every iteration starts
//! from raw bytes — the CSV side pays text parsing per sample, the container
//! side pays one header walk plus per-block CRC + column memcpy — so the
//! ratio is the zero-parse dividend `convoy convert` buys. The windowed
//! group measures the other half of the trade: the block time-index lets a
//! `--from/--to` query skip non-intersecting blocks entirely, which no flat
//! text format can do without reading every line.
//!
//! Results are recorded in `BENCH_container_vs_csv.json` at the repo root,
//! next to `BENCH_baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::io::Cursor;
use traj_datasets::container::DEFAULT_BLOCK_RECORDS;
use traj_datasets::io::{read_csv, write_csv};
use traj_datasets::{generate, write_container, ContainerReader, DatasetProfile};
use trajectory::{TimeInterval, TrajectoryDatabase};

/// One prepared dataset: the same database serialized both ways.
struct Corpus {
    label: &'static str,
    db: TrajectoryDatabase,
    csv: Vec<u8>,
    convoy: Vec<u8>,
}

fn corpus(label: &'static str, scale: f64, seed: u64) -> Corpus {
    let data = generate(&DatasetProfile::truck().scaled(scale), seed);
    let mut csv = Vec::new();
    write_csv(&data.database, &mut csv).expect("CSV encode");
    let mut convoy = Vec::new();
    write_container(
        &data.database,
        &mut Cursor::new(&mut convoy),
        DEFAULT_BLOCK_RECORDS,
    )
    .expect("container encode");
    Corpus {
        label,
        db: data.database,
        csv,
        convoy,
    }
}

fn corpora() -> Vec<Corpus> {
    vec![
        corpus("truck_0.05", 0.05, 20080824),
        corpus("truck_0.20", 0.20, 20080824),
    ]
}

fn bench_cold_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/cold_load");
    for corpus in corpora() {
        let points = corpus.db.total_points();
        let id = format!("{} ({points} pts)", corpus.label);
        group.bench_with_input(BenchmarkId::new("csv", &id), &corpus, |b, corpus| {
            b.iter(|| {
                let db = read_csv(corpus.csv.as_slice()).expect("CSV parse");
                db.total_points()
            })
        });
        group.bench_with_input(BenchmarkId::new("convoy", &id), &corpus, |b, corpus| {
            b.iter(|| {
                let mut reader =
                    ContainerReader::open(Cursor::new(corpus.convoy.as_slice())).expect("open");
                let (db, _) = reader.load().expect("decode");
                db.total_points()
            })
        });
        // The steady-state container path: reader (and its decode buffers)
        // survives across loads, as in `ContainerSource`.
        group.bench_with_input(
            BenchmarkId::new("convoy_warm", &id),
            &corpus,
            |b, corpus| {
                let mut reader =
                    ContainerReader::open(Cursor::new(corpus.convoy.as_slice())).expect("open");
                b.iter(|| {
                    let (db, _) = reader.load().expect("decode");
                    db.total_points()
                })
            },
        );
    }
    group.finish();
}

fn bench_windowed_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/windowed_load");
    for corpus in corpora() {
        let domain = corpus.db.time_domain().expect("non-empty");
        let third = (domain.end - domain.start) / 3;
        let window = TimeInterval::new(domain.start + third, domain.start + 2 * third);
        let id = corpus.label;
        // CSV has no index: a windowed query parses everything, then trims.
        group.bench_with_input(
            BenchmarkId::new("csv_parse_restrict", id),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let db = read_csv(corpus.csv.as_slice()).expect("CSV parse");
                    db.restrict(window).total_points()
                })
            },
        );
        // The container prunes by block time range before decoding.
        group.bench_with_input(
            BenchmarkId::new("convoy_pruned", id),
            &corpus,
            |b, corpus| {
                let mut reader =
                    ContainerReader::open(Cursor::new(corpus.convoy.as_slice())).expect("open");
                b.iter(|| {
                    let (db, stats) = reader.load_window(window).expect("decode");
                    (db.total_points(), stats.blocks_read)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cold_load, bench_windowed_load);
criterion_main!(benches);
