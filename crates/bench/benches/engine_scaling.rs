//! Criterion bench for the **convoy engine**: CMC runtime under the three
//! execution engines — per-tick snapshot extraction (the paper-literal
//! baseline), the swept single-pass cursor, and the time-partitioned
//! parallel driver — on the Figure-12-scale dataset profiles.

use convoy_bench::{bench_scale, prepared};
use convoy_core::CmcEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;

fn engines() -> Vec<(&'static str, CmcEngine)> {
    vec![
        ("per-tick", CmcEngine::PerTick),
        ("swept", CmcEngine::Swept),
        ("parallel-2", CmcEngine::Parallel { threads: 2 }),
        ("parallel-all", CmcEngine::Parallel { threads: 0 }),
    ]
}

fn bench_engine_scaling(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        for (label, engine) in engines() {
            group.bench_with_input(
                BenchmarkId::new(label, name.name()),
                &engine,
                |b, engine| b.iter(|| engine.run(&data.dataset.database, &data.query)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
