//! Criterion bench for **Figure 12**: CMC versus the CuTS family on each
//! dataset profile.

use convoy_bench::{bench_scale, prepared, run_method};
use convoy_core::Method;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;

fn bench_fig12(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig12_cmc_vs_cuts");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        for method in Method::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.name(), name.name()),
                &method,
                |b, &method| b.iter(|| run_method(&data, method, None)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
