//! Criterion bench for **Figure 13**: the three stages of a CuTS run
//! (simplification, filter, refinement) measured separately on the Cattle-
//! and Taxi-like profiles.

use convoy_bench::{bench_scale, prepared};
use convoy_core::cuts::filter::{filter_simplified, simplify_database};
use convoy_core::cuts::refine::{refine, refine_partitions};
use convoy_core::{auto_delta, CutsConfig, CutsVariant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;

fn bench_fig13(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig13_breakdown");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));

    for name in [ProfileName::Cattle, ProfileName::Taxi] {
        let data = prepared(name, scale);
        for variant in CutsVariant::ALL {
            let config = CutsConfig::new(variant);
            let delta = auto_delta(&data.dataset.database, data.query.e);
            let simplified = simplify_database(&data.dataset.database, &config, delta);
            let filter_output = filter_simplified(
                &simplified,
                &data.dataset.database,
                &data.query,
                &config,
                delta,
            );

            group.bench_with_input(
                BenchmarkId::new(format!("{variant}/simplification"), name.name()),
                &delta,
                |b, &delta| b.iter(|| simplify_database(&data.dataset.database, &config, delta)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{variant}/filter"), name.name()),
                &delta,
                |b, &delta| {
                    b.iter(|| {
                        filter_simplified(
                            &simplified,
                            &data.dataset.database,
                            &data.query,
                            &config,
                            delta,
                        )
                    })
                },
            );
            // The refinement Discovery actually runs: the coverage fold over
            // the filter's partition clusters.
            group.bench_with_input(
                BenchmarkId::new(format!("{variant}/refinement"), name.name()),
                &(),
                |b, _| {
                    b.iter(|| {
                        refine_partitions(
                            &data.dataset.database,
                            &data.query,
                            &filter_output.partitions,
                        )
                    })
                },
            );
            // The paper-literal Algorithm 3 (per-candidate windowed CMC),
            // kept for comparison against the coverage fold.
            group.bench_with_input(
                BenchmarkId::new(format!("{variant}/refinement-per-candidate"), name.name()),
                &(),
                |b, _| {
                    b.iter(|| {
                        refine(
                            &data.dataset.database,
                            &data.query,
                            &filter_output.candidates,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
