//! Criterion bench for **Figure 14**: CuTS* with the global tolerance versus
//! the per-segment actual tolerance in its filter range searches.

use convoy_bench::{bench_scale, prepared, run_method};
use convoy_core::{CutsConfig, CutsVariant, Method};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;
use traj_simplify::ToleranceMode;

fn bench_fig14(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig14_actual_tolerance");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        for mode in [ToleranceMode::Global, ToleranceMode::Actual] {
            group.bench_with_input(
                BenchmarkId::new(mode.name(), name.name()),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        let config =
                            CutsConfig::new(CutsVariant::CutsStar).with_tolerance_mode(mode);
                        run_method(&data, Method::CutsStar, Some(config))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
