//! Criterion bench for **Figure 15**: elapsed time of DP, DP+ and DP* as the
//! tolerance δ grows, on the Cattle-like profile.

use convoy_bench::{bench_scale, prepared};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;
use traj_simplify::SimplificationMethod;

fn bench_fig15(c: &mut Criterion) {
    let scale = bench_scale();
    let data = prepared(ProfileName::Cattle, scale);
    let mut group = c.benchmark_group("fig15_simplification");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    let e = data.query.e;
    for method in SimplificationMethod::ALL {
        for fraction in [1.0 / 30.0, 0.1, 7.0 / 30.0] {
            let delta = fraction * e;
            group.bench_with_input(
                BenchmarkId::new(method.name(), format!("delta={delta:.0}")),
                &delta,
                |b, &delta| {
                    b.iter(|| {
                        data.dataset
                            .database
                            .iter()
                            .map(|(_, traj)| method.simplify(traj, delta))
                            .collect::<Vec<_>>()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
