//! Criterion bench for **Figure 16**: total discovery time of the CuTS family
//! as the simplification tolerance δ grows (Car- and Taxi-like profiles).

use convoy_bench::{bench_scale, prepared, run_method};
use convoy_core::{CutsConfig, Method};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;

fn bench_fig16(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig16_delta");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for name in [ProfileName::Car, ProfileName::Taxi] {
        let data = prepared(name, scale);
        let e = data.query.e;
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            for fraction in [0.125, 1.0, 2.75] {
                let delta = fraction * e;
                let config = CutsConfig::new(method.cuts_variant().unwrap()).with_delta(delta);
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}/{}", name.name(), method.name()),
                        format!("delta={delta:.0}"),
                    ),
                    &config,
                    |b, config| b.iter(|| run_method(&data, method, Some(*config))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig16);
criterion_main!(benches);
