//! Criterion bench for **Figure 17**: total discovery time of the CuTS family
//! as the time-partition length λ grows (Truck- and Cattle-like profiles).

use convoy_bench::{bench_scale, prepared, run_method};
use convoy_core::{CutsConfig, Method};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;

fn bench_fig17(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig17_lambda");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    let sweeps = [
        (ProfileName::Truck, [5usize, 10, 20]),
        (ProfileName::Cattle, [10usize, 30, 70]),
    ];
    for (name, lambdas) in sweeps {
        let data = prepared(name, scale);
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            for lambda in lambdas {
                let config = CutsConfig::new(method.cuts_variant().unwrap()).with_lambda(lambda);
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}/{}", name.name(), method.name()),
                        format!("lambda={lambda}"),
                    ),
                    &config,
                    |b, config| b.iter(|| run_method(&data, method, Some(*config))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig17);
criterion_main!(benches);
