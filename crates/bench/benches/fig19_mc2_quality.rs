//! Criterion bench for **Figure 19**: the cost of the MC2 moving-cluster
//! baseline as the overlap threshold θ varies. (The accuracy side of
//! Figure 19 is produced by the `fig19` binary; this bench tracks MC2's
//! running time so regressions in the baseline are visible too.)

use convoy_bench::{bench_scale, prepared};
use convoy_core::{mc2, Mc2Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;

fn bench_fig19(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("fig19_mc2_quality");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        for theta in [0.4, 1.0] {
            let config = Mc2Config {
                e: data.query.e,
                m: data.query.m,
                theta,
            };
            group.bench_with_input(
                BenchmarkId::new(name.name(), format!("theta={theta}")),
                &config,
                |b, config| b.iter(|| mc2(&data.dataset.database, config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig19);
criterion_main!(benches);
