//! Scalar array-of-structs vs batched structure-of-arrays: the benchmark
//! behind `BENCH_kernels.json`.
//!
//! Every group pits the production [`GridIndex`] (SoA columns + the
//! mask-then-emit kernel in `traj_cluster::kernel`) against the frozen
//! pre-SoA baseline [`AosGridIndex`] (`traj_cluster::aos` — scalar
//! `distance_squared` per bucket point, comparison-sorted build), so the
//! numbers isolate precisely the layout + kernel change:
//!
//! * `kernel_batch/distance_scan` — the raw microbench: one dense extent
//!   scanned start to finish, no grid around it (the ≥ 1.5× target).
//! * `kernel_batch/range_query` — per-point e-range queries over
//!   constant-density worlds at 1k/10k/100k.
//! * `kernel_batch/grid_build` — the radix-vs-comparison-sort build path
//!   (the `grid_build/100000` regression fix).
//! * `kernel_batch/snapshot_dbscan` — full DBSCAN over a warmed index,
//!   the engines' per-tick shape.
//!
//! Regenerate the JSON with:
//! `CRITERION_JSON=/tmp/kernels.json cargo bench -p convoy-bench --bench kernel_batch -- --quick`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_cluster::aos::AosGridIndex;
use traj_cluster::dbscan::{dbscan_with_core_flags_into, DbscanScratch};
use traj_cluster::{kernel, GridIndex};
use trajectory::geometry::Point;

/// Uniform points at constant density (same recipe as `micro_primitives`):
/// the world side scales with √n, so every size has the same expected
/// neighbourhood population (≈7 points per e-disc at `EPS` = 3).
fn scatter_points(rng: &mut StdRng, n: usize) -> Vec<Point> {
    let side = (n as f64).sqrt() * 2.0;
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const EPS: f64 = 3.0;
const MIN_PTS: usize = 3;

/// The raw kernel microbench: one contiguous extent of `n` candidates,
/// scanned against one target — scalar AoS loop vs the batched SoA kernel,
/// nothing else in the way. This is where the ≥ 1.5× acceptance target is
/// measured.
fn bench_distance_scan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(31);
    let mut group = c.benchmark_group("kernel_batch/distance_scan");
    for n in SIZES {
        // ~half the candidates hit: distances spread across [0, 2e].
        let pts: Vec<Point> = (0..n)
            .map(|_| {
                let r = rng.gen_range(0.0..(2.0 * EPS));
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                Point::new(r * theta.cos(), r * theta.sin())
            })
            .collect();
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        let idxs: Vec<u32> = (0..n as u32).collect();
        let eps_sq = EPS * EPS;

        group.bench_with_input(BenchmarkId::new("scalar_aos", n), &pts, |b, pts| {
            let mut out = Vec::with_capacity(n);
            let target = Point::new(0.0, 0.0);
            b.iter(|| {
                out.clear();
                for (i, p) in pts.iter().enumerate() {
                    if p.distance_squared(&target) <= eps_sq {
                        out.push(i);
                    }
                }
                out.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("batched_soa", n), &xs, |b, xs| {
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                out.clear();
                kernel::scan_soa(xs, &ys, &idxs, 0.0, 0.0, eps_sq, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_range_query(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(22);
    let mut group = c.benchmark_group("kernel_batch/range_query");
    for n in SIZES {
        let points = scatter_points(&mut rng, n);
        let aos = AosGridIndex::build(points.clone(), EPS);
        let soa = GridIndex::build(points.clone(), EPS);
        group.bench_with_input(BenchmarkId::new("scalar_aos", n), &points, |b, pts| {
            let mut buf = Vec::new();
            b.iter(|| {
                let mut hits = 0usize;
                for p in pts {
                    aos.range_query_into(p, &mut buf);
                    hits += buf.len();
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("batched_soa", n), &points, |b, pts| {
            let mut buf = Vec::new();
            b.iter(|| {
                let mut hits = 0usize;
                for p in pts {
                    soa.range_query_into(p, &mut buf);
                    hits += buf.len();
                }
                hits
            })
        });
    }
    group.finish();
}

/// Build cost: the frozen comparison-sorted baseline vs the radix-grouped
/// production build, fresh and in the engines' retained-buffer steady state.
fn bench_grid_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let mut group = c.benchmark_group("kernel_batch/grid_build");
    for n in SIZES {
        let points = scatter_points(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("scalar_aos", n), &points, |b, pts| {
            b.iter(|| AosGridIndex::build(pts.clone(), EPS))
        });
        group.bench_with_input(BenchmarkId::new("batched_soa", n), &points, |b, pts| {
            b.iter(|| GridIndex::build(pts.clone(), EPS))
        });
        let mut reused = GridIndex::default();
        group.bench_with_input(
            BenchmarkId::new("batched_soa_rebuild", n),
            &points,
            |b, pts| {
                b.iter(|| {
                    reused.rebuild(EPS, pts.iter().copied());
                    reused.len()
                })
            },
        );
    }
    group.finish();
}

/// Full DBSCAN over a warmed index — both grids drive the identical
/// production `dbscan_with_core_flags_into` loop, so the gap is purely the
/// neighbourhood-scan kernel.
fn bench_snapshot_dbscan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let mut group = c.benchmark_group("kernel_batch/snapshot_dbscan");
    for n in SIZES {
        let points = scatter_points(&mut rng, n);
        let aos = AosGridIndex::build(points.clone(), EPS);
        let soa = GridIndex::build(points.clone(), EPS);
        group.bench_with_input(BenchmarkId::new("scalar_aos", n), &points, |b, _| {
            let mut scratch = DbscanScratch::new();
            b.iter(|| {
                dbscan_with_core_flags_into(&aos, MIN_PTS, &mut scratch);
                scratch.labels().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("batched_soa", n), &points, |b, _| {
            let mut scratch = DbscanScratch::new();
            b.iter(|| {
                dbscan_with_core_flags_into(&soa, MIN_PTS, &mut scratch);
                scratch.labels().len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_scan,
    bench_range_query,
    bench_grid_build,
    bench_snapshot_dbscan
);
criterion_main!(benches);
