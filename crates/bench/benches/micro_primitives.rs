//! Micro-benchmarks of the primitives the discovery algorithms spend their
//! time in: distance functions, DBSCAN over a snapshot, trajectory
//! simplification, and the ω sub-trajectory distance. These are not paper
//! figures; they exist to catch performance regressions at the component
//! level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_cluster::{snapshot_clusters, SegmentDistance, SubTrajectory};
use traj_simplify::{DouglasPeucker, DouglasPeuckerStar, Simplifier, ToleranceMode};
use trajectory::geometry::{Point, Segment, TimedSegment};
use trajectory::{
    ObjectId, SnapshotPolicy, TimeInterval, TrajPoint, Trajectory, TrajectoryDatabase,
};

fn random_trajectory(rng: &mut StdRng, len: usize) -> Trajectory {
    let mut x = 0.0f64;
    let mut y = 0.0f64;
    let points = (0..len)
        .map(|t| {
            x += rng.gen_range(-1.0..1.0);
            y += rng.gen_range(-1.0..1.0);
            TrajPoint::new(x, y, t as i64)
        })
        .collect();
    Trajectory::from_points(points).expect("non-empty")
}

fn bench_distances(c: &mut Criterion) {
    let a = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 3.0));
    let b = Segment::new(Point::new(5.0, 8.0), Point::new(-2.0, 4.0));
    let ta = TimedSegment::new(a, TimeInterval::new(0, 10));
    let tb = TimedSegment::new(b, TimeInterval::new(3, 12));
    let mut group = c.benchmark_group("micro/distances");
    group.bench_function("segment_dll", |bench| {
        bench.iter(|| a.distance_to_segment(&b))
    });
    group.bench_function("segment_dstar_cpa", |bench| {
        bench.iter(|| ta.cpa_distance(&tb))
    });
    group.finish();
}

fn bench_snapshot_clustering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("micro/snapshot_dbscan");
    for n in [100usize, 500] {
        let mut db = TrajectoryDatabase::new();
        for i in 0..n {
            let x = rng.gen_range(0.0..100.0);
            let y = rng.gen_range(0.0..100.0);
            db.insert(
                ObjectId(i as u64),
                Trajectory::from_tuples([(x, y, 0)]).unwrap(),
            );
        }
        let snapshot = db.snapshot(0, SnapshotPolicy::Interpolate);
        group.bench_with_input(BenchmarkId::from_parameter(n), &snapshot, |bench, snap| {
            bench.iter(|| snapshot_clusters(snap, 3.0, 3))
        });
    }
    group.finish();
}

fn bench_simplification(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let traj = random_trajectory(&mut rng, 5_000);
    let mut group = c.benchmark_group("micro/simplification");
    group.bench_function("dp_5000pts", |bench| {
        bench.iter(|| DouglasPeucker.simplify(&traj, 2.0))
    });
    group.bench_function("dp_star_5000pts", |bench| {
        bench.iter(|| DouglasPeuckerStar.simplify(&traj, 2.0))
    });
    group.finish();
}

fn bench_omega(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let a = DouglasPeucker.simplify(&random_trajectory(&mut rng, 2_000), 2.0);
    let b = DouglasPeucker.simplify(&random_trajectory(&mut rng, 2_000), 2.0);
    let window = TimeInterval::new(0, 1_999);
    let sa = SubTrajectory::for_window(ObjectId(1), &a, window).unwrap();
    let sb = SubTrajectory::for_window(ObjectId(2), &b, window).unwrap();
    c.bench_function("micro/omega_distance", |bench| {
        bench.iter(|| {
            traj_cluster::omega_distance(&sa, &sb, SegmentDistance::Dll, ToleranceMode::Actual)
        })
    });
}

criterion_group!(
    benches,
    bench_distances,
    bench_snapshot_clustering,
    bench_simplification,
    bench_omega
);
criterion_main!(benches);
