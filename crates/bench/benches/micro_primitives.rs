//! Micro-benchmarks of the primitives the discovery algorithms spend their
//! time in: distance functions, DBSCAN over a snapshot, trajectory
//! simplification, and the ω sub-trajectory distance. These are not paper
//! figures; they exist to catch performance regressions at the component
//! level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_cluster::{
    snapshot_clusters, GridIndex, SegmentDistance, SnapshotClusterer, SubTrajectory,
};
use traj_simplify::{DouglasPeucker, DouglasPeuckerStar, Simplifier, ToleranceMode};
use trajectory::database::SnapshotEntry;
use trajectory::geometry::{Point, Segment, TimedSegment};
use trajectory::{
    ObjectId, Snapshot, SnapshotPolicy, TimeInterval, TrajPoint, Trajectory, TrajectoryDatabase,
};

/// The pre-CSR clustering hot path — `traj_cluster::reference`, the one
/// frozen copy of the `HashMap`-bucket grid and the pre-scratch DBSCAN
/// loop (also pinned by the clustering crate's order-equivalence tests).
/// The `micro/grid_build`, `micro/range_query` and
/// `micro/snapshot_clusters` groups time it against the CSR +
/// scratch-reuse path so `BENCH_baseline.json` always records both sides
/// of the trade.
use traj_cluster::reference as old_path;
use traj_cluster::reference::HashMapGrid as OldHashMapGrid;

fn random_trajectory(rng: &mut StdRng, len: usize) -> Trajectory {
    let mut x = 0.0f64;
    let mut y = 0.0f64;
    let points = (0..len)
        .map(|t| {
            x += rng.gen_range(-1.0..1.0);
            y += rng.gen_range(-1.0..1.0);
            TrajPoint::new(x, y, t as i64)
        })
        .collect();
    Trajectory::from_points(points).expect("non-empty")
}

fn bench_distances(c: &mut Criterion) {
    let a = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 3.0));
    let b = Segment::new(Point::new(5.0, 8.0), Point::new(-2.0, 4.0));
    let ta = TimedSegment::new(a, TimeInterval::new(0, 10));
    let tb = TimedSegment::new(b, TimeInterval::new(3, 12));
    let mut group = c.benchmark_group("micro/distances");
    group.bench_function("segment_dll", |bench| {
        bench.iter(|| a.distance_to_segment(&b))
    });
    group.bench_function("segment_dstar_cpa", |bench| {
        bench.iter(|| ta.cpa_distance(&tb))
    });
    group.finish();
}

fn bench_snapshot_clustering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("micro/snapshot_dbscan");
    for n in [100usize, 500] {
        let mut db = TrajectoryDatabase::new();
        for i in 0..n {
            let x = rng.gen_range(0.0..100.0);
            let y = rng.gen_range(0.0..100.0);
            db.insert(
                ObjectId(i as u64),
                Trajectory::from_tuples([(x, y, 0)]).unwrap(),
            );
        }
        let snapshot = db.snapshot(0, SnapshotPolicy::Interpolate);
        group.bench_with_input(BenchmarkId::from_parameter(n), &snapshot, |bench, snap| {
            bench.iter(|| snapshot_clusters(snap, 3.0, 3))
        });
    }
    group.finish();
}

/// Uniform points at constant density: the world side scales with √n, so
/// every size has the same expected neighbourhood population (≈7 points per
/// e-disc at `EPS` = 3).
fn scatter_points(rng: &mut StdRng, n: usize) -> Vec<Point> {
    let side = (n as f64).sqrt() * 2.0;
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn scatter_snapshot(rng: &mut StdRng, n: usize) -> Snapshot {
    Snapshot {
        time: 0,
        entries: scatter_points(rng, n)
            .into_iter()
            .enumerate()
            .map(|(i, position)| SnapshotEntry {
                id: ObjectId(i as u64),
                position,
                interpolated: false,
            })
            .collect(),
    }
}

/// Point counts for the clustering-primitive scaling cases.
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
/// Query radius for the scaling cases (constant density, see
/// [`scatter_points`]).
const EPS: f64 = 3.0;
/// Density threshold for the scaling cases.
const MIN_PTS: usize = 3;

fn bench_grid_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let mut group = c.benchmark_group("micro/grid_build");
    for n in SIZES {
        let points = scatter_points(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("old_hashmap", n), &points, |b, pts| {
            b.iter(|| OldHashMapGrid::build(pts.clone(), EPS))
        });
        group.bench_with_input(BenchmarkId::new("new_csr", n), &points, |b, pts| {
            b.iter(|| GridIndex::build(pts.clone(), EPS))
        });
        // The engines' steady state: re-index into retained buffers.
        let mut reused = GridIndex::default();
        group.bench_with_input(BenchmarkId::new("new_csr_rebuild", n), &points, |b, pts| {
            b.iter(|| {
                reused.rebuild(EPS, pts.iter().copied());
                reused.len()
            })
        });
    }
    group.finish();
}

fn bench_range_query(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(22);
    let mut group = c.benchmark_group("micro/range_query");
    for n in SIZES {
        let points = scatter_points(&mut rng, n);
        let old = OldHashMapGrid::build(points.clone(), EPS);
        let new = GridIndex::build(points.clone(), EPS);
        // Each iteration answers one e-range query per indexed point.
        group.bench_with_input(BenchmarkId::new("old_hashmap", n), &points, |b, pts| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in pts {
                    hits += old.range_query(p).len();
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("new_csr_into", n), &points, |b, pts| {
            let mut buf = Vec::new();
            b.iter(|| {
                let mut hits = 0usize;
                for p in pts {
                    new.range_query_into(p, &mut buf);
                    hits += buf.len();
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_snapshot_clusters_scaling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let mut group = c.benchmark_group("micro/snapshot_clusters");
    for n in SIZES {
        let snapshot = scatter_snapshot(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("old_hashmap", n), &snapshot, |b, snap| {
            b.iter(|| old_path::snapshot_clusters(snap, EPS, MIN_PTS))
        });
        group.bench_with_input(
            BenchmarkId::new("new_csr_fresh", n),
            &snapshot,
            |b, snap| b.iter(|| snapshot_clusters(snap, EPS, MIN_PTS)),
        );
        // What every engine actually runs per tick: a warmed clusterer.
        group.bench_with_input(
            BenchmarkId::new("new_csr_warmed", n),
            &snapshot,
            |b, snap| {
                let mut clusterer = SnapshotClusterer::new();
                clusterer.cluster_into(snap, EPS, MIN_PTS);
                b.iter(|| clusterer.cluster_into(snap, EPS, MIN_PTS).len())
            },
        );
    }
    group.finish();
}

fn bench_simplification(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let traj = random_trajectory(&mut rng, 5_000);
    let mut group = c.benchmark_group("micro/simplification");
    group.bench_function("dp_5000pts", |bench| {
        bench.iter(|| DouglasPeucker.simplify(&traj, 2.0))
    });
    group.bench_function("dp_star_5000pts", |bench| {
        bench.iter(|| DouglasPeuckerStar.simplify(&traj, 2.0))
    });
    group.finish();
}

fn bench_omega(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let a = DouglasPeucker.simplify(&random_trajectory(&mut rng, 2_000), 2.0);
    let b = DouglasPeucker.simplify(&random_trajectory(&mut rng, 2_000), 2.0);
    let window = TimeInterval::new(0, 1_999);
    let sa = SubTrajectory::for_window(ObjectId(1), &a, window).unwrap();
    let sb = SubTrajectory::for_window(ObjectId(2), &b, window).unwrap();
    c.bench_function("micro/omega_distance", |bench| {
        bench.iter(|| {
            traj_cluster::omega_distance(&sa, &sb, SegmentDistance::Dll, ToleranceMode::Actual)
        })
    });
}

criterion_group!(
    benches,
    bench_distances,
    bench_snapshot_clustering,
    bench_grid_build,
    bench_range_query,
    bench_snapshot_clusters_scaling,
    bench_simplification,
    bench_omega
);
criterion_main!(benches);
