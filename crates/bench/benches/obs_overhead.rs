//! Recording-cost microbenches for the `convoy-obs` layer: the clustering
//! and streaming hot paths with the no-op recorder vs. a live [`Registry`]
//! attached. `BENCH_obs_overhead.json` records measurement-grade numbers;
//! the acceptance bar is live-registry overhead ≤ 3% on
//! `snapshot_clusters/100000` against `BENCH_baseline.json`'s
//! `new_csr_warmed` entry (same seeds and snapshot construction as
//! `micro_primitives`, so the two files compare directly).

use convoy_bench::prepared;
use convoy_obs::{Obs, Registry};
use convoy_stream::{feed_order_samples, ConvoyStream, FeedIngest, StreamConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use traj_cluster::{GridIndex, SnapshotClusterer};
use traj_datasets::ProfileName;
use trajectory::database::SnapshotEntry;
use trajectory::geometry::Point;
use trajectory::{ObjectId, Snapshot};

/// Point counts, query radius and density threshold — identical to
/// `micro_primitives` so rows line up across the two bench files.
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const EPS: f64 = 3.0;
const MIN_PTS: usize = 3;

/// Uniform points at constant density (world side scales with √n), exactly
/// as `micro_primitives::scatter_points` builds them.
fn scatter_points(rng: &mut StdRng, n: usize) -> Vec<Point> {
    let side = (n as f64).sqrt() * 2.0;
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn scatter_snapshot(rng: &mut StdRng, n: usize) -> Snapshot {
    Snapshot {
        time: 0,
        entries: scatter_points(rng, n)
            .into_iter()
            .enumerate()
            .map(|(i, position)| SnapshotEntry {
                id: ObjectId(i as u64),
                position,
                interpolated: false,
            })
            .collect(),
    }
}

/// The two recorders under comparison. The live registry is shared across
/// iterations — counters just keep growing, which is exactly the steady
/// state the overhead bound is about.
fn recorders() -> Vec<(&'static str, Obs)> {
    vec![
        ("noop", Obs::noop()),
        ("live", Obs::registry(Arc::new(Registry::new()))),
    ]
}

/// The per-tick engine hot path: a warmed [`SnapshotClusterer`] whose
/// `cluster.*` counters and `cluster_ns` histogram fire on every call when
/// the registry is live. Seed 23 — the same snapshots as
/// `micro/snapshot_clusters` (compare `noop` here to `new_csr_warmed`
/// there).
fn bench_snapshot_clusters(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let mut group = c.benchmark_group("obs/snapshot_clusters");
    for n in SIZES {
        let snapshot = scatter_snapshot(&mut rng, n);
        for (label, obs) in recorders() {
            group.bench_with_input(BenchmarkId::new(label, n), &snapshot, |b, snap| {
                let mut clusterer = SnapshotClusterer::with_obs(obs.clone());
                clusterer.cluster_into(snap, EPS, MIN_PTS);
                b.iter(|| clusterer.cluster_into(snap, EPS, MIN_PTS).len())
            });
        }
    }
    group.finish();
}

/// Uninstrumented control: the CSR range-query primitive has no obs hooks,
/// so this row must stay at `micro/range_query`'s `new_csr_into` baseline
/// (seed 22, same construction) — it detects the obs layer accidentally
/// taxing a path it never touches.
fn bench_range_query(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(22);
    let mut group = c.benchmark_group("obs/range_query");
    for n in SIZES {
        let points = scatter_points(&mut rng, n);
        let index = GridIndex::build(points.clone(), EPS);
        group.bench_with_input(BenchmarkId::new("new_csr_into", n), &points, |b, pts| {
            let mut buf = Vec::new();
            b.iter(|| {
                let mut hits = 0usize;
                for p in pts {
                    index.range_query_into(p, &mut buf);
                    hits += buf.len();
                }
                hits
            })
        });
    }
    group.finish();
}

/// A full feed-to-finish stream replay — ingest validation, partition
/// close, CMC fold and convoy confirmation — per iteration, with and
/// without the `stream.*`/`cmc.*`/`cluster.*` instrumentation recording.
fn bench_stream_replay(c: &mut Criterion) {
    let data = prepared(ProfileName::Truck, 0.02);
    let samples = feed_order_samples(&data.dataset.database);
    // The CI smoke parameters: explicit δ/λ, no auto-tuning in the loop.
    let config = StreamConfig::new(data.query, 2.0, 5);
    let mut group = c.benchmark_group("obs/stream_replay");
    group.sample_size(10);
    for (label, obs) in recorders() {
        group.bench_function(BenchmarkId::new(label, "truck_0.02"), |b| {
            b.iter(|| {
                let mut stream = ConvoyStream::new(config);
                stream.set_obs(obs.clone());
                for (id, p) in &samples {
                    stream
                        .push(*id, p.t, p.x, p.y)
                        .expect("database samples form a valid feed");
                }
                stream.finish().convoys.len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_clusters,
    bench_range_query,
    bench_stream_replay
);
criterion_main!(benches);
