//! Criterion bench for the **sharded convoy engine**: CMC runtime as the
//! spatial shard count grows, against the swept sequential baseline and the
//! time-partitioned parallel driver, on the Figure-12-scale dataset
//! profiles.
//!
//! On a single-core box the sharded driver pays the halo/merge overhead
//! without clustering speedup, so this bench primarily documents that
//! overhead; run it on a multi-core machine to measure the scaling curve
//! (shard-local DBSCAN dominates CMC runtime and parallelises cleanly).

use convoy_bench::{bench_scale, prepared};
use convoy_core::CmcEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::ProfileName;

fn engines() -> Vec<(&'static str, CmcEngine)> {
    vec![
        ("swept", CmcEngine::Swept),
        ("parallel-2", CmcEngine::Parallel { threads: 2 }),
        ("sharded-2", CmcEngine::Sharded { shards: 2 }),
        ("sharded-4", CmcEngine::Sharded { shards: 4 }),
        ("sharded-all", CmcEngine::Sharded { shards: 0 }),
    ]
}

fn bench_shard_scaling(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        for (label, engine) in engines() {
            group.bench_with_input(
                BenchmarkId::new(label, name.name()),
                &engine,
                |b, engine| b.iter(|| engine.run(&data.dataset.database, &data.query)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
