//! Runs the full evaluation suite — Table 3 and Figures 12–17 and 19 — by
//! generating every dataset once and fanning the per-dataset work out over
//! worker threads, then collecting all CSVs under `bench_results/`.
//!
//! This is the binary `EXPERIMENTS.md` is produced from.

use convoy_bench::{prepared, run_method, scale_from_env, sweep_delta, sweep_lambda, Report};
use convoy_core::{compare_result_sets, mc2, CutsConfig, CutsVariant, Mc2Config, Method};
use std::time::Instant;
use traj_datasets::ProfileName;
use traj_simplify::{ReductionStats, SimplificationMethod, ToleranceMode};

/// Everything measured for one dataset profile, produced by one worker.
struct ProfileResults {
    table3_row: Vec<String>,
    fig12_rows: Vec<Vec<String>>,
    fig13_rows: Vec<Vec<String>>,
    fig14_rows: Vec<Vec<String>>,
    fig15_rows: Vec<Vec<String>>,
    fig16_rows: Vec<Vec<String>>,
    fig17_rows: Vec<Vec<String>>,
    fig19_rows: Vec<Vec<String>>,
}

fn measure_profile(name: ProfileName, scale: f64) -> ProfileResults {
    let data = prepared(name, scale);
    let stats = data.dataset.database.stats();

    // --- Figure 12 + Table 3 -------------------------------------------------
    let mut fig12_rows = Vec::new();
    let mut cmc_reference = None;
    let mut cmc_time = 0.0f64;
    let mut cuts_star_run = None;
    for method in Method::ALL {
        let run = run_method(&data, method, None);
        let elapsed = run.elapsed_secs();
        if method == Method::Cmc {
            cmc_time = elapsed;
            cmc_reference = Some(run.outcome.convoys.clone());
        }
        if method == Method::CutsStar {
            cuts_star_run = Some(run.clone());
        }
        fig12_rows.push(vec![
            name.to_string(),
            method.to_string(),
            format!("{elapsed:.4}"),
            run.outcome.convoys.len().to_string(),
            format!(
                "{:.2}",
                if elapsed > 0.0 {
                    cmc_time / elapsed
                } else {
                    f64::INFINITY
                }
            ),
        ]);
    }
    let cuts_star_run = cuts_star_run.expect("CuTS* always runs");
    let cmc_reference = cmc_reference.expect("CMC always runs");

    let table3_row = vec![
        name.to_string(),
        stats.num_objects.to_string(),
        stats.time_domain_length.to_string(),
        format!("{:.1}", stats.average_trajectory_length),
        stats.total_points.to_string(),
        data.query.m.to_string(),
        data.query.k.to_string(),
        format!("{}", data.query.e),
        format!("{:.2}", cuts_star_run.outcome.stats.delta),
        cuts_star_run.outcome.stats.lambda.to_string(),
        cuts_star_run.outcome.convoys.len().to_string(),
    ];

    // --- Figure 13 (only Cattle and Taxi in the paper, measured everywhere) ---
    let mut fig13_rows = Vec::new();
    for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
        let run = run_method(&data, method, None);
        let t = run.outcome.timings;
        fig13_rows.push(vec![
            name.to_string(),
            method.to_string(),
            format!("{:.4}", t.simplification.as_secs_f64()),
            format!("{:.4}", t.filter.as_secs_f64()),
            format!("{:.4}", t.refinement.as_secs_f64()),
            format!("{:.4}", t.total().as_secs_f64()),
        ]);
    }

    // --- Figure 14 ------------------------------------------------------------
    let mut fig14_rows = Vec::new();
    for mode in [ToleranceMode::Global, ToleranceMode::Actual] {
        let config = CutsConfig::new(CutsVariant::CutsStar).with_tolerance_mode(mode);
        let run = run_method(&data, Method::CutsStar, Some(config));
        fig14_rows.push(vec![
            name.to_string(),
            mode.name().to_string(),
            run.outcome.stats.num_candidates.to_string(),
            format!("{:.0}", run.outcome.stats.refinement_units),
            format!("{:.4}", run.elapsed_secs()),
        ]);
    }

    // --- Figure 15 ------------------------------------------------------------
    let mut fig15_rows = Vec::new();
    let deltas15: Vec<f64> = [1.0 / 30.0, 0.1, 0.5 / 3.0, 7.0 / 30.0]
        .iter()
        .map(|f| f * data.query.e)
        .collect();
    for method in SimplificationMethod::ALL {
        for &delta in &deltas15 {
            let started = Instant::now();
            let simplified: Vec<_> = data
                .dataset
                .database
                .iter()
                .map(|(_, traj)| method.simplify(traj, delta))
                .collect();
            let elapsed = started.elapsed().as_secs_f64();
            let reduction = ReductionStats::from_simplified(simplified.iter());
            fig15_rows.push(vec![
                name.to_string(),
                method.to_string(),
                format!("{delta:.1}"),
                format!("{:.1}", reduction.reduction_percent()),
                format!("{elapsed:.4}"),
            ]);
        }
    }

    // --- Figure 16 ------------------------------------------------------------
    let mut fig16_rows = Vec::new();
    let deltas16: Vec<f64> = [0.125, 1.0, 1.875, 2.75]
        .iter()
        .map(|f| f * data.query.e)
        .collect();
    for (delta, run) in sweep_delta(&data, &deltas16) {
        fig16_rows.push(vec![
            name.to_string(),
            run.method.to_string(),
            format!("{delta:.1}"),
            format!("{:.0}", run.outcome.stats.refinement_units),
            run.outcome.stats.num_candidates.to_string(),
            format!("{:.4}", run.elapsed_secs()),
        ]);
    }

    // --- Figure 17 ------------------------------------------------------------
    let mut fig17_rows = Vec::new();
    for (lambda, run) in sweep_lambda(&data, &[5, 10, 15, 20, 30, 50]) {
        fig17_rows.push(vec![
            name.to_string(),
            run.method.to_string(),
            lambda.to_string(),
            format!("{:.0}", run.outcome.stats.refinement_units),
            run.outcome.stats.num_candidates.to_string(),
            format!("{:.4}", run.elapsed_secs()),
        ]);
    }

    // --- Figure 19 ------------------------------------------------------------
    let mut fig19_rows = Vec::new();
    for theta in [0.4, 0.6, 0.8, 1.0] {
        let reported = mc2(
            &data.dataset.database,
            &Mc2Config {
                e: data.query.e,
                m: data.query.m,
                theta,
            },
        );
        let accuracy = compare_result_sets(&reported, &cmc_reference, &data.query);
        fig19_rows.push(vec![
            name.to_string(),
            format!("{theta:.1}"),
            accuracy.reported.to_string(),
            accuracy.reference.to_string(),
            format!("{:.1}", accuracy.false_positive_percent()),
            format!("{:.1}", accuracy.false_negative_percent()),
        ]);
    }

    ProfileResults {
        table3_row,
        fig12_rows,
        fig13_rows,
        fig14_rows,
        fig15_rows,
        fig16_rows,
        fig17_rows,
        fig19_rows,
    }
}

fn main() {
    let scale = scale_from_env();
    eprintln!("# Full experiment suite (scale = {scale})");
    let started = Instant::now();

    // One worker thread per dataset profile: the profiles are independent, so
    // this cuts the wall-clock time of the suite roughly in four.
    let results: Vec<ProfileResults> = std::thread::scope(|scope| {
        let handles: Vec<_> = ProfileName::ALL
            .iter()
            .map(|name| scope.spawn(move || measure_profile(*name, scale)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("profile worker panicked"))
            .collect()
    });

    let mut table3 = Report::new(
        "table3",
        &[
            "dataset",
            "num_objects",
            "time_domain_length",
            "avg_trajectory_length",
            "data_size_points",
            "m",
            "k",
            "e",
            "delta_auto",
            "lambda_auto",
            "convoys_discovered",
        ],
    );
    let mut fig12 = Report::new(
        "fig12",
        &[
            "dataset",
            "method",
            "elapsed_seconds",
            "convoys",
            "speedup_vs_cmc",
        ],
    );
    let mut fig13 = Report::new(
        "fig13",
        &[
            "dataset",
            "method",
            "simplification_seconds",
            "filter_seconds",
            "refinement_seconds",
            "total_seconds",
        ],
    );
    let mut fig14 = Report::new(
        "fig14",
        &[
            "dataset",
            "tolerance_mode",
            "candidates",
            "refinement_units",
            "elapsed_seconds",
        ],
    );
    let mut fig15 = Report::new(
        "fig15",
        &[
            "dataset",
            "method",
            "delta",
            "vertex_reduction_percent",
            "elapsed_seconds",
        ],
    );
    let mut fig16 = Report::new(
        "fig16",
        &[
            "dataset",
            "method",
            "delta",
            "refinement_units",
            "candidates",
            "elapsed_seconds",
        ],
    );
    let mut fig17 = Report::new(
        "fig17",
        &[
            "dataset",
            "method",
            "lambda",
            "refinement_units",
            "candidates",
            "elapsed_seconds",
        ],
    );
    let mut fig19 = Report::new(
        "fig19",
        &[
            "dataset",
            "theta",
            "mc2_reported",
            "cmc_reference",
            "false_positive_percent",
            "false_negative_percent",
        ],
    );

    for r in &results {
        table3.push_row(&r.table3_row);
        for row in &r.fig12_rows {
            fig12.push_row(row);
        }
        for row in &r.fig13_rows {
            fig13.push_row(row);
        }
        for row in &r.fig14_rows {
            fig14.push_row(row);
        }
        for row in &r.fig15_rows {
            fig15.push_row(row);
        }
        for row in &r.fig16_rows {
            fig16.push_row(row);
        }
        for row in &r.fig17_rows {
            fig17.push_row(row);
        }
        for row in &r.fig19_rows {
            fig19.push_row(row);
        }
    }

    for (title, report) in [
        ("Table 3", &table3),
        ("Figure 12", &fig12),
        ("Figure 13", &fig13),
        ("Figure 14", &fig14),
        ("Figure 15", &fig15),
        ("Figure 16", &fig16),
        ("Figure 17", &fig17),
        ("Figure 19", &fig19),
    ] {
        println!("\n## {title}");
        report.emit();
    }

    eprintln!(
        "# Completed {} profiles in {:.1} s",
        results.len(),
        started.elapsed().as_secs_f64()
    );
}
