//! Reproduces **Figure 12**: total query-processing time of CMC versus the
//! CuTS family on all four dataset profiles.
//!
//! Expected shape (matching the paper): every CuTS variant is several times
//! faster than CMC on every dataset, with CuTS* the fastest overall; the gap
//! is widest on the profiles with many missing samples (Car, Taxi), where CMC
//! pays for interpolating virtual points at every time tick.

use convoy_bench::{prepared, run_method, scale_from_env, Report};
use convoy_core::Method;
use traj_datasets::ProfileName;

fn main() {
    let scale = scale_from_env();
    let mut report = Report::new(
        "fig12",
        &[
            "dataset",
            "method",
            "elapsed_seconds",
            "convoys",
            "speedup_vs_cmc",
        ],
    );
    eprintln!("# Figure 12 reproduction (scale = {scale})");

    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        let mut cmc_time = None;
        for method in Method::ALL {
            let run = run_method(&data, method, None);
            let elapsed = run.elapsed_secs();
            if method == Method::Cmc {
                cmc_time = Some(elapsed);
            }
            let speedup = cmc_time
                .map(|base| {
                    if elapsed > 0.0 {
                        base / elapsed
                    } else {
                        f64::INFINITY
                    }
                })
                .unwrap_or(1.0);
            report.push_row(&[
                name.to_string(),
                method.to_string(),
                format!("{elapsed:.4}"),
                run.outcome.convoys.len().to_string(),
                format!("{speedup:.2}"),
            ]);
        }
    }
    report.emit();
}
