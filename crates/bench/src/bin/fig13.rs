//! Reproduces **Figure 13**: the breakdown of each CuTS variant's running
//! time into simplification, filter and refinement, for the Cattle-like and
//! Taxi-like profiles.
//!
//! Expected shape (matching the paper): on the Cattle profile (very few
//! objects, very long densely-sampled trajectories) simplification dominates;
//! on the Taxi profile (many objects, short domain) the clustering-heavy
//! filter dominates and simplification is negligible.

use convoy_bench::{prepared, run_method, scale_from_env, Report};
use convoy_core::Method;
use traj_datasets::ProfileName;

fn main() {
    let scale = scale_from_env();
    let mut report = Report::new(
        "fig13",
        &[
            "dataset",
            "method",
            "simplification_seconds",
            "filter_seconds",
            "refinement_seconds",
            "total_seconds",
        ],
    );
    eprintln!("# Figure 13 reproduction (scale = {scale})");

    for name in [ProfileName::Cattle, ProfileName::Taxi] {
        let data = prepared(name, scale);
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            let run = run_method(&data, method, None);
            let t = run.outcome.timings;
            report.push_row(&[
                name.to_string(),
                method.to_string(),
                format!("{:.4}", t.simplification.as_secs_f64()),
                format!("{:.4}", t.filter.as_secs_f64()),
                format!("{:.4}", t.refinement.as_secs_f64()),
                format!("{:.4}", t.total().as_secs_f64()),
            ]);
        }
    }
    report.emit();
}
