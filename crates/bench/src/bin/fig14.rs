//! Reproduces **Figure 14**: the effect of using each segment's *actual*
//! tolerance instead of the global tolerance δ in the CuTS* filter, on (a)
//! the number of candidates after filtering and (b) the total discovery time,
//! for all four dataset profiles.
//!
//! Expected shape (matching the paper): actual tolerances prune more —
//! candidate counts drop noticeably and elapsed time drops with them, most
//! visibly on the Cattle- and Car-like profiles.

use convoy_bench::{prepared, run_method, scale_from_env, Report};
use convoy_core::{CutsConfig, CutsVariant, Method};
use traj_datasets::ProfileName;
use traj_simplify::ToleranceMode;

fn main() {
    let scale = scale_from_env();
    let mut report = Report::new(
        "fig14",
        &[
            "dataset",
            "tolerance_mode",
            "candidates",
            "refinement_units",
            "elapsed_seconds",
        ],
    );
    eprintln!("# Figure 14 reproduction (scale = {scale}, method = CuTS*)");

    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        for mode in [ToleranceMode::Global, ToleranceMode::Actual] {
            let config = CutsConfig::new(CutsVariant::CutsStar).with_tolerance_mode(mode);
            let run = run_method(&data, Method::CutsStar, Some(config));
            report.push_row(&[
                name.to_string(),
                mode.name().to_string(),
                run.outcome.stats.num_candidates.to_string(),
                format!("{:.0}", run.outcome.stats.refinement_units),
                format!("{:.4}", run.elapsed_secs()),
            ]);
        }
    }
    report.emit();
}
