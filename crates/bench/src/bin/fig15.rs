//! Reproduces **Figure 15**: comparison of the three trajectory-simplification
//! methods (DP, DP+, DP*) on the Cattle-like profile — (a) vertex reduction
//! and (b) simplification elapsed time, as the tolerance δ grows.
//!
//! Expected shape (matching the paper): reduction DP ≥ DP+ ≥ DP*, elapsed
//! time DP+ fastest, DP* slowest, and every method gets faster as δ grows.

use convoy_bench::{prepared, scale_from_env, Report};
use std::time::Instant;
use traj_datasets::ProfileName;
use traj_simplify::{ReductionStats, SimplificationMethod};

fn main() {
    let scale = scale_from_env();
    let data = prepared(ProfileName::Cattle, scale);
    // The paper sweeps δ ∈ {10, 20, 30, 40} (and {10, 30, 50, 70} for the
    // timing panel) for a dataset with e = 300; we sweep the same fractions
    // of e so the sweep stays meaningful if the profile's e changes.
    let e = data.query.e;
    let deltas: Vec<f64> = [
        1.0 / 30.0,
        2.0 / 30.0,
        0.1,
        4.0 / 30.0,
        0.5 / 3.0,
        7.0 / 30.0,
    ]
    .iter()
    .map(|f| f * e)
    .collect();

    let mut report = Report::new(
        "fig15",
        &[
            "dataset",
            "method",
            "delta",
            "vertex_reduction_percent",
            "elapsed_seconds",
        ],
    );
    eprintln!("# Figure 15 reproduction (scale = {scale}, dataset = Cattle)");

    for method in SimplificationMethod::ALL {
        for &delta in &deltas {
            let started = Instant::now();
            let simplified: Vec<_> = data
                .dataset
                .database
                .iter()
                .map(|(_, traj)| method.simplify(traj, delta))
                .collect();
            let elapsed = started.elapsed().as_secs_f64();
            let stats = ReductionStats::from_simplified(simplified.iter());
            report.push_row(&[
                ProfileName::Cattle.to_string(),
                method.to_string(),
                format!("{delta:.1}"),
                format!("{:.1}", stats.reduction_percent()),
                format!("{elapsed:.4}"),
            ]);
        }
    }
    report.emit();
}
