//! Reproduces **Figure 16**: the effect of the simplification tolerance δ on
//! (a) the refinement unit — the cost model of the candidates the filter
//! hands to the refinement step — and (b) the total elapsed time, for the
//! Car-like and Taxi-like profiles and all three CuTS variants.
//!
//! Expected shape (matching the paper): CuTS* has the lowest refinement unit
//! (its `D*` bound filters tightest), CuTS+ sits between CuTS* and CuTS, and
//! both the refinement unit and the elapsed time grow as δ grows because a
//! loose δ inflates the range searches.

use convoy_bench::{prepared, scale_from_env, sweep_delta, Report};
use traj_datasets::ProfileName;

fn main() {
    let scale = scale_from_env();
    let mut report = Report::new(
        "fig16",
        &[
            "dataset",
            "method",
            "delta",
            "refinement_units",
            "candidates",
            "elapsed_seconds",
        ],
    );
    eprintln!("# Figure 16 reproduction (scale = {scale})");

    for name in [ProfileName::Car, ProfileName::Taxi] {
        let data = prepared(name, scale);
        // The paper sweeps δ ∈ {10, 80, 150, 220} for e = 80 (Car) / 40
        // (Taxi); sweep the same fractions of e.
        let e = data.query.e;
        let deltas: Vec<f64> = [0.125, 1.0, 1.875, 2.75].iter().map(|f| f * e).collect();
        for (delta, run) in sweep_delta(&data, &deltas) {
            report.push_row(&[
                name.to_string(),
                run.method.to_string(),
                format!("{delta:.1}"),
                format!("{:.0}", run.outcome.stats.refinement_units),
                run.outcome.stats.num_candidates.to_string(),
                format!("{:.4}", run.elapsed_secs()),
            ]);
        }
    }
    report.emit();
}
