//! Reproduces **Figure 17**: the effect of the time-partition length λ on the
//! refinement unit and the total elapsed time, for the Truck-like and
//! Cattle-like profiles and all three CuTS variants.
//!
//! Expected shape (matching the paper): a larger λ weakens the filter (the
//! refinement unit rises); a very small λ costs more clustering passes. CuTS*
//! keeps the lowest refinement unit across the sweep; on the Cattle profile
//! (where simplification dominates) CuTS+ is competitive on elapsed time.

use convoy_bench::{prepared, scale_from_env, sweep_lambda, Report};
use traj_datasets::ProfileName;

fn main() {
    let scale = scale_from_env();
    let mut report = Report::new(
        "fig17",
        &[
            "dataset",
            "method",
            "lambda",
            "refinement_units",
            "candidates",
            "elapsed_seconds",
        ],
    );
    eprintln!("# Figure 17 reproduction (scale = {scale})");

    let sweeps = [
        (ProfileName::Truck, vec![5usize, 10, 15, 20]),
        (ProfileName::Cattle, vec![10usize, 30, 50, 70]),
    ];
    for (name, lambdas) in sweeps {
        let data = prepared(name, scale);
        for (lambda, run) in sweep_lambda(&data, &lambdas) {
            report.push_row(&[
                name.to_string(),
                run.method.to_string(),
                lambda.to_string(),
                format!("{:.0}", run.outcome.stats.refinement_units),
                run.outcome.stats.num_candidates.to_string(),
                format!("{:.4}", run.elapsed_secs()),
            ]);
        }
    }
    report.emit();
}
