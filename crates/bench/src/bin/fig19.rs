//! Reproduces **Figure 19** (Appendix B.1): the accuracy of using a
//! moving-cluster algorithm (MC2) for convoy discovery — false positives (a)
//! and false negatives (b) as the overlap threshold θ varies, on all four
//! dataset profiles, measured against the CMC result as ground truth.
//!
//! Expected shape (matching the paper): MC2 reports many chains that are not
//! convoys (no lifetime constraint), so the false-positive rate is high
//! everywhere and grows with θ; false negatives also rise with θ because a
//! strict overlap requirement fragments long convoys.

use convoy_bench::{prepared, run_method, scale_from_env, Report};
use convoy_core::{compare_result_sets, mc2, Mc2Config, Method};
use traj_datasets::ProfileName;

fn main() {
    let scale = scale_from_env();
    let thetas = [0.4, 0.6, 0.8, 1.0];
    let mut report = Report::new(
        "fig19",
        &[
            "dataset",
            "theta",
            "mc2_reported",
            "cmc_reference",
            "false_positive_percent",
            "false_negative_percent",
        ],
    );
    eprintln!("# Figure 19 reproduction (scale = {scale})");

    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        let reference = run_method(&data, Method::Cmc, None);
        for theta in thetas {
            let config = Mc2Config {
                e: data.query.e,
                m: data.query.m,
                theta,
            };
            let reported = mc2(&data.dataset.database, &config);
            let accuracy = compare_result_sets(&reported, &reference.outcome.convoys, &data.query);
            report.push_row(&[
                name.to_string(),
                format!("{theta:.1}"),
                accuracy.reported.to_string(),
                accuracy.reference.to_string(),
                format!("{:.1}", accuracy.false_positive_percent()),
                format!("{:.1}", accuracy.false_negative_percent()),
            ]);
        }
    }
    report.emit();
}
