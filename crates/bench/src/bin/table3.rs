//! Reproduces **Table 3** of the paper: per-dataset statistics, the query and
//! internal parameters used throughout the experiments, and the number of
//! convoys discovered (by CuTS*, whose result set equals CMC's).

use convoy_bench::{prepared, run_method, scale_from_env, Report};
use convoy_core::Method;
use traj_datasets::ProfileName;

fn main() {
    let scale = scale_from_env();
    let mut report = Report::new(
        "table3",
        &[
            "dataset",
            "num_objects",
            "time_domain_length",
            "avg_trajectory_length",
            "data_size_points",
            "m",
            "k",
            "e",
            "delta_auto",
            "lambda_auto",
            "convoys_discovered",
        ],
    );

    eprintln!("# Table 3 reproduction (scale = {scale})");
    for name in ProfileName::ALL {
        let data = prepared(name, scale);
        let stats = data.dataset.database.stats();
        let run = run_method(&data, Method::CutsStar, None);
        report.push_row(&[
            name.to_string(),
            stats.num_objects.to_string(),
            stats.time_domain_length.to_string(),
            format!("{:.1}", stats.average_trajectory_length),
            stats.total_points.to_string(),
            data.query.m.to_string(),
            data.query.k.to_string(),
            format!("{}", data.query.e),
            format!("{:.2}", run.outcome.stats.delta),
            run.outcome.stats.lambda.to_string(),
            run.outcome.convoys.len().to_string(),
        ]);
    }
    report.emit();
}
