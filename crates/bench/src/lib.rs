//! # `convoy-bench` — the experiment harness
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! section on the synthetic dataset profiles of [`traj_datasets`]:
//!
//! | Binary / bench            | Paper artefact | Content |
//! |---------------------------|----------------|---------|
//! | `table3`                  | Table 3        | Dataset statistics, chosen parameters, number of convoys discovered |
//! | `fig12`                   | Figure 12      | Elapsed time of CMC vs the CuTS family on all four datasets |
//! | `fig13`                   | Figure 13      | Cost breakdown (simplification / filter / refinement), Cattle & Taxi |
//! | `fig14`                   | Figure 14      | Effect of actual vs global tolerance on candidates and elapsed time |
//! | `fig15`                   | Figure 15      | Simplification methods: vertex reduction and elapsed time vs δ (Cattle) |
//! | `fig16`                   | Figure 16      | Effect of δ on refinement units and elapsed time (Car & Taxi) |
//! | `fig17`                   | Figure 17      | Effect of λ on refinement units and elapsed time (Truck & Cattle) |
//! | `fig19`                   | Figure 19      | MC2 false positives / false negatives vs θ on all four datasets |
//! | `all_experiments`         | —              | Runs everything above and collects the CSVs |
//! | `engine_scaling` (bench)  | —              | CMC per-tick vs swept vs parallel engines on all four datasets |
//!
//! Every binary prints its series as CSV to stdout and also writes it under
//! `bench_results/`. The Criterion benches under `benches/` wrap the same
//! runners for statistically robust timing.
//!
//! ## Scaling
//!
//! The synthetic profiles default to a fraction of the paper's dataset sizes
//! so that the whole suite runs in minutes on a laptop. Set the environment
//! variable `CONVOY_SCALE` (e.g. `CONVOY_SCALE=1.0`) to change the fraction;
//! relative comparisons between algorithms are stable across scales.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod prepare;
pub mod report;
pub mod runner;

pub use prepare::{bench_scale, prepared, scale_from_env, PreparedDataset, DEFAULT_SCALE};
pub use report::Report;
pub use runner::{run_method, sweep_delta, sweep_lambda, MeasuredRun};
