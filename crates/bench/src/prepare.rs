//! Dataset preparation shared by every experiment binary and bench.

use convoy_core::ConvoyQuery;
use traj_datasets::{generate, DatasetProfile, GeneratedDataset, ProfileName};

/// Default scale applied to the paper-sized profiles when `CONVOY_SCALE` is
/// not set: large enough that the algorithmic trade-offs are visible, small
/// enough that the whole suite runs in minutes.
pub const DEFAULT_SCALE: f64 = 0.15;

/// Scale used by the Criterion benches (which execute each runner many
/// times); can be overridden with `CONVOY_BENCH_SCALE`.
pub const BENCH_SCALE: f64 = 0.05;

/// The seed every experiment uses, so that figures are reproducible
/// run-to-run.
pub const SEED: u64 = 20080824; // VLDB 2008 started on 24 August 2008.

/// A dataset prepared for experiments: the generated data plus the convoy
/// query the paper's Table 3 associates with that dataset.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Which profile this is.
    pub name: ProfileName,
    /// The (possibly scaled) profile used for the generation.
    pub profile: DatasetProfile,
    /// The generated database and ground truth.
    pub dataset: GeneratedDataset,
    /// The convoy query matching the profile's Table 3 parameters.
    pub query: ConvoyQuery,
}

/// Reads the experiment scale from `CONVOY_SCALE`, falling back to
/// [`DEFAULT_SCALE`].
pub fn scale_from_env() -> f64 {
    std::env::var("CONVOY_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(DEFAULT_SCALE)
}

/// Reads the Criterion bench scale from `CONVOY_BENCH_SCALE`, falling back to
/// [`BENCH_SCALE`].
pub fn bench_scale() -> f64 {
    std::env::var("CONVOY_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(BENCH_SCALE)
}

/// Generates the dataset for one profile at the given scale, together with
/// its Table 3 query parameters.
pub fn prepared(name: ProfileName, scale: f64) -> PreparedDataset {
    let profile = DatasetProfile::named(name).scaled(scale);
    let dataset = generate(&profile, SEED);
    let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
    PreparedDataset {
        name,
        profile,
        dataset,
        query,
    }
}

/// Prepares all four profiles at the given scale.
pub fn prepare_all(scale: f64) -> Vec<PreparedDataset> {
    ProfileName::ALL
        .iter()
        .map(|name| prepared(*name, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_dataset_is_consistent_with_its_profile() {
        let p = prepared(ProfileName::Taxi, 0.02);
        assert_eq!(p.name, ProfileName::Taxi);
        assert_eq!(p.query.m, p.profile.m);
        assert_eq!(p.query.e, p.profile.e);
        assert_eq!(p.dataset.database.len(), p.profile.num_objects);
    }

    #[test]
    fn scale_parsing_falls_back_to_default() {
        // The environment variable is not set in the test harness.
        assert!(scale_from_env() > 0.0);
        assert!(bench_scale() > 0.0);
    }
}
