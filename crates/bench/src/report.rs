//! CSV reporting: every experiment binary prints its series to stdout and
//! writes the same rows under `bench_results/`.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple CSV report: a header plus rows, echoed to stdout and written to
/// `bench_results/<name>.csv`.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report with the given file stem and column names.
    pub fn new<S: Into<String>>(name: S, header: &[&str]) -> Self {
        Report {
            name: name.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. The number of fields should match the header; shorter
    /// rows are padded with empty strings so a malformed caller cannot panic
    /// the harness.
    pub fn push_row(&mut self, fields: &[String]) {
        let mut row: Vec<String> = fields.to_vec();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Convenience: appends a row of display-able fields.
    pub fn row<D: std::fmt::Display>(&mut self, fields: &[D]) {
        self.push_row(&fields.iter().map(|f| f.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows collected so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no rows have been collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The report serialised as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the CSV to stdout and writes it to `dir/<name>.csv`, returning
    /// the written path. IO errors are reported on stderr but do not abort
    /// the experiment (stdout output is the primary artefact).
    pub fn emit_to(&self, dir: &Path) -> Option<PathBuf> {
        let csv = self.to_csv();
        print!("{csv}");
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("{}.csv", self.name));
        match fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// Prints the CSV to stdout and writes it under `bench_results/` in the
    /// current directory.
    pub fn emit(&self) -> Option<PathBuf> {
        self.emit_to(Path::new("bench_results"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering_and_padding() {
        let mut report = Report::new("unit", &["a", "b", "c"]);
        report.row(&["1", "2", "3"]);
        report.push_row(&["x".to_string()]);
        let csv = report.to_csv();
        assert_eq!(csv, "a,b,c\n1,2,3\nx,,\n");
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
    }

    #[test]
    fn emit_writes_the_file() {
        let dir = std::env::temp_dir().join("convoy-bench-report-test");
        let mut report = Report::new("emit_test", &["x"]);
        report.row(&[42]);
        let path = report.emit_to(&dir).expect("emit must succeed");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("42"));
        std::fs::remove_file(path).ok();
    }
}
