//! Experiment runners: one measured discovery run, and the δ / λ parameter
//! sweeps used by Figures 16 and 17.

use crate::prepare::PreparedDataset;
use convoy_core::{CutsConfig, Discovery, DiscoveryOutcome, Method};
use std::time::Duration;

/// One measured discovery run with convenient accessors for reporting.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// The dataset name the run was executed on.
    pub dataset: String,
    /// The method that was run.
    pub method: Method,
    /// The discovery outcome (convoys, timings, statistics).
    pub outcome: DiscoveryOutcome,
}

impl MeasuredRun {
    /// Total elapsed wall-clock time of the run.
    pub fn elapsed(&self) -> Duration {
        self.outcome.timings.total()
    }

    /// Elapsed time in seconds (convenient for CSV output).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Runs one method on a prepared dataset with an optional CuTS configuration
/// override.
pub fn run_method(
    prepared: &PreparedDataset,
    method: Method,
    config: Option<CutsConfig>,
) -> MeasuredRun {
    let mut discovery = Discovery::new(method);
    if let Some(config) = config {
        discovery = discovery.with_config(config);
    }
    let outcome = discovery.run(&prepared.dataset.database, &prepared.query);
    MeasuredRun {
        dataset: prepared.name.to_string(),
        method,
        outcome,
    }
}

/// Runs the three CuTS variants over a sweep of δ values (Figure 16).
/// Returns one measured run per (δ, method) pair, in sweep order.
pub fn sweep_delta(prepared: &PreparedDataset, deltas: &[f64]) -> Vec<(f64, MeasuredRun)> {
    let mut out = Vec::with_capacity(deltas.len() * 3);
    for &delta in deltas {
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            let Some(variant) = method.cuts_variant() else {
                continue; // the list above is CuTS variants only
            };
            let config = CutsConfig::new(variant).with_delta(delta);
            out.push((delta, run_method(prepared, method, Some(config))));
        }
    }
    out
}

/// Runs the three CuTS variants over a sweep of λ values (Figure 17).
pub fn sweep_lambda(prepared: &PreparedDataset, lambdas: &[usize]) -> Vec<(usize, MeasuredRun)> {
    let mut out = Vec::with_capacity(lambdas.len() * 3);
    for &lambda in lambdas {
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            let Some(variant) = method.cuts_variant() else {
                continue; // the list above is CuTS variants only
            };
            let config = CutsConfig::new(variant).with_lambda(lambda);
            out.push((lambda, run_method(prepared, method, Some(config))));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::prepared;
    use convoy_core::query::result_sets_equivalent;
    use traj_datasets::ProfileName;

    #[test]
    fn all_methods_produce_equivalent_results_on_a_profile() {
        let data = prepared(ProfileName::Truck, 0.02);
        let reference = run_method(&data, Method::Cmc, None);
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            let run = run_method(&data, method, None);
            assert!(
                result_sets_equivalent(&run.outcome.convoys, &reference.outcome.convoys),
                "{method} and CMC disagree on {:?}",
                data.name
            );
        }
    }

    #[test]
    fn sweeps_cover_every_parameter_and_method() {
        let data = prepared(ProfileName::Taxi, 0.02);
        let runs = sweep_delta(&data, &[1.0, 10.0]);
        assert_eq!(runs.len(), 6);
        assert!(runs
            .iter()
            .all(|(d, r)| (*d - r.outcome.stats.delta).abs() < 1e-12));
        let runs = sweep_lambda(&data, &[4, 8, 16]);
        assert_eq!(runs.len(), 9);
        assert!(runs.iter().all(|(l, r)| *l == r.outcome.stats.lambda));
    }
}
