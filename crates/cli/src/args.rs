//! A small, dependency-free command-line argument parser.
//!
//! The `convoy` tool accepts a subcommand followed by `--key value` options
//! and positional arguments, e.g.
//!
//! ```text
//! convoy discover trajectories.csv --method cuts-star --m 3 --k 60 --e 25
//! ```
//!
//! Rolling our own keeps the workspace inside its approved dependency set;
//! the grammar is deliberately tiny (no `--key=value`, no grouped short
//! flags) but strict: unknown options are an error rather than silently
//! ignored.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positional values and `--key value` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedArgs {
    /// Positional arguments in order of appearance.
    pub positional: Vec<String>,
    /// `--key value` options (keys stored without the leading dashes).
    pub options: BTreeMap<String, String>,
    /// `--flag` options that appeared without a value.
    pub flags: Vec<String>,
}

/// An error produced while parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses a raw argument list (without the program name and subcommand).
    ///
    /// An argument starting with `--` becomes an option when it is followed
    /// by a value that does not itself start with `--`; otherwise it becomes
    /// a boolean flag.
    pub fn parse<I, S>(args: I) -> Result<ParsedArgs, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let raw: Vec<String> = args.into_iter().map(Into::into).collect();
        let mut parsed = ParsedArgs::default();
        let mut i = 0;
        while i < raw.len() {
            let arg = &raw[i];
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty option name `--`".into()));
                }
                let next_is_value = raw
                    .get(i + 1)
                    .map(|v| !v.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    if parsed.options.contains_key(key) {
                        return Err(ArgError(format!("option --{key} given twice")));
                    }
                    parsed.options.insert(key.to_string(), raw[i + 1].clone());
                    i += 2;
                } else {
                    parsed.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                parsed.positional.push(arg.clone());
                i += 1;
            }
        }
        Ok(parsed)
    }

    /// Returns the value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Returns `true` when `--flag` was given (with or without a value).
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag) || self.options.contains_key(flag)
    }

    /// Returns the value of `--key` parsed as `T`, or `default` when absent.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(value) => value
                .parse::<T>()
                .map_err(|_| ArgError(format!("cannot parse --{key} value `{value}`"))),
        }
    }

    /// Returns the value of `--key` parsed as `T`, erroring when absent.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let value = self
            .get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))?;
        value
            .parse::<T>()
            .map_err(|_| ArgError(format!("cannot parse --{key} value `{value}`")))
    }

    /// Ensures that every supplied option/flag is one of `allowed`, so typos
    /// are reported instead of ignored.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{key} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positional_options_and_flags() {
        let parsed =
            ParsedArgs::parse(["input.csv", "--m", "3", "--verbose", "--e", "2.5"]).unwrap();
        assert_eq!(parsed.positional, vec!["input.csv"]);
        assert_eq!(parsed.get("m"), Some("3"));
        assert_eq!(parsed.get("e"), Some("2.5"));
        assert!(parsed.has_flag("verbose"));
        assert!(!parsed.has_flag("quiet"));
    }

    #[test]
    fn typed_access_and_defaults() {
        let parsed = ParsedArgs::parse(["--m", "4"]).unwrap();
        assert_eq!(parsed.get_parsed_or("m", 2usize).unwrap(), 4);
        assert_eq!(parsed.get_parsed_or("k", 9usize).unwrap(), 9);
        assert_eq!(parsed.require_parsed::<usize>("m").unwrap(), 4);
        assert!(parsed.require_parsed::<usize>("missing").is_err());
        let bad = ParsedArgs::parse(["--m", "not-a-number"]).unwrap();
        assert!(bad.get_parsed_or("m", 2usize).is_err());
    }

    #[test]
    fn duplicate_and_empty_options_are_rejected() {
        assert!(ParsedArgs::parse(["--m", "1", "--m", "2"]).is_err());
        assert!(ParsedArgs::parse(["--"]).is_err());
    }

    #[test]
    fn unknown_options_are_rejected_on_request() {
        let parsed = ParsedArgs::parse(["--speed", "3"]).unwrap();
        assert!(parsed.reject_unknown(&["speed"]).is_ok());
        assert!(parsed.reject_unknown(&["m", "k"]).is_err());
    }

    #[test]
    fn flag_followed_by_option_is_a_flag() {
        let parsed = ParsedArgs::parse(["--quiet", "--m", "3"]).unwrap();
        assert!(parsed.has_flag("quiet"));
        assert_eq!(parsed.get("m"), Some("3"));
    }
}
