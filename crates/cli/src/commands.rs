//! The `convoy` subcommands. Every command is a pure function from parsed
//! arguments to a rendered report string, so the logic is unit-testable
//! without spawning processes.

use crate::args::{ArgError, ParsedArgs};
use convoy_core::{
    compare_result_sets, mc2, publish_discovery, publish_stage_timings, CmcEngine, ConvoyQuery,
    CutsConfig, CutsVariant, Discovery, Mc2Config, Method,
};
use convoy_obs::{export, Obs, Registry};
use convoy_stream::{
    feed_order_samples, publish_stream_stats, replay_config, ConvoyStream, EvictionPolicy,
    FeedIngest, StreamConfig,
};
use std::sync::Arc;
use traj_datasets::container::DEFAULT_BLOCK_RECORDS;
use traj_datasets::io::{parse_csv_line, write_csv_file};
use traj_datasets::{
    generate, open_source, write_container_file, DatasetProfile, InputFormat, ProfileName,
};
use traj_simplify::{ReductionStats, SimplificationMethod, ToleranceMode};
use trajectory::{publish_scan_stats, TimeInterval, TrajectoryDatabase, TrajectorySource};

/// A command error: either bad arguments or a failure while executing.
#[derive(Debug)]
pub struct CommandError(pub String);

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CommandError {}

impl From<ArgError> for CommandError {
    fn from(e: ArgError) -> Self {
        CommandError(e.to_string())
    }
}

impl From<trajectory::TrajectoryError> for CommandError {
    fn from(e: trajectory::TrajectoryError) -> Self {
        CommandError(e.to_string())
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError(e.to_string())
    }
}

/// The usage text printed by `convoy help`.
pub const USAGE: &str = "\
convoy — convoy discovery in trajectory databases (VLDB 2008 reproduction)

USAGE:
    convoy <command> [arguments]

COMMANDS:
    generate  --profile truck|cattle|car|taxi [--scale F] [--seed N] --out FILE
              Generate a synthetic trajectory CSV with planted convoys.
    stats     FILE
              Print Table-3-style statistics of a trajectory file.
    convert   IN OUT [--block-records N]
              Re-encode between plain CSV and the binary `.convoy` columnar
              container (formats decided by extension, then magic bytes).
              Reports how many duplicate (object, t) samples the batch
              loader collapsed (it keeps the last; a streaming feed rejects
              them and keeps the first).
    discover  FILE [--method cmc|cuts|cuts-plus|cuts-star] --m N --k N --e F
              [--delta F] [--lambda N] [--global-tolerance] [--stats]
              [--from T] [--to T] [--trace PATH] [--metrics-json PATH]
              [--stream | --parallel [N] | --shards [N]]   (CMC engine:
              streamed sweep is the default; --parallel N partitions time
              across N worker threads; --shards N grid-shards space into N
              cells clustered on worker threads with boundary-halo exchange;
              N omitted or 0 uses every core)
              Run a convoy query and print the discovered convoys.
              --from/--to restrict discovery to samples with T inside the
              inclusive tick window (no interpolation at the edges); on a
              `.convoy` input only the blocks whose time range intersects
              the window are read. --stats additionally prints the metric
              registry (fold counters, candidate/refinement counts, source
              scan counters). --trace PATH writes a Chrome trace_event span
              tree (loadable in Perfetto / chrome://tracing); --metrics-json
              PATH writes the full metrics snapshot (counters, gauges,
              histograms and wall-clock stage timings) as versioned JSON.
    stream    FILE|- --m N --k N --e F [--method cuts|cuts-plus|cuts-star]
              [--delta F] [--lambda N] [--horizon H] [--max-candidates N]
              [--limit N] [--strict] [--trace PATH] [--metrics-json PATH]
              [--checkpoint-path P [--checkpoint-every K]] [--resume P]
              Streaming discovery: feed samples through the incremental
              CuTS pipeline in time order, emitting convoys as they
              confirm. FILE is replayed in time order; `-` reads a live
              `object_id,t,x,y` feed from stdin (requires explicit
              --delta and --lambda; malformed and out-of-order lines are
              rejected and counted, not fatal — --strict makes them fatal
              with the offending line number). --horizon H evicts chains
              older than H ticks and refuses to bridge feed gaps larger
              than H. --checkpoint-path P atomically snapshots the stream
              to P every K closed partitions (K defaults to 1); --resume P
              restores a snapshot and continues — replaying the same feed
              skips everything the checkpoint already ingested. --resume
              conflicts with the query/pipeline flags (they ride in the
              checkpoint).
    simplify  FILE --delta F [--method dp|dp-plus|dp-star]
              Report the vertex reduction of trajectory simplification.
    compare   FILE --m N --k N --e F [--theta F]
              Compare MC2 (moving clusters) against CMC on a convoy query.
    help      Show this message.
";

fn parse_method(name: &str) -> Result<Method, CommandError> {
    match name.to_ascii_lowercase().as_str() {
        "cmc" => Ok(Method::Cmc),
        "cuts" => Ok(Method::Cuts),
        "cuts-plus" | "cuts+" => Ok(Method::CutsPlus),
        "cuts-star" | "cuts*" => Ok(Method::CutsStar),
        other => Err(CommandError(format!(
            "unknown method `{other}` (expected cmc, cuts, cuts-plus or cuts-star)"
        ))),
    }
}

fn parse_profile(name: &str) -> Result<ProfileName, CommandError> {
    match name.to_ascii_lowercase().as_str() {
        "truck" => Ok(ProfileName::Truck),
        "cattle" => Ok(ProfileName::Cattle),
        "car" => Ok(ProfileName::Car),
        "taxi" => Ok(ProfileName::Taxi),
        other => Err(CommandError(format!(
            "unknown profile `{other}` (expected truck, cattle, car or taxi)"
        ))),
    }
}

fn parse_simplifier(name: &str) -> Result<SimplificationMethod, CommandError> {
    match name.to_ascii_lowercase().as_str() {
        "dp" => Ok(SimplificationMethod::Dp),
        "dp-plus" | "dp+" => Ok(SimplificationMethod::DpPlus),
        "dp-star" | "dp*" => Ok(SimplificationMethod::DpStar),
        other => Err(CommandError(format!(
            "unknown simplification method `{other}` (expected dp, dp-plus or dp-star)"
        ))),
    }
}

/// Opens the first positional argument as a [`TrajectorySource`] — CSV or
/// `.convoy` container, decided by extension/magic — so every subcommand
/// accepts either format.
fn open_input(args: &ParsedArgs) -> Result<(String, Box<dyn TrajectorySource>), CommandError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CommandError("missing input path (.csv or .convoy)".into()))?;
    let source = open_source(path)?;
    Ok((path.clone(), source))
}

/// Loads the whole database behind the first positional argument.
fn load_database(args: &ParsedArgs) -> Result<(String, TrajectoryDatabase), CommandError> {
    let (path, mut source) = open_input(args)?;
    let db = source.load()?;
    Ok((path, db))
}

/// Loads the database at `path` through the sniffing factory (the stream
/// command's file-replay path).
fn load_path(path: &str) -> Result<TrajectoryDatabase, CommandError> {
    Ok(open_source(path)?.load()?)
}

/// Resolves the CMC engine from the `--stream` / `--parallel N` /
/// `--shards N` flags. The flags only make sense for the CMC method (the
/// CuTS refinement runs windowed CMC per candidate, a different parallelism
/// axis), so combining them with a CuTS method is reported rather than
/// silently ignored.
fn engine_from_args(args: &ParsedArgs, method: Method) -> Result<CmcEngine, CommandError> {
    if let Some(value) = args.get("stream") {
        return Err(CommandError(format!(
            "--stream takes no value (found `{value}`; place the input path before the flags)"
        )));
    }
    // A bare `--parallel` / `--shards` (no count, e.g. followed by another
    // flag or at the end of the line) parses as a boolean flag; it means
    // "every core" rather than being silently ignored.
    let counted_flag = |key: &str| -> Result<Option<usize>, CommandError> {
        match args.get(key) {
            Some(value) => value
                .parse()
                .map(Some)
                .map_err(|_| CommandError(format!("cannot parse --{key} value `{value}`"))),
            None if args.flags.iter().any(|f| f == key) => Ok(Some(0)),
            None => Ok(None),
        }
    };
    let stream = args.has_flag("stream");
    let parallel = counted_flag("parallel")?;
    let sharded = counted_flag("shards")?;
    let selected =
        usize::from(stream) + usize::from(parallel.is_some()) + usize::from(sharded.is_some());
    if selected > 1 {
        return Err(CommandError(
            "--stream, --parallel and --shards are mutually exclusive".into(),
        ));
    }
    if selected > 0 && method != Method::Cmc {
        return Err(CommandError(
            "--stream/--parallel/--shards select a CMC engine; use them with --method cmc".into(),
        ));
    }
    Ok(match (parallel, sharded) {
        (Some(threads), _) => CmcEngine::Parallel { threads },
        (_, Some(shards)) => CmcEngine::Sharded { shards },
        _ => CmcEngine::Swept,
    })
}

fn query_from_args(args: &ParsedArgs) -> Result<ConvoyQuery, CommandError> {
    let m: usize = args.require_parsed("m")?;
    let k: usize = args.require_parsed("k")?;
    let e: f64 = args.require_parsed("e")?;
    if e <= 0.0 {
        return Err(CommandError("--e must be positive".into()));
    }
    Ok(ConvoyQuery::new(m, k, e))
}

/// `convoy generate`: write a synthetic dataset CSV.
pub fn generate_command(args: &ParsedArgs) -> Result<String, CommandError> {
    args.reject_unknown(&["profile", "scale", "seed", "out"])?;
    let profile_name = parse_profile(
        args.get("profile")
            .ok_or_else(|| CommandError("missing --profile".into()))?,
    )?;
    let scale: f64 = args.get_parsed_or("scale", 0.1)?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    let out = args
        .get("out")
        .ok_or_else(|| CommandError("missing --out".into()))?;

    let profile = DatasetProfile::named(profile_name).scaled(scale);
    let dataset = generate(&profile, seed);
    write_csv_file(&dataset.database, out)?;

    let stats = dataset.database.stats();
    Ok(format!(
        "wrote {out}\nprofile: {profile_name} (scale {scale}, seed {seed})\n{}\nplanted convoys: {}\nsuggested query: --m {} --k {} --e {}",
        stats.to_table(),
        dataset.ground_truth.len(),
        profile.m,
        profile.k,
        profile.e
    ))
}

/// `convoy stats`: Table-3-style statistics of a CSV.
pub fn stats_command(args: &ParsedArgs) -> Result<String, CommandError> {
    args.reject_unknown(&[])?;
    let (path, db) = load_database(args)?;
    let stats = db.stats();
    let domain = db
        .time_domain()
        .map(|d| format!("[{}, {}]", d.start, d.end))
        .unwrap_or_else(|| "(empty)".into());
    Ok(format!(
        "{path}\n{}\ntime domain: {domain}",
        stats.to_table()
    ))
}

/// Decides the format to write at `path` from its extension alone (there is
/// no content to sniff yet).
fn output_format(path: &str) -> Result<InputFormat, CommandError> {
    match std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
    {
        Some(ext) if ext.eq_ignore_ascii_case("convoy") => Ok(InputFormat::Convoy),
        Some(ext) if ext.eq_ignore_ascii_case("csv") => Ok(InputFormat::Csv),
        _ => Err(CommandError(format!(
            "cannot infer output format of `{path}`: use a .csv or .convoy extension"
        ))),
    }
}

/// `convoy convert`: re-encode a trajectory file between the CSV and
/// `.convoy` container formats (directions decided by extension/magic).
pub fn convert_command(args: &ParsedArgs) -> Result<String, CommandError> {
    args.reject_unknown(&["block-records"])?;
    let [input, output] = args.positional.as_slice() else {
        return Err(CommandError(
            "usage: convoy convert IN OUT (formats decided by extension/magic)".into(),
        ));
    };
    let block_records: usize = args.get_parsed_or("block-records", DEFAULT_BLOCK_RECORDS)?;
    if block_records == 0 {
        return Err(CommandError("--block-records must be positive".into()));
    }
    let to_format = output_format(output)?;

    let mut source = open_source(input)?;
    let from_format = source.format_name();
    let db = source.load()?;
    let scan = source.scan_stats();
    drop(source);

    // Batch ingestion keeps the *last* sample per `(object, t)` (see
    // `TrajectoryBuilder::build`), so any collapsed duplicates show up as the
    // gap between records scanned and points stored. A streaming feed of the
    // same file would instead reject these and keep the first sample.
    let duplicates = scan.records_read.saturating_sub(db.total_points() as u64);

    let detail = match to_format {
        InputFormat::Csv => {
            write_csv_file(&db, output)?;
            String::new()
        }
        InputFormat::Convoy => {
            write_container_file(&db, output, block_records)
                .map_err(|e| CommandError(format!("cannot write {output}: {e}")))?;
            let blocks = db.total_points().div_ceil(block_records);
            format!(", {blocks} block(s) of ≤{block_records} record(s)")
        }
    };
    let mut out = format!(
        "{input} ({from_format}) -> {output} ({}): {} object(s), {} point(s){detail}\n",
        to_format.extension(),
        db.len(),
        db.total_points(),
    );
    // The conversion counters ride the same registry rendering path as the
    // other commands' stats blocks. `convert.duplicates_collapsed` counts the
    // (object, t) duplicates the batch loader collapsed (it keeps the last
    // sample; a streaming feed rejects them and keeps the first).
    let views = Registry::new();
    publish_scan_stats(&views, &scan);
    views.counter_store("convert.duplicates_collapsed", duplicates);
    views.counter_store("convert.objects", db.len() as u64);
    views.counter_store("convert.points", db.total_points() as u64);
    out.push_str(&export::render_text(&views.snapshot()));
    Ok(out)
}

/// The `--trace` / `--metrics-json` export flags shared by `discover` and
/// `stream`. When either asks for an export a live [`Registry`] records real
/// spans and wall-clock timings alongside the deterministic counters;
/// otherwise `obs` is the zero-cost no-op and nothing is recorded.
///
/// The `--stats` terminal block deliberately does **not** come from this
/// registry: it is rendered from a fresh views-only registry fed by the
/// deterministic `publish_*` functions, so the report text stays
/// byte-identical run to run (the equivalence tests diff it). Wall-clock
/// values only ever reach the export files.
struct ObsSetup {
    registry: Option<Arc<Registry>>,
    obs: Obs,
    trace: Option<String>,
    metrics: Option<String>,
}

fn obs_from_args(args: &ParsedArgs) -> Result<ObsSetup, CommandError> {
    let path_of = |key: &str| -> Result<Option<String>, CommandError> {
        match args.get(key) {
            Some(path) => Ok(Some(path.to_string())),
            None if args.has_flag(key) => {
                Err(CommandError(format!("--{key} requires an output path")))
            }
            None => Ok(None),
        }
    };
    let trace = path_of("trace")?;
    let metrics = path_of("metrics-json")?;
    if trace.is_none() && metrics.is_none() {
        return Ok(ObsSetup {
            registry: None,
            obs: Obs::noop(),
            trace,
            metrics,
        });
    }
    let registry = Arc::new(Registry::new());
    Ok(ObsSetup {
        obs: Obs::registry(registry.clone()),
        registry: Some(registry),
        trace,
        metrics,
    })
}

impl ObsSetup {
    /// Writes the requested export files from the live registry. A no-op
    /// when neither flag was given.
    fn write_outputs(&self) -> Result<(), CommandError> {
        let Some(registry) = &self.registry else {
            return Ok(());
        };
        if let Some(path) = &self.metrics {
            std::fs::write(path, export::render_json(&registry.snapshot()))
                .map_err(|e| CommandError(format!("cannot write metrics JSON {path}: {e}")))?;
        }
        if let Some(path) = &self.trace {
            std::fs::write(path, export::render_trace(&registry.spans()))
                .map_err(|e| CommandError(format!("cannot write trace {path}: {e}")))?;
        }
        Ok(())
    }
}

/// Parses the optional `--from` / `--to` tick bounds into a time window.
/// A missing bound is open (i64::MIN / i64::MAX); both missing means no
/// window at all (a full load).
fn parse_window(args: &ParsedArgs) -> Result<Option<TimeInterval>, CommandError> {
    let parse_bound = |flag: &str| -> Result<Option<i64>, CommandError> {
        args.get(flag)
            .map(|raw| {
                raw.parse().map_err(|_| {
                    CommandError(format!("cannot parse --{flag} value `{raw}` as a tick"))
                })
            })
            .transpose()
    };
    let from = parse_bound("from")?;
    let to = parse_bound("to")?;
    if from.is_none() && to.is_none() {
        return Ok(None);
    }
    let start = from.unwrap_or(i64::MIN);
    let end = to.unwrap_or(i64::MAX);
    if start > end {
        return Err(CommandError(format!(
            "empty window: --from {start} is after --to {end}"
        )));
    }
    Ok(Some(TimeInterval::new(start, end)))
}

/// `convoy discover`: run a convoy query on a CSV.
pub fn discover_command(args: &ParsedArgs) -> Result<String, CommandError> {
    args.reject_unknown(&[
        "method",
        "m",
        "k",
        "e",
        "delta",
        "lambda",
        "global-tolerance",
        "limit",
        "stats",
        "stream",
        "parallel",
        "shards",
        "from",
        "to",
        "trace",
        "metrics-json",
    ])?;
    let obs = obs_from_args(args)?;
    let (path, mut source) = open_input(args)?;
    source.set_obs(obs.obs.clone());
    let window = parse_window(args)?;
    let db = match window {
        Some(window) => source.load_window(window)?,
        None => source.load()?,
    };
    let scan = source.scan_stats();
    let source_format = source.format_name();
    drop(source);
    let query = query_from_args(args)?;
    let method = parse_method(args.get("method").unwrap_or("cuts-star"))?;
    let engine = engine_from_args(args, method)?;

    let mut config = CutsConfig::new(method.cuts_variant().unwrap_or(CutsVariant::CutsStar));
    if let Some(delta) = args.get("delta") {
        config = config.with_delta(
            delta
                .parse()
                .map_err(|_| CommandError(format!("cannot parse --delta value `{delta}`")))?,
        );
    }
    if let Some(lambda) = args.get("lambda") {
        config = config.with_lambda(
            lambda
                .parse()
                .map_err(|_| CommandError(format!("cannot parse --lambda value `{lambda}`")))?,
        );
    }
    if args.has_flag("global-tolerance") {
        config = config.with_tolerance_mode(ToleranceMode::Global);
    }

    let outcome = Discovery::new(method)
        .with_config(config)
        .with_cmc_engine(engine)
        .with_obs(obs.obs.clone())
        .run(&db, &query);
    let limit: usize = args.get_parsed_or("limit", 50)?;

    if let Some(live) = &obs.registry {
        // Reconcile the live registry with the authoritative outcome (store
        // semantics make this idempotent over the partials recorded during
        // the run), add the wall-clock stage timings — which never appear in
        // the terminal report — and write the export files.
        publish_discovery(live, &outcome);
        publish_scan_stats(live, &scan);
        publish_stage_timings(live, &outcome.timings);
        obs.write_outputs()?;
    }

    let mut out = format!(
        "{path}: {} convoy(s) found by {} in {:.3} s (m={}, k={}, e={})\n",
        outcome.convoys.len(),
        method.name(),
        outcome.timings.total().as_secs_f64(),
        query.m,
        query.k,
        query.e
    );
    if method == Method::Cmc {
        let threads = engine.resolved_threads();
        if let CmcEngine::Sharded { .. } = engine {
            let shards = engine.resolved_shards();
            out.push_str(&format!(
                "engine: sharded ({} shard{}, {} thread{})\n",
                shards,
                if shards == 1 { "" } else { "s" },
                threads,
                if threads == 1 { "" } else { "s" }
            ));
        } else {
            out.push_str(&format!(
                "engine: {} ({} thread{})\n",
                engine.name(),
                threads,
                if threads == 1 { "" } else { "s" }
            ));
        }
    }
    if method != Method::Cmc {
        out.push_str(&format!(
            "filter: {} candidates, δ={:.2}, λ={}, vertex reduction {:.1}%\n",
            outcome.stats.num_candidates,
            outcome.stats.delta,
            outcome.stats.lambda,
            outcome.stats.reduction_percent
        ));
    }
    if args.has_flag("stats") {
        // One rendering path for every stats block: deterministic views
        // published into a fresh registry, rendered by the text exporter.
        out.push_str(&format!("scan: {source_format} source\n"));
        let views = Registry::new();
        publish_discovery(&views, &outcome);
        publish_scan_stats(&views, &scan);
        out.push_str(&export::render_text(&views.snapshot()));
    }
    for convoy in outcome.convoys.iter().take(limit) {
        out.push_str(&format!("  {convoy}\n"));
    }
    if outcome.convoys.len() > limit {
        out.push_str(&format!("  … and {} more\n", outcome.convoys.len() - limit));
    }
    Ok(out)
}

/// `convoy stream`: streaming discovery over a time-ordered feed.
pub fn stream_command(args: &ParsedArgs) -> Result<String, CommandError> {
    args.reject_unknown(&[
        "method",
        "m",
        "k",
        "e",
        "delta",
        "lambda",
        "horizon",
        "max-candidates",
        "limit",
        "checkpoint-path",
        "checkpoint-every",
        "resume",
        "strict",
        "trace",
        "metrics-json",
    ])?;
    let obs = obs_from_args(args)?;
    let path = args
        .positional
        .first()
        .ok_or_else(|| CommandError("missing input (CSV path or `-` for stdin)".into()))?
        .clone();

    let resume = args.get("resume").map(str::to_string);
    let checkpoint_path = args.get("checkpoint-path").map(str::to_string);
    let checkpoint_every: u64 = args.get_parsed_or("checkpoint-every", 1)?;
    if args.get("checkpoint-every").is_some() && checkpoint_path.is_none() {
        return Err(CommandError(
            "--checkpoint-every requires --checkpoint-path".into(),
        ));
    }
    if checkpoint_every == 0 {
        return Err(CommandError(
            "--checkpoint-every must be at least 1 partition".into(),
        ));
    }
    let strict = args.has_flag("strict");
    let limit: usize = args.get_parsed_or("limit", 50)?;

    // Assemble the stream. A resumed session carries its entire
    // configuration inside the checkpoint, so the query/pipeline flags
    // conflict with --resume rather than being silently overridden.
    let (mut stream, samples) = if let Some(ckpt) = &resume {
        for key in [
            "m",
            "k",
            "e",
            "method",
            "delta",
            "lambda",
            "horizon",
            "max-candidates",
        ] {
            if args.get(key).is_some() || args.has_flag(key) {
                return Err(CommandError(format!(
                    "--{key} conflicts with --resume (parameters come from the checkpoint)"
                )));
            }
        }
        let stream = ConvoyStream::restore_with_obs(ckpt, &obs.obs)
            .map_err(|e| CommandError(format!("cannot resume from {ckpt}: {e}")))?;
        let samples = if path == "-" {
            None
        } else {
            Some(feed_order_samples(&load_path(&path)?))
        };
        (stream, samples)
    } else {
        let query = query_from_args(args)?;
        let method = parse_method(args.get("method").unwrap_or("cuts"))?;
        let Some(variant) = method.cuts_variant() else {
            return Err(CommandError(
                "streaming discovery runs the CuTS pipeline; pick --method cuts, cuts-plus or cuts-star"
                    .into(),
            ));
        };

        let mut eviction = EvictionPolicy::unbounded();
        if let Some(horizon) = args.get("horizon") {
            let horizon: i64 = horizon
                .parse()
                .map_err(|_| CommandError(format!("cannot parse --horizon value `{horizon}`")))?;
            if horizon < 1 {
                return Err(CommandError("--horizon must be at least 1 tick".into()));
            }
            eviction = eviction.with_horizon(horizon);
        }
        if let Some(max) = args.get("max-candidates") {
            let max: usize = max.parse().map_err(|_| {
                CommandError(format!("cannot parse --max-candidates value `{max}`"))
            })?;
            if max == 0 {
                return Err(CommandError("--max-candidates must be positive".into()));
            }
            eviction = eviction.with_max_candidates(max);
        }
        let delta_arg: Option<f64> = match args.get("delta") {
            Some(v) => Some(
                v.parse()
                    .map_err(|_| CommandError(format!("cannot parse --delta value `{v}`")))?,
            ),
            None => None,
        };
        let lambda_arg: Option<usize> = match args.get("lambda") {
            Some(v) => Some(
                v.parse()
                    .map_err(|_| CommandError(format!("cannot parse --lambda value `{v}`")))?,
            ),
            None => None,
        };

        // Assemble the feed: a file is replayed in time order (with
        // batch-style automatic δ/λ when not given); stdin is consumed line
        // by line and needs both parameters up front.
        let (config, samples) = if path == "-" {
            let (Some(delta), Some(lambda)) = (delta_arg, lambda_arg) else {
                return Err(CommandError(
                    "reading from stdin requires explicit --delta and --lambda \
                     (automatic selection needs the whole database)"
                        .into(),
                ));
            };
            let config = StreamConfig::new(query, delta, lambda).with_variant(variant);
            (config, None)
        } else {
            // Same δ/λ derivation and feed order as `ReplayStream` — the
            // path the equivalence harness tests — taken wholesale so the
            // CLI can never drift from it.
            let db = load_path(&path)?;
            let mut cuts = CutsConfig::new(variant);
            if let Some(delta) = delta_arg {
                cuts = cuts.with_delta(delta);
            }
            if let Some(lambda) = lambda_arg {
                cuts = cuts.with_lambda(lambda);
            }
            (
                replay_config(&cuts, &db, &query),
                Some(feed_order_samples(&db)),
            )
        };
        let mut stream = ConvoyStream::new(config.with_eviction(eviction));
        stream.set_obs(obs.obs.clone());
        (stream, samples)
    };

    let config = *stream.config();
    let query = config.query;
    let eviction = config.eviction;
    let mut out = format!(
        "{path}: streaming discovery ({} m={} k={} e={} δ={:.2} λ={}{}{})\n",
        config.variant,
        query.m,
        query.k,
        query.e,
        config.delta,
        config.lambda,
        eviction
            .horizon
            .map(|h| format!(" horizon={h}"))
            .unwrap_or_default(),
        eviction
            .max_candidates
            .map(|n| format!(" max-candidates={n}"))
            .unwrap_or_default(),
    );
    if let Some(ckpt) = &resume {
        out.push_str(&format!("resumed from {ckpt}\n"));
    }

    let mut confirmed = 0usize;
    let mut rejected = 0u64;
    let mut emit = |stream: &mut ConvoyStream, out: &mut String| {
        let watermark = stream.watermark().unwrap_or_default();
        for convoy in stream.drain() {
            if confirmed < limit {
                out.push_str(&format!("  [t={watermark}] {convoy}\n"));
            }
            confirmed += 1;
        }
        // The CLI reports candidates only as a count; drop the queue so an
        // unbounded session stays bounded.
        stream.drain_candidates();
    };
    // Checkpoints are cut at partition closes — the only moments where the
    // stream's state is a clean resumable frontier.
    let mut last_checkpoint_at = stream.stats().partitions_closed;
    let mut maybe_checkpoint = |stream: &mut ConvoyStream| -> Result<(), CommandError> {
        let Some(ckpt) = &checkpoint_path else {
            return Ok(());
        };
        let closed = stream.stats().partitions_closed;
        if closed >= last_checkpoint_at + checkpoint_every {
            stream
                .checkpoint(ckpt)
                .map_err(|e| CommandError(format!("cannot write checkpoint {ckpt}: {e}")))?;
            last_checkpoint_at = closed;
        }
        Ok(())
    };

    match samples {
        Some(samples) => {
            for (id, p) in samples {
                match stream.push(id, p.t, p.x, p.y) {
                    Ok(()) => {}
                    // On --resume the file is replayed from the top; the
                    // restored validator rejects exactly the samples the
                    // checkpoint already ingested, which is how the replay
                    // fast-forwards to where it left off.
                    Err(_) if resume.is_some() => {
                        rejected += 1;
                        continue;
                    }
                    Err(e) => panic!("a sorted database replay is a valid feed: {e}"),
                }
                emit(&mut stream, &mut out);
                maybe_checkpoint(&mut stream)?;
            }
        }
        None => {
            use std::io::{BufRead, Write};
            // A live feed must see its convoys as they confirm, not at EOF:
            // print confirmations immediately (a closed pipe is a normal way
            // for the consumer to stop, mirroring main's BrokenPipe guard).
            let live_print = |chunk: &str| {
                if let Err(e) = std::io::stdout().write_all(chunk.as_bytes()) {
                    // Same policy as main's report printing: a closed pipe is
                    // a normal stop, anything else is a loud failure.
                    if e.kind() == std::io::ErrorKind::BrokenPipe {
                        std::process::exit(0);
                    }
                    eprintln!("error: cannot write output: {e}");
                    std::process::exit(1);
                }
            };
            // Header first, then confirmations as they happen; the returned
            // report holds only the end-of-stream summary.
            live_print(&out);
            out.clear();
            let stdin = std::io::stdin();
            for (line_no, line) in stdin.lock().lines().enumerate() {
                let line = line?;
                // A long-lived session must survive one garbled line the
                // same way it survives an out-of-order sample: reject,
                // count, continue — unless --strict asked for fail-fast, in
                // which case the error names the offending line (everything
                // confirmed so far has already been flushed to stdout).
                let parsed = match parse_csv_line(&line, line_no + 1) {
                    Ok(Some(sample)) => sample,
                    Ok(None) => continue,
                    Err(e) => {
                        if strict {
                            return Err(CommandError(format!("invalid feed: {e}")));
                        }
                        rejected += 1;
                        continue;
                    }
                };
                let (id, t, x, y) = parsed;
                if let Err(e) = stream.push(id, t, x, y) {
                    if strict {
                        return Err(CommandError(format!(
                            "invalid feed at line {}: {e}",
                            line_no + 1
                        )));
                    }
                    rejected += 1;
                    continue;
                }
                emit(&mut stream, &mut out);
                live_print(&out);
                out.clear();
                maybe_checkpoint(&mut stream)?;
            }
        }
    }

    let outcome = stream.finish();
    for convoy in outcome.convoys {
        if confirmed < limit {
            out.push_str(&format!("  [t=end] {convoy}\n"));
        }
        confirmed += 1;
    }
    if confirmed > limit {
        out.push_str(&format!("  … and {} more\n", confirmed - limit));
    }
    out.push_str(&format!("confirmed convoys: {confirmed}\n"));
    if rejected > 0 {
        out.push_str(&format!("rejected samples: {rejected}\n"));
    }
    let stats = outcome.stats;
    out.push_str(&format!("partitions closed: {}\n", stats.partitions_closed));
    // Same rendering path as `discover --stats`: deterministic views into a
    // fresh registry, rendered by the text exporter.
    let views = Registry::new();
    publish_stream_stats(&views, &stats);
    out.push_str(&export::render_text(&views.snapshot()));
    if let Some(live) = &obs.registry {
        publish_stream_stats(live, &stats);
        obs.write_outputs()?;
    }
    Ok(out)
}

/// `convoy simplify`: report vertex reduction for a tolerance.
pub fn simplify_command(args: &ParsedArgs) -> Result<String, CommandError> {
    args.reject_unknown(&["delta", "method"])?;
    let (path, db) = load_database(args)?;
    let delta: f64 = args.require_parsed("delta")?;
    if delta < 0.0 {
        return Err(CommandError("--delta must be non-negative".into()));
    }
    let method = parse_simplifier(args.get("method").unwrap_or("dp"))?;
    let simplified: Vec<_> = db.iter().map(|(_, t)| method.simplify(t, delta)).collect();
    let stats = ReductionStats::from_simplified(simplified.iter());
    Ok(format!(
        "{path}: {} with δ={delta}\n\
         trajectories: {}\n\
         points: {} → {} ({:.1}% reduction, factor {:.2})\n\
         max actual tolerance: {:.3}\n\
         mean actual tolerance: {:.3}",
        method.name(),
        stats.num_trajectories,
        stats.original_points,
        stats.simplified_points,
        stats.reduction_percent(),
        stats.reduction_factor(),
        stats.max_actual_tolerance,
        stats.mean_actual_tolerance,
    ))
}

/// `convoy compare`: MC2 accuracy against CMC (the Figure 19 experiment on
/// the user's own data).
pub fn compare_command(args: &ParsedArgs) -> Result<String, CommandError> {
    args.reject_unknown(&["m", "k", "e", "theta"])?;
    let (path, db) = load_database(args)?;
    let query = query_from_args(args)?;
    let theta: f64 = args.get_parsed_or("theta", 0.8)?;
    if !(0.0..=1.0).contains(&theta) {
        return Err(CommandError("--theta must be within [0, 1]".into()));
    }

    let reference = Discovery::new(Method::Cmc).run(&db, &query);
    let reported = mc2(
        &db,
        &Mc2Config {
            e: query.e,
            m: query.m,
            theta,
        },
    );
    let accuracy = compare_result_sets(&reported, &reference.convoys, &query);
    Ok(format!(
        "{path}: MC2 (θ={theta}) vs CMC ground truth\n\
         CMC convoys: {}\n\
         MC2 reported chains: {}\n\
         false positives: {} ({:.1}%)\n\
         false negatives: {} ({:.1}%)",
        accuracy.reference,
        accuracy.reported,
        accuracy.false_positives,
        accuracy.false_positive_percent(),
        accuracy.false_negatives,
        accuracy.false_negative_percent(),
    ))
}

/// Dispatches a subcommand by name.
pub fn run(command: &str, args: &ParsedArgs) -> Result<String, CommandError> {
    match command {
        "generate" => generate_command(args),
        "stats" => stats_command(args),
        "convert" => convert_command(args),
        "discover" => discover_command(args),
        "stream" => stream_command(args),
        "simplify" => simplify_command(args),
        "compare" => compare_command(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CommandError(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_csv(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("convoy-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Value of a registry-rendered metric line (`  name  value`) in a report.
    fn metric(report: &str, name: &str) -> u64 {
        report
            .lines()
            .find_map(|l| {
                let mut fields = l.split_whitespace();
                (fields.next() == Some(name)).then(|| fields.next().unwrap().parse().unwrap())
            })
            .unwrap_or_else(|| panic!("no metric `{name}` in:\n{report}"))
    }

    fn generate_fixture(name: &str) -> String {
        let path = temp_csv(name);
        let args = ParsedArgs::parse([
            "--profile",
            "truck",
            "--scale",
            "0.02",
            "--seed",
            "7",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        generate_command(&args).expect("generation succeeds");
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn generate_and_stats_round_trip() {
        let path = generate_fixture("gen.csv");
        let args = ParsedArgs::parse([path.as_str()]).unwrap();
        let report = stats_command(&args).unwrap();
        assert!(report.contains("number of objects"));
        assert!(report.contains("time domain"));
    }

    #[test]
    fn discover_finds_planted_convoys_on_generated_data() {
        let path = generate_fixture("disc.csv");
        // The generate command prints the suggested query; use the profile's
        // scaled parameters directly here.
        let profile = DatasetProfile::truck().scaled(0.02);
        let args = ParsedArgs::parse([
            path.as_str(),
            "--method",
            "cuts-star",
            "--m",
            &profile.m.to_string(),
            "--k",
            &profile.k.to_string(),
            "--e",
            &profile.e.to_string(),
        ])
        .unwrap();
        let report = discover_command(&args).unwrap();
        assert!(report.contains("convoy(s) found by CuTS*"));
        assert!(report.contains("candidates"));
    }

    #[test]
    fn discover_rejects_bad_arguments() {
        let path = generate_fixture("bad.csv");
        // Missing --e.
        let args = ParsedArgs::parse([path.as_str(), "--m", "3", "--k", "10"]).unwrap();
        assert!(discover_command(&args).is_err());
        // Unknown option.
        let args = ParsedArgs::parse([
            path.as_str(),
            "--m",
            "3",
            "--k",
            "10",
            "--e",
            "5",
            "--bogus",
            "1",
        ])
        .unwrap();
        assert!(discover_command(&args).is_err());
        // Unknown method.
        let args = ParsedArgs::parse([
            path.as_str(),
            "--m",
            "3",
            "--k",
            "10",
            "--e",
            "5",
            "--method",
            "flock",
        ])
        .unwrap();
        assert!(discover_command(&args).is_err());
        // Missing file.
        let args =
            ParsedArgs::parse(["/no/such/file.csv", "--m", "3", "--k", "1", "--e", "5"]).unwrap();
        assert!(discover_command(&args).is_err());
    }

    #[test]
    fn discover_engine_flags_select_cmc_engines_and_agree() {
        let path = generate_fixture("engines.csv");
        let profile = DatasetProfile::truck().scaled(0.02);
        let base = [
            path.as_str(),
            "--method",
            "cmc",
            "--m",
            &profile.m.to_string(),
            "--k",
            &profile.k.to_string(),
            "--e",
            &profile.e.to_string(),
        ];

        let strip_timing = |report: String| -> Vec<String> {
            report
                .lines()
                .filter(|l| l.starts_with("  ") || l.contains("convoy(s) found"))
                .map(|l| {
                    // Drop the wall-clock portion, which varies run to run.
                    match l.split_once(" in ") {
                        Some((head, _)) => head.to_string(),
                        None => l.to_string(),
                    }
                })
                .collect()
        };

        let mut args: Vec<&str> = base.to_vec();
        args.push("--stream");
        let streamed = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap();
        assert!(streamed.contains("engine: swept (1 thread)"));

        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--parallel", "3"]);
        let parallel = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap();
        assert!(parallel.contains("engine: parallel (3 threads)"));

        let sequential = discover_command(&ParsedArgs::parse(base).unwrap()).unwrap();
        assert_eq!(strip_timing(streamed), strip_timing(sequential.clone()));
        assert_eq!(strip_timing(parallel), strip_timing(sequential));
    }

    #[test]
    fn discover_shards_output_is_byte_identical_to_sequential_cmc() {
        let path = generate_fixture("engines-shards.csv");
        let profile = DatasetProfile::truck().scaled(0.02);
        let base = [
            path.as_str(),
            "--method",
            "cmc",
            "--m",
            &profile.m.to_string(),
            "--k",
            &profile.k.to_string(),
            "--e",
            &profile.e.to_string(),
        ];

        // Everything except the engine line and the wall-clock portion of
        // the header must match byte for byte.
        let comparable = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| !l.starts_with("engine:"))
                .map(|l| match l.split_once(" in ") {
                    Some((head, _)) => head.to_string(),
                    None => l.to_string(),
                })
                .collect()
        };

        let sequential = discover_command(&ParsedArgs::parse(base).unwrap()).unwrap();
        assert!(!comparable(&sequential).is_empty());
        for shards in ["2", "5", "16"] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--shards", shards]);
            let sharded = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap();
            assert!(
                sharded.contains(&format!("engine: sharded ({shards} shards")),
                "{sharded}"
            );
            assert_eq!(
                comparable(&sharded),
                comparable(&sequential),
                "--shards {shards} must print byte-identical convoys"
            );
        }

        // Bare `--shards` means one shard per core, never silent fallback.
        let mut args: Vec<&str> = base.to_vec();
        args.push("--shards");
        let report = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap();
        assert!(report.contains("engine: sharded ("), "{report}");
        assert_eq!(comparable(&report), comparable(&sequential));
    }

    #[test]
    fn discover_shards_flag_is_validated() {
        let path = generate_fixture("engines-shards-bad.csv");
        let base = [path.as_str(), "--m", "3", "--k", "5", "--e", "10.0"];
        // --shards with a CuTS method is rejected, not ignored.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--method", "cuts-star", "--shards", "4"]);
        let err = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap_err();
        assert!(err.to_string().contains("--method cmc"), "{err}");
        // --shards and --parallel are mutually exclusive.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--method", "cmc", "--shards", "2", "--parallel", "2"]);
        let err = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        // --shards and --stream are mutually exclusive (bare form included).
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--method", "cmc", "--stream", "--shards"]);
        let err = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        // A non-numeric shard count is a parse error.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--method", "cmc", "--shards", "many"]);
        let err = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");
    }

    #[test]
    fn discover_engine_flags_are_validated() {
        let path = generate_fixture("engines-bad.csv");
        let base = [path.as_str(), "--m", "3", "--k", "5", "--e", "10.0"];
        // --parallel with a CuTS method is rejected, not ignored.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--method", "cuts-star", "--parallel", "2"]);
        let err = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap_err();
        assert!(err.to_string().contains("--method cmc"), "{err}");
        // --stream with a CuTS method (the default) is rejected too.
        let mut args: Vec<&str> = base.to_vec();
        args.push("--stream");
        assert!(discover_command(&ParsedArgs::parse(args).unwrap()).is_err());
        // --stream and --parallel are mutually exclusive.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--method", "cmc", "--parallel", "2", "--stream"]);
        let err = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        // A non-numeric thread count is a parse error.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--method", "cmc", "--parallel", "many"]);
        assert!(discover_command(&ParsedArgs::parse(args).unwrap()).is_err());
    }

    #[test]
    fn bare_parallel_flag_means_every_core_not_silently_sequential() {
        let path = generate_fixture("engines-bare.csv");
        // `--parallel` at the end of the line parses as a boolean flag; it
        // must select the parallel engine (all cores), not fall back to the
        // sequential sweep.
        let args = ParsedArgs::parse([
            path.as_str(),
            "--method",
            "cmc",
            "--m",
            "3",
            "--k",
            "5",
            "--e",
            "10.0",
            "--parallel",
        ])
        .unwrap();
        let report = discover_command(&args).unwrap();
        assert!(report.contains("engine: parallel"), "{report}");
        // And the bare form still participates in mutual exclusion.
        let args = ParsedArgs::parse([
            path.as_str(),
            "--method",
            "cmc",
            "--m",
            "3",
            "--k",
            "5",
            "--e",
            "10.0",
            "--stream",
            "--parallel",
        ])
        .unwrap();
        let err = discover_command(&args).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn simplify_reports_reduction() {
        let path = generate_fixture("simp.csv");
        for method in ["dp", "dp-plus", "dp-star"] {
            let args =
                ParsedArgs::parse([path.as_str(), "--delta", "2.0", "--method", method]).unwrap();
            let report = simplify_command(&args).unwrap();
            assert!(report.contains("reduction"), "{method}: {report}");
        }
        let args = ParsedArgs::parse([path.as_str(), "--delta", "-1"]).unwrap();
        assert!(simplify_command(&args).is_err());
    }

    #[test]
    fn compare_reports_accuracy() {
        let path = generate_fixture("cmp.csv");
        let profile = DatasetProfile::truck().scaled(0.02);
        let args = ParsedArgs::parse([
            path.as_str(),
            "--m",
            &profile.m.to_string(),
            "--k",
            &profile.k.to_string(),
            "--e",
            &profile.e.to_string(),
            "--theta",
            "0.9",
        ])
        .unwrap();
        let report = compare_command(&args).unwrap();
        assert!(report.contains("false positives"));
        assert!(report.contains("false negatives"));
        // θ out of range is rejected.
        let args = ParsedArgs::parse([
            path.as_str(),
            "--m",
            "2",
            "--k",
            "5",
            "--e",
            "5",
            "--theta",
            "1.5",
        ])
        .unwrap();
        assert!(compare_command(&args).is_err());
    }

    /// Converts the generated fixture `name.csv` to `name.convoy` and
    /// returns both paths.
    fn container_fixture(name: &str, block_records: &str) -> (String, String) {
        let csv = generate_fixture(&format!("{name}.csv"));
        let bin = temp_csv(&format!("{name}.convoy"))
            .to_str()
            .unwrap()
            .to_string();
        let args =
            ParsedArgs::parse([csv.as_str(), bin.as_str(), "--block-records", block_records])
                .unwrap();
        convert_command(&args).expect("conversion succeeds");
        (csv, bin)
    }

    #[test]
    fn convert_round_trips_and_reports_duplicates() {
        let (csv, bin) = container_fixture("convert", "64");
        // Back to CSV: the round-tripped file loads to the same database.
        let back = temp_csv("convert-back.csv").to_str().unwrap().to_string();
        let args = ParsedArgs::parse([bin.as_str(), back.as_str()]).unwrap();
        let report = convert_command(&args).unwrap();
        assert!(report.contains("(convoy) -> "), "{report}");
        assert_eq!(metric(&report, "convert.duplicates_collapsed"), 0);
        assert_eq!(load_path(&back).unwrap(), load_path(&csv).unwrap());

        // A file with a duplicate (object, t) sample: the count is surfaced.
        let dup = temp_csv("convert-dup.csv").to_str().unwrap().to_string();
        std::fs::write(&dup, "1,0,1.0,0.0\n1,0,9.0,0.0\n2,0,3.0,3.0\n").unwrap();
        let dup_bin = temp_csv("convert-dup.convoy").to_str().unwrap().to_string();
        let args = ParsedArgs::parse([dup.as_str(), dup_bin.as_str()]).unwrap();
        let report = convert_command(&args).unwrap();
        assert_eq!(metric(&report, "convert.duplicates_collapsed"), 1);
        assert_eq!(metric(&report, "convert.points"), 2);
        assert!(report.contains("2 point(s)"), "{report}");

        // An output without a known extension is rejected up front.
        let args = ParsedArgs::parse([csv.as_str(), "out.parquet"]).unwrap();
        let err = convert_command(&args).unwrap_err();
        assert!(err.to_string().contains("output format"), "{err}");
    }

    #[test]
    fn discover_output_is_byte_identical_across_backends() {
        let (csv, bin) = container_fixture("backends", "16");
        let profile = DatasetProfile::truck().scaled(0.02);
        let m = profile.m.to_string();
        let k = profile.k.to_string();
        let e = profile.e.to_string();
        // Everything except the input path, the wall-clock timing and the
        // scan counters (the `scan:` source line and the `scan.*` registry
        // lines, which legitimately differ per backend) must match byte for
        // byte.
        let comparable = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| !l.starts_with("scan:") && !l.trim_start().starts_with("scan."))
                .map(|l| {
                    if l.contains("convoy(s) found") {
                        let tail = l.split_once(": ").map_or(l, |(_, t)| t);
                        tail.split_once(" in ").map_or(tail, |(h, _)| h).to_string()
                    } else {
                        l.to_string()
                    }
                })
                .collect()
        };
        for method in ["cmc", "cuts", "cuts-plus", "cuts-star"] {
            let run_on = |input: &str| {
                let args = ParsedArgs::parse([
                    input, "--method", method, "--m", &m, "--k", &k, "--e", &e, "--stats",
                ])
                .unwrap();
                discover_command(&args).unwrap()
            };
            let from_csv = run_on(&csv);
            let from_bin = run_on(&bin);
            assert!(from_bin.contains("scan: convoy source"), "{from_bin}");
            assert!(!comparable(&from_csv).is_empty());
            assert_eq!(
                comparable(&from_csv),
                comparable(&from_bin),
                "{method} must not depend on the storage backend"
            );
        }
    }

    #[test]
    fn discover_window_prunes_container_blocks() {
        let (csv, bin) = container_fixture("window", "8");
        let domain = load_path(&csv).unwrap().time_domain().unwrap();
        let mid = (domain.start + (domain.end - domain.start) / 4).to_string();
        let start = domain.start.to_string();
        fn base(input: &str) -> Vec<&str> {
            vec![input, "--m", "3", "--k", "2", "--e", "30", "--stats"]
        }
        let scan_counts = |report: &str| -> (u64, u64) {
            (
                metric(report, "scan.blocks_read"),
                metric(report, "scan.blocks_total"),
            )
        };

        // Full scan reads every block; there are several at 8 records each.
        let full = discover_command(&ParsedArgs::parse(base(&bin)).unwrap()).unwrap();
        let (read, total) = scan_counts(&full);
        assert_eq!(read, total, "{full}");
        assert!(total > 1, "{full}");

        // A window over the first quarter of the domain reads strictly fewer.
        let mut args = base(&bin);
        args.extend(["--from", &start, "--to", &mid]);
        let windowed = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap();
        let (read, total_w) = scan_counts(&windowed);
        assert_eq!(total_w, total);
        assert!(read < total, "{windowed}");

        // The same window over the CSV backend yields identical convoys.
        let mut csv_args = base(&csv);
        csv_args.extend(["--from", &start, "--to", &mid]);
        let csv_windowed = discover_command(&ParsedArgs::parse(csv_args).unwrap()).unwrap();
        let convoys = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| l.starts_with("  ⟨"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(convoys(&csv_windowed), convoys(&windowed));

        // An inverted window is rejected, not silently normalised.
        let mut args = base(&bin);
        args.extend(["--from", "5", "--to", "2"]);
        let err = discover_command(&ParsedArgs::parse(args).unwrap()).unwrap_err();
        assert!(err.to_string().contains("empty window"), "{err}");
    }

    #[test]
    fn discover_writes_schema_valid_metrics_and_trace_exports() {
        let path = generate_fixture("obs-export.csv");
        let trace = temp_csv("obs-export.trace.json");
        let metrics = temp_csv("obs-export.metrics.json");
        let args = ParsedArgs::parse([
            path.as_str(),
            "--method",
            "cmc",
            "--m",
            "3",
            "--k",
            "5",
            "--e",
            "10",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        let report = discover_command(&args).unwrap();
        assert!(report.contains("convoy(s) found by CMC"), "{report}");

        // The metrics snapshot validates against the published v1 schema and
        // carries both the deterministic views and the wall-clock timings.
        let schema_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/metrics-v1.schema.json"
        );
        let schema =
            convoy_obs::json::parse(&std::fs::read_to_string(schema_path).unwrap()).unwrap();
        let doc = convoy_obs::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        convoy_obs::json::validate(&schema, &doc).expect("metrics match the v1 schema");
        let counters = doc.get("counters").expect("counters object");
        assert!(counters.get("cmc.ticks_ingested").is_some(), "views");
        assert!(counters.get("scan.blocks_read").is_some(), "scan views");
        assert!(counters.get("discover.total_ns").is_some(), "timings");

        // The trace is a well-formed Chrome trace_event document rooted at
        // the discover span.
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let trace_doc = convoy_obs::json::parse(&trace_text).unwrap();
        let events = convoy_obs::json::validate_trace(&trace_doc).expect("trace well-formed");
        assert!(events > 0);
        assert!(trace_text.contains("\"discover\""), "{trace_text}");

        // A bare --trace with no path is an error, not a silent no-op.
        let args = ParsedArgs::parse([
            path.as_str(),
            "--m",
            "3",
            "--k",
            "5",
            "--e",
            "10",
            "--trace",
        ])
        .unwrap();
        assert!(discover_command(&args).is_err());
    }

    #[test]
    fn stream_writes_metrics_and_trace_exports() {
        let path = generate_fixture("stream-obs.csv");
        let trace = temp_csv("stream-obs.trace.json");
        let metrics = temp_csv("stream-obs.metrics.json");
        let args = ParsedArgs::parse([
            path.as_str(),
            "--m",
            "3",
            "--k",
            "5",
            "--e",
            "10",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-json",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        let report = stream_command(&args).unwrap();
        assert!(report.contains("partitions closed:"), "{report}");

        let doc = convoy_obs::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let counters = doc.get("counters").expect("counters object");
        assert!(counters.get("stream.samples_ingested").is_some());
        assert!(counters.get("stream.partitions_closed").is_some());
        let trace_doc = convoy_obs::json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(convoy_obs::json::validate_trace(&trace_doc).unwrap() > 0);
    }

    #[test]
    fn dispatch_and_help() {
        assert!(run("help", &ParsedArgs::default())
            .unwrap()
            .contains("USAGE"));
        assert!(run("no-such-command", &ParsedArgs::default()).is_err());
        assert!(USAGE.contains("convert"));
        assert!(USAGE.contains("--from"));
    }

    #[test]
    fn method_and_profile_parsing() {
        assert_eq!(parse_method("CUTS-STAR").unwrap(), Method::CutsStar);
        assert_eq!(parse_method("cuts+").unwrap(), Method::CutsPlus);
        assert!(parse_method("flock").is_err());
        assert_eq!(parse_profile("Cattle").unwrap(), ProfileName::Cattle);
        assert!(parse_profile("birds").is_err());
        assert_eq!(
            parse_simplifier("dp*").unwrap(),
            SimplificationMethod::DpStar
        );
        assert!(parse_simplifier("rdp").is_err());
    }
}
