//! `convoy` — the command-line front end for convoy discovery.
//!
//! Run `convoy help` for usage. All real work lives in [`commands`]; `main`
//! only handles process-level concerns (argument splitting, exit codes).

mod args;
mod commands;

use args::ParsedArgs;

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    };
    let parsed = match ParsedArgs::parse(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match commands::run(&command, &parsed) {
        Ok(report) => {
            use std::io::Write;
            let mut stdout = std::io::stdout();
            if let Err(e) = writeln!(stdout, "{report}") {
                // A closed pipe (e.g. `convoy stats file.csv | head`) is a
                // normal way for a consumer to stop reading, not an error.
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    std::process::exit(0);
                }
                eprintln!("error: cannot write output: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
