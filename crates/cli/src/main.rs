//! `convoy` — the command-line front end for convoy discovery.
//!
//! Run `convoy help` for usage. All real work lives in [`commands`]; `main`
//! only handles process-level concerns (argument splitting, exit codes).

mod args;
mod commands;

use args::ParsedArgs;

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    };
    let parsed = match ParsedArgs::parse(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match commands::run(&command, &parsed) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
