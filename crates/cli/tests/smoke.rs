//! Process-level smoke tests of the `convoy` binary: usage text and exit
//! codes per subcommand (exit 2 for argument-syntax errors, 1 for command
//! failures, 0 for success), following the assert_cmd pattern.

use assert_cmd::Command;

fn convoy() -> Command {
    Command::cargo_bin("convoy").expect("convoy binary built by cargo test")
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("convoy-cli-smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn no_arguments_prints_usage_on_stderr_and_exits_2() {
    convoy()
        .assert()
        .failure()
        .code(2)
        .stdout_is_empty()
        .stderr_contains("USAGE:")
        .stderr_contains("convoy <command>");
}

#[test]
fn help_prints_usage_on_stdout_and_succeeds() {
    convoy()
        .arg("help")
        .assert()
        .success()
        .stdout_contains("USAGE:")
        .stdout_contains("discover")
        .stdout_contains("generate");
}

#[test]
fn unknown_command_fails_with_usage() {
    convoy()
        .arg("migrate")
        .assert()
        .failure()
        .code(1)
        .stderr_contains("unknown command `migrate`")
        .stderr_contains("USAGE:");
}

#[test]
fn malformed_option_syntax_exits_2() {
    // A duplicated option is an argument-syntax error, reported before any
    // command logic runs.
    convoy()
        .args(["discover", "in.csv", "--m", "1", "--m", "2"])
        .assert()
        .failure()
        .code(2)
        .stderr_contains("given twice");
}

#[test]
fn generate_requires_profile_and_out() {
    convoy()
        .args(["generate", "--out", "/tmp/never-written.csv"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("missing --profile");
    convoy()
        .args(["generate", "--profile", "truck"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("missing --out");
}

#[test]
fn stats_requires_an_input_path() {
    convoy()
        .arg("stats")
        .assert()
        .failure()
        .code(1)
        .stderr_contains("missing input path");
}

#[test]
fn discover_requires_query_parameters() {
    let path = temp_path("query-params.csv");
    std::fs::write(&path, "object_id,t,x,y\n1,0,0.0,0.0\n1,1,1.0,0.0\n").unwrap();
    convoy()
        .args(["discover", path.to_str().unwrap(), "--k", "2", "--e", "1.0"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("missing required option --m");
}

#[test]
fn discover_rejects_unknown_method_and_missing_file() {
    let path = temp_path("bad-method.csv");
    std::fs::write(&path, "object_id,t,x,y\n1,0,0.0,0.0\n").unwrap();
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args(["--m", "2", "--k", "2", "--e", "1.0", "--method", "flock"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("unknown method `flock`");
    convoy()
        .args(["discover", "/no/such/file.csv", "--m", "2", "--k", "2"])
        .args(["--e", "1.0"])
        .assert()
        .failure()
        .code(1);
}

#[test]
fn simplify_requires_delta() {
    let path = temp_path("simplify-delta.csv");
    std::fs::write(&path, "object_id,t,x,y\n1,0,0.0,0.0\n1,1,1.0,0.0\n").unwrap();
    convoy()
        .args(["simplify", path.to_str().unwrap()])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("missing required option --delta");
}

#[test]
fn compare_rejects_theta_outside_unit_interval() {
    let path = temp_path("compare-theta.csv");
    std::fs::write(&path, "object_id,t,x,y\n1,0,0.0,0.0\n1,1,1.0,0.0\n").unwrap();
    convoy()
        .args(["compare", path.to_str().unwrap()])
        .args(["--m", "2", "--k", "2", "--e", "1.0", "--theta", "1.5"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("--theta must be within [0, 1]");
}

#[test]
fn discover_cmc_engine_flags() {
    let path = temp_path("engine-flags.csv");
    convoy()
        .args(["generate", "--profile", "truck", "--scale", "0.02"])
        .args(["--seed", "11", "--out", path.to_str().unwrap()])
        .assert()
        .success();
    let query = ["--method", "cmc", "--m", "3", "--k", "5", "--e", "10"];
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args(query)
        .arg("--stream")
        .assert()
        .success()
        .stdout_contains("found by CMC")
        .stdout_contains("engine: swept");
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args(query)
        .args(["--parallel", "2"])
        .assert()
        .success()
        .stdout_contains("engine: parallel (2 threads)");
    // Engine flags are CMC-only and mutually exclusive.
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args(["--method", "cuts-star", "--m", "3", "--k", "5", "--e", "10"])
        .args(["--parallel", "2"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("--method cmc");
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args(query)
        .args(["--parallel", "2", "--stream"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("mutually exclusive");
}

#[test]
fn discover_sharded_engine_end_to_end() {
    let path = temp_path("engine-shards.csv");
    convoy()
        .args(["generate", "--profile", "truck", "--scale", "0.02"])
        .args(["--seed", "11", "--out", path.to_str().unwrap()])
        .assert()
        .success();
    let query = ["--method", "cmc", "--m", "3", "--k", "5", "--e", "10"];
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args(query)
        .args(["--shards", "4"])
        .assert()
        .success()
        .stdout_contains("found by CMC")
        .stdout_contains("engine: sharded (4 shards");
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args(query)
        .args(["--shards", "4", "--parallel", "2"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("mutually exclusive");
}

#[test]
fn discover_stats_flag_prints_fold_counters() {
    let path = temp_path("discover-stats.csv");
    convoy()
        .args(["generate", "--profile", "truck", "--scale", "0.02"])
        .args(["--seed", "11", "--out", path.to_str().unwrap()])
        .assert()
        .success();
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args([
            "--method", "cmc", "--m", "3", "--k", "5", "--e", "10", "--stats",
        ])
        .assert()
        .success()
        .stdout_contains("stats:")
        .stdout_contains("cmc.peak_candidates")
        .stdout_contains("cmc.ticks_ingested")
        .stdout_contains("cmc.convoys_closed");
    // The counters come from the refinement fold for CuTS methods too.
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args([
            "--method",
            "cuts-star",
            "--m",
            "3",
            "--k",
            "5",
            "--e",
            "10",
            "--stats",
        ])
        .assert()
        .success()
        .stdout_contains("cmc.peak_candidates");
}

#[test]
fn stream_replays_a_file_and_reports_stream_stats() {
    let path = temp_path("stream-file.csv");
    convoy()
        .args(["generate", "--profile", "truck", "--scale", "0.02"])
        .args(["--seed", "11", "--out", path.to_str().unwrap()])
        .assert()
        .success();
    convoy()
        .args(["stream", path.to_str().unwrap()])
        .args(["--m", "3", "--k", "5", "--e", "10"])
        .assert()
        .success()
        .stdout_contains("streaming discovery (CuTS")
        .stdout_contains("confirmed convoys:")
        .stdout_contains("partitions closed:")
        .stdout_contains("cmc.peak_candidates");
    // A horizon is accepted and echoed.
    convoy()
        .args(["stream", path.to_str().unwrap()])
        .args(["--m", "3", "--k", "5", "--e", "10", "--horizon", "20"])
        .assert()
        .success()
        .stdout_contains("horizon=20");
}

#[test]
fn stream_reads_a_live_feed_from_stdin() {
    let mut feed = String::from("object_id,t,x,y\n");
    for t in 0..12 {
        feed.push_str(&format!("1,{t},{t}.0,0.0\n"));
        feed.push_str(&format!("2,{t},{t}.0,0.5\n"));
    }
    // One out-of-order straggler must be rejected, not fatal.
    feed.push_str("3,0,9.0,9.0\n");
    convoy()
        .args(["stream", "-", "--m", "2", "--k", "4", "--e", "1"])
        .args(["--delta", "0.2", "--lambda", "4"])
        .write_stdin(feed)
        .assert()
        .success()
        .stdout_contains("⟨{o1, o2}, [0, 11]⟩")
        .stdout_contains("confirmed convoys: 1")
        .stdout_contains("rejected samples: 1");
}

#[test]
fn stream_validates_its_arguments() {
    // CMC is not a streaming method.
    convoy()
        .args(["stream", "in.csv", "--m", "2", "--k", "2", "--e", "1"])
        .args(["--method", "cmc"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("cuts");
    // Stdin requires explicit δ and λ.
    convoy()
        .args(["stream", "-", "--m", "2", "--k", "2", "--e", "1"])
        .write_stdin("")
        .assert()
        .failure()
        .code(1)
        .stderr_contains("--delta and --lambda");
    // Bad horizon.
    let path = temp_path("stream-bad.csv");
    std::fs::write(&path, "object_id,t,x,y\n1,0,0.0,0.0\n").unwrap();
    convoy()
        .args(["stream", path.to_str().unwrap()])
        .args(["--m", "2", "--k", "2", "--e", "1", "--horizon", "0"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("--horizon");
}

/// A stdin feed with a convoy that confirms mid-feed: a pair travels
/// together for t=0..=9, separates for t=10..=29 (closing the convoy well
/// before EOF), then one out-of-order straggler arrives as the final line.
fn feed_with_late_straggler() -> (String, usize) {
    let mut feed = String::from("object_id,t,x,y\n");
    for t in 0..30 {
        let y2 = if t < 10 { 0.5 } else { 100.0 };
        feed.push_str(&format!("1,{t},{t}.0,0.0\n"));
        feed.push_str(&format!("2,{t},{t}.0,{y2}\n"));
    }
    feed.push_str("1,5,5.0,0.0\n");
    (feed, 62)
}

#[test]
fn stream_strict_fails_on_bad_line_after_flushing_confirmed_convoys() {
    let (feed, bad_line) = feed_with_late_straggler();
    let assert = convoy()
        .args(["stream", "-", "--m", "2", "--k", "4", "--e", "1"])
        .args(["--delta", "0.2", "--lambda", "4", "--strict"])
        .write_stdin(feed.clone())
        .assert()
        .failure()
        .code(1)
        .stderr_contains(format!("line {bad_line}"))
        .stderr_contains("out-of-order")
        // The convoy confirmed before the bad line was already flushed.
        .stdout_contains("⟨{o1, o2}, [0, 9]⟩");
    let stdout = String::from_utf8_lossy(&assert.get_output().stdout).to_string();
    assert!(
        !stdout.contains("confirmed convoys:"),
        "strict failure must not print the end-of-stream summary:\n{stdout}"
    );
    // Without --strict the same feed finishes, counting the reject.
    convoy()
        .args(["stream", "-", "--m", "2", "--k", "4", "--e", "1"])
        .args(["--delta", "0.2", "--lambda", "4"])
        .write_stdin(feed)
        .assert()
        .success()
        .stdout_contains("⟨{o1, o2}, [0, 9]⟩")
        .stdout_contains("rejected samples: 1");
}

/// The `stats:` block, its registry metric lines (two-space indent then a
/// lowercase metric name — convoy lines start `  [t=`) and the `partitions
/// closed:` line of a stream report — the cumulative counters a resumed run
/// must reproduce byte for byte.
fn summary_lines(stdout: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| {
            let metric_line = l
                .strip_prefix("  ")
                .and_then(|rest| rest.chars().next())
                .is_some_and(|c| c.is_ascii_lowercase());
            l.starts_with("stats:") || l.starts_with("partitions closed:") || metric_line
        })
        .map(str::to_string)
        .collect()
}

#[test]
fn stream_checkpoint_then_resume_reproduces_the_straight_run_counters() {
    let data = temp_path("ckpt-data.csv");
    let ckpt = temp_path("ckpt-state.snap");
    let _ = std::fs::remove_file(&ckpt);
    convoy()
        .args(["generate", "--profile", "truck", "--scale", "0.02"])
        .args(["--seed", "11", "--out", data.to_str().unwrap()])
        .assert()
        .success();
    let query = ["--m", "3", "--k", "5", "--e", "10"];

    let straight = convoy()
        .args(["stream", data.to_str().unwrap()])
        .args(query)
        .assert()
        .success();
    let expected = summary_lines(&straight.get_output().stdout);
    assert!(expected.len() > 2, "summary lines present: {expected:?}");

    convoy()
        .args(["stream", data.to_str().unwrap()])
        .args(query)
        .args(["--checkpoint-path", ckpt.to_str().unwrap()])
        .assert()
        .success();
    assert!(ckpt.exists(), "checkpoint file written");
    let tmp = ckpt.with_extension("snap.tmp");
    assert!(!tmp.exists(), "temp file renamed away, not left behind");

    // Resuming and replaying the same feed fast-forwards past everything the
    // checkpoint already ingested and lands on identical cumulative stats.
    let resumed = convoy()
        .args(["stream", data.to_str().unwrap()])
        .args(["--resume", ckpt.to_str().unwrap()])
        .assert()
        .success()
        .stdout_contains("resumed from");
    assert_eq!(summary_lines(&resumed.get_output().stdout), expected);
}

#[test]
fn stream_checkpoint_flags_are_validated() {
    let path = temp_path("ckpt-flags.csv");
    std::fs::write(&path, "object_id,t,x,y\n1,0,0.0,0.0\n1,1,1.0,0.0\n").unwrap();
    // --resume carries its configuration; query flags conflict.
    let ckpt = temp_path("ckpt-flags.snap");
    convoy()
        .args(["stream", path.to_str().unwrap()])
        .args(["--resume", ckpt.to_str().unwrap(), "--m", "2"])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("conflicts with --resume");
    // --checkpoint-every is meaningless without a path.
    convoy()
        .args(["stream", path.to_str().unwrap()])
        .args([
            "--m",
            "2",
            "--k",
            "2",
            "--e",
            "1",
            "--checkpoint-every",
            "3",
        ])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("--checkpoint-every requires --checkpoint-path");
    // A garbage checkpoint is a clean error, not a panic.
    let garbage = temp_path("ckpt-garbage.snap");
    std::fs::write(&garbage, b"this is not a checkpoint").unwrap();
    convoy()
        .args(["stream", path.to_str().unwrap()])
        .args(["--resume", garbage.to_str().unwrap()])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("cannot resume from")
        .stderr_contains("bad magic");
}

#[test]
fn convert_then_discover_runs_on_the_container_end_to_end() {
    let csv = temp_path("container.csv");
    let bin = temp_path("container.convoy");
    convoy()
        .args(["generate", "--profile", "truck", "--scale", "0.02"])
        .args(["--seed", "7", "--out", csv.to_str().unwrap()])
        .assert()
        .success();
    convoy()
        .args(["convert", csv.to_str().unwrap(), bin.to_str().unwrap()])
        .args(["--block-records", "32"])
        .assert()
        .success()
        .stdout_contains("convert.duplicates_collapsed")
        .stdout_contains("convert.points");
    // Every subcommand accepts the container directly.
    convoy()
        .args(["stats", bin.to_str().unwrap()])
        .assert()
        .success()
        .stdout_contains("number of objects");
    convoy()
        .args(["discover", bin.to_str().unwrap()])
        .args(["--m", "3", "--k", "5", "--e", "10", "--stats"])
        .args(["--from", "0", "--to", "25"])
        .assert()
        .success()
        .stdout_contains("scan: convoy source");
    // Corruption is a clean typed error, never a panic.
    let garbage = temp_path("garbage.convoy");
    std::fs::write(&garbage, b"CONVOYTRgarbage").unwrap();
    convoy()
        .args(["stats", garbage.to_str().unwrap()])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("invalid trajectory container");
    // convert without two paths is an argument error.
    convoy()
        .args(["convert", csv.to_str().unwrap()])
        .assert()
        .failure()
        .code(1)
        .stderr_contains("convoy convert IN OUT");
}

#[test]
fn generate_stats_discover_pipeline_succeeds() {
    let path = temp_path("pipeline.csv");
    convoy()
        .args(["generate", "--profile", "truck", "--scale", "0.02"])
        .args(["--seed", "7", "--out", path.to_str().unwrap()])
        .assert()
        .success()
        .stdout_contains("wrote")
        .stdout_contains("suggested query:");
    convoy()
        .args(["stats", path.to_str().unwrap()])
        .assert()
        .success()
        .stdout_contains("number of objects")
        .stdout_contains("time domain");
    convoy()
        .args(["discover", path.to_str().unwrap()])
        .args(["--method", "cuts-star", "--m", "3", "--k", "5", "--e", "10"])
        .assert()
        .success()
        .stdout_contains("convoy(s) found by CuTS*");
    convoy()
        .args(["simplify", path.to_str().unwrap(), "--delta", "2.0"])
        .assert()
        .success()
        .stdout_contains("reduction");
}
