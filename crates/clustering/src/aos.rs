//! The **frozen scalar array-of-structs CSR grid**, kept verbatim as the
//! baseline the batched structure-of-arrays kernel is measured and tested
//! against — not production code (the same role [`crate::reference`] plays
//! for the original `HashMap` grid).
//!
//! This is the PR-5 CSR [`GridIndex`](crate::GridIndex) exactly as it stood
//! before the SoA rewrite: buckets store a cell-local `Vec<Point>` copy
//! (interleaved x/y — array of structs), the `(cell key, point idx)` pairs
//! are grouped with a comparison `sort_unstable`, and the per-bucket
//! distance scan walks one scalar `distance_squared` at a time with a
//! branch per point. Everything else (packed keys, sorted key table, probe
//! table, column chaining) is identical to the production grid, so a
//! benchmark of the two isolates precisely the layout + kernel change, and
//! an equivalence test of the two pins the batched path to the historical
//! hits and order.
//!
//! Do not "improve" this module: any edit here silently changes what
//! `kernel_equivalence.rs` and `BENCH_kernels.json` claim to pin.

use crate::dbscan::RegionQuery;
use trajectory::geometry::Point;

/// The pre-SoA CSR grid: identical structure to the production
/// [`GridIndex`](crate::GridIndex) except for array-of-structs bucket
/// storage and the scalar per-point distance scan.
#[derive(Debug, Clone, Default)]
pub struct AosGridIndex {
    points: Vec<Point>,
    epsilon: f64,
    keyed: Vec<(u128, u32)>,
    cell_keys: Vec<u128>,
    bucket_starts: Vec<u32>,
    bucket_points: Vec<u32>,
    /// The points in bucket order — the interleaved-coordinate cell-local
    /// copy the SoA rewrite split into `xs`/`ys` columns.
    cell_points: Vec<Point>,
    rank_table: Vec<(u32, u32)>,
    point_rank: Vec<u32>,
}

const EMPTY_SLOT: u32 = u32::MAX;

const CELL_LIMIT: f64 = (1i64 << 62) as f64;

impl AosGridIndex {
    /// Builds the index over `points` for range queries of radius `epsilon`.
    pub fn build(points: Vec<Point>, epsilon: f64) -> Self {
        let mut index = AosGridIndex {
            points,
            ..AosGridIndex::default()
        };
        index.epsilon = if epsilon > 0.0 { epsilon } else { f64::EPSILON };
        index.rebuild_cells();
        index
    }

    /// Re-indexes in place (the reuse entry point, as in the production
    /// grid).
    pub fn rebuild(&mut self, epsilon: f64, points: impl IntoIterator<Item = Point>) {
        self.points.clear();
        self.points.extend(points);
        self.epsilon = if epsilon > 0.0 { epsilon } else { f64::EPSILON };
        self.rebuild_cells();
    }

    fn rebuild_cells(&mut self) {
        assert!(
            self.points.len() < u32::MAX as usize,
            "grid index caps below u32::MAX points"
        );
        self.keyed.clear();
        let epsilon = self.epsilon;
        self.keyed.extend(
            self.points
                .iter()
                .enumerate()
                // lint: allow(cast-audit) — point count < u32::MAX, asserted above
                .map(|(i, p)| (pack(cell_of(p, epsilon)), i as u32)),
        );
        // The frozen build path: one comparison sort of the (key, idx)
        // pairs — the cost profile the radix/counting rewrite is measured
        // against.
        self.keyed.sort_unstable();
        self.cell_keys.clear();
        self.bucket_starts.clear();
        self.bucket_points.clear();
        self.cell_points.clear();
        self.point_rank.clear();
        self.point_rank.resize(self.points.len(), 0);
        for (i, &(key, point)) in self.keyed.iter().enumerate() {
            if self.cell_keys.last() != Some(&key) {
                self.cell_keys.push(key);
                // lint: allow(cast-audit) — pair index ≤ point count < u32::MAX, asserted above
                self.bucket_starts.push(i as u32);
            }
            // lint: allow(cast-audit) — cell count ≤ point count < u32::MAX, asserted above
            self.point_rank[point as usize] = (self.cell_keys.len() - 1) as u32;
            self.bucket_points.push(point);
            self.cell_points.push(self.points[point as usize]);
        }
        // lint: allow(cast-audit) — keyed holds one pair per point, < u32::MAX, asserted above
        self.bucket_starts.push(self.keyed.len() as u32);

        let slots = (self.cell_keys.len() * 2).next_power_of_two().max(4);
        self.rank_table.clear();
        self.rank_table.resize(slots, (0, EMPTY_SLOT));
        let mask = slots - 1;
        for (rank, &key) in self.cell_keys.iter().enumerate() {
            let hash = hash_key(key);
            let mut slot = hash as usize & mask;
            while self.rank_table[slot].1 != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            // lint: allow(cast-audit) — rank ≤ cell count < u32::MAX, asserted above
            self.rank_table[slot] = (tag(hash), rank as u32);
        }
    }

    fn bucket_rank(&self, key: u128) -> Option<usize> {
        let mask = self.rank_table.len().checked_sub(1)?;
        let hash = hash_key(key);
        let tag = tag(hash);
        let mut slot = hash as usize & mask;
        loop {
            let (stored_tag, rank) = self.rank_table[slot];
            if rank == EMPTY_SLOT {
                return None;
            }
            if stored_tag == tag && self.cell_keys[rank as usize] == key {
                return Some(rank as usize);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Like the production `range_query_into`: same hits, same order, but
    /// through the scalar array-of-structs bucket scan.
    pub fn range_query_into(&self, target: &Point, out: &mut Vec<usize>) {
        out.clear();
        let (cx, cy) = cell_of(target, self.epsilon);
        let eps_sq = self.epsilon * self.epsilon;
        self.scan_column(cx - 1, cy, None, target, eps_sq, out);
        self.scan_column(cx, cy, None, target, eps_sq, out);
        self.scan_column(cx + 1, cy, None, target, eps_sq, out);
    }

    fn scan_column(
        &self,
        col: i64,
        cy: i64,
        center_rank: Option<usize>,
        target: &Point,
        eps_sq: f64,
        out: &mut Vec<usize>,
    ) {
        let k_lo = pack((col, cy - 1));
        let k_mid = pack((col, cy));
        let k_hi = pack((col, cy + 1));
        let lo_adjacent = k_lo.checked_add(1) == Some(k_mid);
        let mid_adjacent = k_mid.checked_add(1) == Some(k_hi);

        let r_lo = match center_rank {
            Some(r_mid) if lo_adjacent => {
                if r_mid > 0 && self.cell_keys[r_mid - 1] == k_lo {
                    Some(r_mid - 1)
                } else {
                    None
                }
            }
            _ => self.bucket_rank(k_lo),
        };
        self.scan_bucket(r_lo, target, eps_sq, out);

        let r_mid = match (center_rank, r_lo) {
            (Some(r), _) => Some(r),
            (None, Some(r)) if lo_adjacent => {
                if self.cell_keys.get(r + 1) == Some(&k_mid) {
                    Some(r + 1)
                } else {
                    None
                }
            }
            _ => self.bucket_rank(k_mid),
        };
        self.scan_bucket(r_mid, target, eps_sq, out);

        let r_hi = match (r_mid, r_lo) {
            (Some(r), _) if mid_adjacent => {
                if self.cell_keys.get(r + 1) == Some(&k_hi) {
                    Some(r + 1)
                } else {
                    None
                }
            }
            (None, Some(r)) if lo_adjacent && mid_adjacent => {
                if self.cell_keys.get(r + 1) == Some(&k_hi) {
                    Some(r + 1)
                } else {
                    None
                }
            }
            _ => self.bucket_rank(k_hi),
        };
        self.scan_bucket(r_hi, target, eps_sq, out);
    }

    /// The frozen scalar-AoS distance scan: one `distance_squared` and one
    /// data-dependent branch per bucket point.
    fn scan_bucket(&self, rank: Option<usize>, target: &Point, eps_sq: f64, out: &mut Vec<usize>) {
        let Some(rank) = rank else { return };
        let start = self.bucket_starts[rank] as usize;
        let end = self.bucket_starts[rank + 1] as usize;
        let pts = &self.cell_points[start..end];
        let idxs = &self.bucket_points[start..end];
        for (p, &i) in pts.iter().zip(idxs) {
            if p.distance_squared(target) <= eps_sq {
                out.push(i as usize);
            }
        }
    }
}

fn hash_key(key: u128) -> u64 {
    let lo = key as u64;
    let hi = (key >> 64) as u64;
    (hi ^ lo.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn tag(hash: u64) -> u32 {
    // lint: allow(cast-audit) — intentional truncation to the high 32 bits
    (hash >> 32) as u32
}

fn cell_coord(v: f64, epsilon: f64) -> i64 {
    let cell = (v / epsilon).floor();
    if cell.is_nan() {
        return 0;
    }
    cell.clamp(-CELL_LIMIT, CELL_LIMIT) as i64
}

fn cell_of(p: &Point, epsilon: f64) -> (i64, i64) {
    (cell_coord(p.x, epsilon), cell_coord(p.y, epsilon))
}

fn pack((cx, cy): (i64, i64)) -> u128 {
    ((cx as u64 as u128) << 64) | (cy as u64 as u128)
}

fn unpack(key: u128) -> (i64, i64) {
    (((key >> 64) as u64) as i64, (key as u64) as i64)
}

impl RegionQuery for AosGridIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.neighbors_into(idx, &mut out);
        out
    }

    fn neighbors_into(&self, idx: usize, out: &mut Vec<usize>) {
        out.clear();
        let target = &self.points[idx];
        let eps_sq = self.epsilon * self.epsilon;
        let rank = self.point_rank[idx] as usize;
        let (cx, cy) = unpack(self.cell_keys[rank]);
        self.scan_column(cx - 1, cy, None, target, eps_sq, out);
        self.scan_column(cx, cy, Some(rank), target, eps_sq, out);
        self.scan_column(cx + 1, cy, None, target, eps_sq, out);
    }
}
