//! Clusters of object identifiers.

use serde::{Deserialize, Serialize};
use trajectory::ObjectId;

/// A cluster of objects: a sorted, de-duplicated set of object ids.
///
/// Clusters are the currency exchanged between the snapshot/segment
/// clustering routines and the convoy candidate bookkeeping (where they are
/// intersected across time). Keeping the ids sorted makes intersection and
/// overlap counting linear.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Cluster {
    members: Vec<ObjectId>,
}

impl Cluster {
    /// Creates a cluster from arbitrary ids (sorted and de-duplicated).
    pub fn new(mut members: Vec<ObjectId>) -> Self {
        members.sort_unstable();
        members.dedup();
        Cluster { members }
    }

    /// Refills this cluster in place from arbitrary ids (sorted and
    /// de-duplicated, like [`Cluster::new`]) — the allocation-free
    /// counterpart of `*self = Cluster::new(...)`, reusing the member
    /// buffer's existing capacity. Used by the snapshot clusterer's pooled
    /// output clusters.
    pub fn assign<I: IntoIterator<Item = ObjectId>>(&mut self, ids: I) {
        self.members.clear();
        self.members.extend(ids);
        self.members.sort_unstable();
        self.members.dedup();
    }

    /// The member ids, sorted ascending.
    #[inline]
    pub fn members(&self) -> &[ObjectId] {
        &self.members
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when the cluster has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test (binary search over the sorted ids).
    pub fn contains(&self, id: ObjectId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// The intersection of two clusters.
    pub fn intersection(&self, other: &Cluster) -> Cluster {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.members.len() && j < other.members.len() {
            match self.members[i].cmp(&other.members[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.members[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Cluster { members: out }
    }

    /// Number of common members (size of the intersection, without
    /// materialising it).
    pub fn overlap(&self, other: &Cluster) -> usize {
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < self.members.len() && j < other.members.len() {
            match self.members[i].cmp(&other.members[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Number of members in the union of the two clusters.
    pub fn union_size(&self, other: &Cluster) -> usize {
        self.len() + other.len() - self.overlap(other)
    }

    /// The Jaccard overlap `|a ∩ b| / |a ∪ b|` used by the moving-cluster
    /// baseline MC2 (θ threshold). Zero when both clusters are empty.
    pub fn jaccard(&self, other: &Cluster) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 0.0;
        }
        self.overlap(other) as f64 / union as f64
    }

    /// Returns `true` when every member of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &Cluster) -> bool {
        self.overlap(other) == self.len()
    }

    /// Iterates over member ids.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.members.iter().copied()
    }
}

impl FromIterator<ObjectId> for Cluster {
    fn from_iter<I: IntoIterator<Item = ObjectId>>(iter: I) -> Self {
        Cluster::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(ids: &[u64]) -> Cluster {
        Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let c = cluster(&[3, 1, 2, 3, 1]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.members(), &[ObjectId(1), ObjectId(2), ObjectId(3)]);
        assert!(c.contains(ObjectId(2)));
        assert!(!c.contains(ObjectId(9)));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = cluster(&[1, 2, 3, 4]);
        let b = cluster(&[3, 4, 5]);
        assert_eq!(a.intersection(&b), cluster(&[3, 4]));
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert!((a.jaccard(&b) - 0.4).abs() < 1e-12);
        let empty = Cluster::default();
        assert_eq!(a.intersection(&empty), empty);
        assert_eq!(empty.jaccard(&empty), 0.0);
    }

    #[test]
    fn subset_detection() {
        let a = cluster(&[2, 3]);
        let b = cluster(&[1, 2, 3, 4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Cluster::default().is_subset_of(&a));
    }

    #[test]
    fn from_iterator_and_iter() {
        let c: Cluster = [ObjectId(5), ObjectId(1)].into_iter().collect();
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![ObjectId(1), ObjectId(5)]);
        assert!(!c.is_empty());
    }
}
