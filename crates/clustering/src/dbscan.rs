//! A generic DBSCAN implementation (Ester et al., KDD 1996).
//!
//! The paper's convoy definition is phrased in terms of *density connection*
//! (Definition 2), which is exactly the relation DBSCAN computes: objects in
//! the same DBSCAN cluster are density-connected with respect to `e` and `m`.
//! The implementation here is deliberately agnostic of what the items are —
//! point snapshots and simplified sub-trajectories both plug in through the
//! [`RegionQuery`] trait.

use serde::{Deserialize, Serialize};

/// A neighbourhood provider: given an item index, returns the indices of all
/// items within distance `e` of it (the `NH_e` set, **including** the item
/// itself).
pub trait RegionQuery {
    /// Number of items in the collection.
    fn len(&self) -> usize;

    /// Returns `true` when the collection holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The e-neighbourhood of item `idx` (indices of all items within range,
    /// including `idx` itself).
    fn neighbors(&self, idx: usize) -> Vec<usize>;

    /// Writes the e-neighbourhood of item `idx` into `out` (cleared first),
    /// in exactly the order [`RegionQuery::neighbors`] would report it.
    ///
    /// The default implementation delegates to `neighbors`, so providers that
    /// don't care about allocation (the brute-force test index, the
    /// sub-trajectory query) keep working unchanged; hot-path providers like
    /// [`crate::GridIndex`] override it to reuse the caller's buffer and
    /// answer through the batched [`crate::kernel`] distance scan. The
    /// scratch-driven DBSCAN below only ever calls this entry point.
    fn neighbors_into(&self, idx: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.neighbors(idx));
    }
}

/// The DBSCAN label assigned to an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Label {
    /// The item has not been visited yet (only observable mid-run).
    Unvisited,
    /// The item is not density-reachable from any core item.
    Noise,
    /// The item belongs to the cluster with the given index.
    Cluster(usize),
}

/// Runs DBSCAN over `query.len()` items.
///
/// `min_pts` is the paper's `m`: an item is a *core* item when its
/// e-neighbourhood (including itself) has at least `min_pts` members. The
/// return value assigns every item a [`Label`]; cluster indices are dense and
/// start at zero.
///
/// Border items (non-core items within range of a core item) are assigned to
/// the first core cluster that reaches them, exactly as in the original
/// algorithm.
pub fn dbscan<Q: RegionQuery>(query: &Q, min_pts: usize) -> Vec<Label> {
    dbscan_with_core_flags(query, min_pts).0
}

/// Reusable working state for [`dbscan_with_core_flags_into`]: the label and
/// core-flag arrays, the BFS seed queue and the neighbourhood buffer.
///
/// A scratch reused across runs reaches an allocation fixpoint: once every
/// buffer has grown to the largest input seen, further runs perform no heap
/// allocation at all (the zero-allocation contract the snapshot clusterer
/// builds on).
#[derive(Debug, Clone, Default)]
pub struct DbscanScratch {
    labels: Vec<Label>,
    core: Vec<bool>,
    seeds: Vec<usize>,
    neigh: Vec<usize>,
}

impl DbscanScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The labels of the most recent run.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The core flags of the most recent run.
    pub fn core_flags(&self) -> &[bool] {
        &self.core
    }
}

/// Like [`dbscan`], but also reports for every item whether it is a *core*
/// item (`|NH_e| >= min_pts`).
///
/// The algorithm evaluates every item's neighbourhood exactly once anyway
/// (at its scan visit, or when it is first labelled during an expansion), so
/// the flags are a free by-product — the sharded clustering merge needs
/// them, and recomputing them would double the region-query work of its hot
/// path.
pub fn dbscan_with_core_flags<Q: RegionQuery>(
    query: &Q,
    min_pts: usize,
) -> (Vec<Label>, Vec<bool>) {
    let mut scratch = DbscanScratch::new();
    dbscan_with_core_flags_into(query, min_pts, &mut scratch);
    (scratch.labels, scratch.core)
}

/// The scratch-driven DBSCAN all public entry points run on: identical
/// output to [`dbscan_with_core_flags`] (same visiting order, same seeds,
/// same labels), but every buffer lives in `scratch` and is reused across
/// calls instead of freshly allocated.
///
/// After the call, `scratch.labels()` and `scratch.core_flags()` hold the
/// run's result (`query.len()` entries each).
// lint: hot-path — the per-tick DBSCAN core; all buffers must come from `scratch`
pub fn dbscan_with_core_flags_into<Q: RegionQuery>(
    query: &Q,
    min_pts: usize,
    scratch: &mut DbscanScratch,
) {
    let n = query.len();
    let DbscanScratch {
        labels,
        core,
        seeds,
        neigh,
    } = scratch;
    labels.clear();
    labels.resize(n, Label::Unvisited);
    core.clear();
    core.resize(n, false);
    let mut next_cluster = 0usize;

    for start in 0..n {
        if labels[start] != Label::Unvisited {
            continue;
        }
        query.neighbors_into(start, neigh);
        if neigh.len() < min_pts {
            labels[start] = Label::Noise;
            continue;
        }
        // `start` is a core item: grow a new cluster from it.
        core[start] = true;
        let cluster_id = next_cluster;
        next_cluster += 1;
        labels[start] = Label::Cluster(cluster_id);
        seeds.clear();
        seeds.extend_from_slice(neigh);
        let mut cursor = 0;
        while cursor < seeds.len() {
            let item = seeds[cursor];
            cursor += 1;
            match labels[item] {
                Label::Cluster(_) => continue,
                Label::Noise | Label::Unvisited => {
                    let was_unvisited = labels[item] == Label::Unvisited;
                    labels[item] = Label::Cluster(cluster_id);
                    if was_unvisited {
                        query.neighbors_into(item, neigh);
                        if neigh.len() >= min_pts {
                            // `item` is itself a core item: its neighbourhood
                            // is density-reachable and must be explored.
                            core[item] = true;
                            seeds.extend_from_slice(neigh);
                        }
                    }
                }
            }
        }
    }
}

/// Groups DBSCAN labels into clusters of item indices (noise is dropped).
pub fn labels_to_clusters(labels: &[Label]) -> Vec<Vec<usize>> {
    let num_clusters = labels
        .iter()
        .filter_map(|l| match l {
            Label::Cluster(c) => Some(*c + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut clusters = vec![Vec::new(); num_clusters];
    for (idx, label) in labels.iter().enumerate() {
        if let Label::Cluster(c) = label {
            clusters[*c].push(idx);
        }
    }
    clusters
}

/// A brute-force [`RegionQuery`] over 2-D points, used by tests and as the
/// fallback when no index is worthwhile (tiny inputs).
pub struct BruteForcePoints<'a> {
    points: &'a [trajectory::geometry::Point],
    epsilon: f64,
}

impl<'a> BruteForcePoints<'a> {
    /// Creates a brute-force provider over `points` with range `epsilon`.
    pub fn new(points: &'a [trajectory::geometry::Point], epsilon: f64) -> Self {
        BruteForcePoints { points, epsilon }
    }
}

impl RegionQuery for BruteForcePoints<'_> {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        let target = &self.points[idx];
        let eps_sq = self.epsilon * self.epsilon;
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_squared(target) <= eps_sq)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use trajectory::geometry::Point;

    fn run(points: &[(f64, f64)], e: f64, m: usize) -> Vec<Label> {
        let pts: Vec<Point> = points.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        dbscan(&BruteForcePoints::new(&pts, e), m)
    }

    #[test]
    fn two_well_separated_clusters() {
        let labels = run(
            &[
                (0.0, 0.0),
                (1.0, 0.0),
                (0.0, 1.0),
                (100.0, 100.0),
                (101.0, 100.0),
                (100.0, 101.0),
            ],
            2.0,
            3,
        );
        let clusters = labels_to_clusters(&labels);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4, 5]);
    }

    #[test]
    fn isolated_points_are_noise() {
        let labels = run(&[(0.0, 0.0), (50.0, 0.0), (100.0, 0.0)], 1.0, 2);
        assert!(labels.iter().all(|l| *l == Label::Noise));
        assert!(labels_to_clusters(&labels).is_empty());
    }

    #[test]
    fn chain_is_density_connected() {
        // A chain of points each within e of the next: density connection
        // links the two ends even though they are far apart — the arbitrary
        // shape/extent property the paper relies on (the anti-lossy-flock
        // argument of Figure 1).
        let chain: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.0)).collect();
        let labels = run(&chain, 1.1, 2);
        let clusters = labels_to_clusters(&labels);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 10);
    }

    #[test]
    fn chain_breaks_when_min_pts_too_large() {
        let chain: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 0.0)).collect();
        // With m=4, interior points have only 3 neighbours (self + 2): all noise.
        let labels = run(&chain, 1.1, 4);
        assert!(labels.iter().all(|l| *l == Label::Noise));
    }

    #[test]
    fn border_point_joins_exactly_one_cluster() {
        // Two dense groups with one point equidistant between them (a border
        // point of both); it must end up in exactly one cluster, not both,
        // and must not be noise.
        let pts = vec![
            (0.0, 0.0),
            (0.5, 0.0),
            (1.0, 0.0), // dense group A
            (5.0, 0.0), // border point (within 4.0+eps of both groups? keep symmetric)
            (9.0, 0.0),
            (9.5, 0.0),
            (10.0, 0.0), // dense group B
        ];
        let labels = run(&pts, 4.0, 3);
        match labels[3] {
            Label::Cluster(_) => {}
            other => panic!("border point should be clustered, got {other:?}"),
        }
        let clusters = labels_to_clusters(&labels);
        let appearances: usize = clusters.iter().filter(|c| c.contains(&3)).count();
        assert_eq!(appearances, 1);
    }

    #[test]
    fn empty_input() {
        let labels = run(&[], 1.0, 2);
        assert!(labels.is_empty());
        assert!(labels_to_clusters(&labels).is_empty());
    }

    #[test]
    fn min_pts_one_makes_every_point_a_cluster() {
        let labels = run(&[(0.0, 0.0), (10.0, 0.0)], 1.0, 1);
        let clusters = labels_to_clusters(&labels);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn duplicate_points_cluster_together() {
        let labels = run(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)], 0.5, 3);
        let clusters = labels_to_clusters(&labels);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }

    #[test]
    fn epsilon_boundary_is_inclusive() {
        // Neighbourhoods use d <= e (Definition 1 uses closed balls): three
        // points spaced *exactly* e apart chain into one cluster, and each
        // endpoint has exactly 2 neighbours (itself + the middle point).
        let pts: Vec<Point> = [(0.0, 0.0), (3.0, 0.0), (6.0, 0.0)]
            .iter()
            .map(|(x, y)| Point::new(*x, *y))
            .collect();
        let provider = BruteForcePoints::new(&pts, 3.0);
        assert_eq!(provider.neighbors(0).len(), 2);
        assert_eq!(provider.neighbors(1).len(), 3); // middle point sees all
        let labels = dbscan(&provider, 3);
        let clusters = labels_to_clusters(&labels);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn early_noise_is_reclaimed_as_border_point() {
        // Index 0 is visited first and labelled noise (only 2 of the required
        // 3 neighbours). The cluster grown later from index 1 reaches it
        // through the core point at (2, 0) and must re-label it as border.
        let labels = run(&[(4.0, 0.0), (0.0, 0.0), (1.0, 0.0), (2.0, 0.0)], 2.0, 3);
        assert!(
            matches!(labels[0], Label::Cluster(_)),
            "early noise point must be claimed by the later cluster, got {:?}",
            labels[0]
        );
        let clusters = labels_to_clusters(&labels);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 4);
    }

    #[test]
    fn core_requirement_counts_the_point_itself() {
        // An equilateral-ish triangle with pairwise distances within e: every
        // point has 3 neighbours including itself, so m=3 clusters them and
        // m=4 leaves all of them noise.
        let triangle = [(0.0, 0.0), (1.0, 0.0), (0.5, 0.8)];
        let clusters = labels_to_clusters(&run(&triangle, 1.5, 3));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
        assert!(run(&triangle, 1.5, 4).iter().all(|l| *l == Label::Noise));
    }

    #[test]
    fn core_flags_match_neighbourhood_counts() {
        // Mixed cores, borders and noise: flags must equal the brute-force
        // core test for every point, and labels must equal plain dbscan.
        let pts: Vec<Point> = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (50.0, 0.0)]
            .iter()
            .map(|(x, y)| Point::new(*x, *y))
            .collect();
        let provider = BruteForcePoints::new(&pts, 1.2);
        let (labels, core) = dbscan_with_core_flags(&provider, 3);
        assert_eq!(labels, dbscan(&provider, 3));
        for (i, flag) in core.iter().enumerate() {
            assert_eq!(
                *flag,
                provider.neighbors(i).len() >= 3,
                "core flag mismatch at {i}"
            );
        }
        // Point 3 is a border (2 neighbours), point 4 noise.
        assert!(!core[3] && matches!(labels[3], Label::Cluster(_)));
        assert!(!core[4] && labels[4] == Label::Noise);
    }

    proptest! {
        #[test]
        fn core_flags_are_exact_on_random_inputs(
            coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 0..50),
            e in 0.5f64..8.0,
            m in 1usize..5) {
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let provider = BruteForcePoints::new(&pts, e);
            let (labels, core) = dbscan_with_core_flags(&provider, m);
            prop_assert_eq!(labels, dbscan(&provider, m));
            for (i, flag) in core.iter().enumerate() {
                prop_assert_eq!(*flag, provider.neighbors(i).len() >= m,
                    "core flag mismatch at {}", i);
            }
        }

        #[test]
        fn every_cluster_has_at_least_one_core_point(
            coords in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..60),
            e in 0.5f64..10.0,
            m in 2usize..5) {
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let provider = BruteForcePoints::new(&pts, e);
            let labels = dbscan(&provider, m);
            for cluster in labels_to_clusters(&labels) {
                // Every cluster is grown from a core point. (Note the cluster
                // itself can end up with fewer than m members when one of the
                // seed's neighbours is a border point already claimed by an
                // earlier cluster — an inherent DBSCAN property; the convoy
                // algorithms re-check the m constraint on their candidates.)
                prop_assert!(!cluster.is_empty());
                let has_core = cluster.iter().any(|&i| provider.neighbors(i).len() >= m);
                prop_assert!(has_core);
            }
        }

        #[test]
        fn labels_cover_every_item_exactly_once(
            coords in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..60),
            e in 0.5f64..10.0,
            m in 2usize..5) {
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let labels = dbscan(&BruteForcePoints::new(&pts, e), m);
            prop_assert_eq!(labels.len(), pts.len());
            prop_assert!(labels.iter().all(|l| *l != Label::Unvisited));
            // Each item appears in at most one cluster.
            let clusters = labels_to_clusters(&labels);
            let total: usize = clusters.iter().map(|c| c.len()).sum();
            let clustered = labels.iter().filter(|l| matches!(l, Label::Cluster(_))).count();
            prop_assert_eq!(total, clustered);
        }

        #[test]
        fn core_point_partition_is_permutation_invariant(
            coords in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 2..40),
            e in 0.5f64..8.0,
            m in 2usize..4) {
            // DBSCAN's assignment of border points can depend on visit order,
            // but the partition restricted to *core* points must not.
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let provider = BruteForcePoints::new(&pts, e);
            let labels_fwd = dbscan(&provider, m);

            // Reverse the point order and re-run.
            let reversed: Vec<Point> = pts.iter().rev().copied().collect();
            let provider_rev = BruteForcePoints::new(&reversed, e);
            let labels_rev_raw = dbscan(&provider_rev, m);
            // Map reversed labels back onto original indices.
            let n = pts.len();
            let labels_rev: Vec<Label> = (0..n).map(|i| labels_rev_raw[n - 1 - i]).collect();

            let is_core = |i: usize| provider.neighbors(i).len() >= m;
            for i in 0..n {
                for j in (i + 1)..n {
                    if is_core(i) && is_core(j) {
                        let same_fwd = labels_fwd[i] == labels_fwd[j];
                        let same_rev = labels_rev[i] == labels_rev[j];
                        prop_assert_eq!(same_fwd, same_rev,
                            "core points {} and {} grouped inconsistently", i, j);
                    }
                }
            }
        }
    }
}
