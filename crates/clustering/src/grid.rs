//! A uniform-grid spatial index for e-range search over point snapshots, and
//! snapshot clustering built on top of it.
//!
//! Snapshot clustering (DBSCAN over the objects' positions at one time point)
//! is the inner loop of both the CMC algorithm and the CuTS refinement step,
//! so its e-neighbourhood search must not be quadratic. A uniform grid with
//! cell side `e` answers each neighbourhood query by inspecting at most nine
//! cells.

use crate::cluster::Cluster;
use crate::dbscan::{dbscan, labels_to_clusters, Label, RegionQuery};
use std::collections::HashMap;
use trajectory::geometry::Point;
use trajectory::{ObjectId, Snapshot};

/// A uniform-grid index over a fixed set of points.
///
/// The grid cell side equals the query radius `epsilon`, so the
/// e-neighbourhood of a point is always contained in the 3×3 block of cells
/// around the point's own cell.
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    epsilon: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
}

impl GridIndex {
    /// Builds the index over `points` for range queries of radius `epsilon`.
    /// A non-positive `epsilon` is clamped to a tiny positive value so that
    /// degenerate queries still terminate.
    pub fn build(points: Vec<Point>, epsilon: f64) -> Self {
        let epsilon = if epsilon > 0.0 { epsilon } else { f64::EPSILON };
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells.entry(Self::cell_of(p, epsilon)).or_default().push(i);
        }
        GridIndex {
            points,
            epsilon,
            cells,
        }
    }

    /// Largest cell coordinate magnitude the grid uses. `floor() as i64`
    /// saturates at `i64::MAX` for huge or infinite inputs, and the ±1
    /// neighbour offsets of [`GridIndex::range_query`] would then overflow;
    /// clamping to ±2⁶² (exactly representable as `f64`) keeps every
    /// neighbour-cell computation in range. Points this far out are beyond
    /// any meaningful `epsilon`, so the distance filter still rejects every
    /// false bucket-mate.
    const CELL_LIMIT: f64 = (1i64 << 62) as f64;

    #[inline]
    fn cell_coord(v: f64, epsilon: f64) -> i64 {
        let cell = (v / epsilon).floor();
        if cell.is_nan() {
            // NaN coordinates (rejected upstream at `Trajectory`
            // construction, but raw `Point` sets can still carry them) are
            // parked in cell 0; NaN distances compare false against every
            // epsilon, so such points are never reported as neighbours.
            return 0;
        }
        cell.clamp(-Self::CELL_LIMIT, Self::CELL_LIMIT) as i64
    }

    #[inline]
    fn cell_of(p: &Point, epsilon: f64) -> (i64, i64) {
        (
            Self::cell_coord(p.x, epsilon),
            Self::cell_coord(p.y, epsilon),
        )
    }

    /// The number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Indices of all points within `epsilon` of `target` (including the
    /// target itself when it is one of the indexed points).
    pub fn range_query(&self, target: &Point) -> Vec<usize> {
        let (cx, cy) = Self::cell_of(target, self.epsilon);
        let eps_sq = self.epsilon * self.epsilon;
        let mut out = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in bucket {
                        if self.points[i].distance_squared(target) <= eps_sq {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }
}

impl RegionQuery for GridIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        self.range_query(&self.points[idx])
    }
}

/// Density-clusters the objects of a snapshot (DBSCAN with range `e` and
/// density threshold `m`), returning clusters of object ids.
///
/// This is the `DBSCAN(O_t, e, m)` call of Algorithm 1 (CMC) and of the CuTS
/// refinement step. Objects labelled as noise are not reported.
pub fn snapshot_clusters(snapshot: &Snapshot, e: f64, m: usize) -> Vec<Cluster> {
    if snapshot.len() < m {
        return Vec::new();
    }
    let ids: Vec<ObjectId> = snapshot.entries.iter().map(|entry| entry.id).collect();
    let points: Vec<Point> = snapshot
        .entries
        .iter()
        .map(|entry| entry.position)
        .collect();
    let index = GridIndex::build(points, e);
    let labels = dbscan(&index, m);
    labels_to_clusters(&labels)
        .into_iter()
        .map(|members| Cluster::new(members.into_iter().map(|i| ids[i]).collect()))
        .collect()
}

/// Like [`snapshot_clusters`] but also reports the noise objects, which some
/// analyses (and tests) need.
pub fn snapshot_clusters_with_noise(
    snapshot: &Snapshot,
    e: f64,
    m: usize,
) -> (Vec<Cluster>, Vec<ObjectId>) {
    if snapshot.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let ids: Vec<ObjectId> = snapshot.entries.iter().map(|entry| entry.id).collect();
    let points: Vec<Point> = snapshot
        .entries
        .iter()
        .map(|entry| entry.position)
        .collect();
    let index = GridIndex::build(points, e);
    let labels = dbscan(&index, m);
    let clusters = labels_to_clusters(&labels)
        .into_iter()
        .map(|members| Cluster::new(members.into_iter().map(|i| ids[i]).collect()))
        .collect();
    let noise = labels
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == Label::Noise)
        .map(|(i, _)| ids[i])
        .collect();
    (clusters, noise)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::BruteForcePoints;
    use proptest::prelude::*;
    use trajectory::{SnapshotPolicy, Trajectory, TrajectoryDatabase};

    #[test]
    fn range_query_matches_brute_force() {
        let points: Vec<Point> = (0..50)
            .map(|i| Point::new((i % 10) as f64 * 0.7, (i / 10) as f64 * 0.7))
            .collect();
        let index = GridIndex::build(points.clone(), 1.0);
        for (i, p) in points.iter().enumerate() {
            let mut from_grid = index.range_query(p);
            from_grid.sort_unstable();
            let mut brute: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, q)| q.distance(p) <= 1.0)
                .map(|(j, _)| j)
                .collect();
            brute.sort_unstable();
            assert_eq!(from_grid, brute, "mismatch for point {i}");
        }
    }

    #[test]
    fn grid_handles_negative_coordinates() {
        let points = vec![
            Point::new(-5.0, -5.0),
            Point::new(-5.5, -5.2),
            Point::new(5.0, 5.0),
        ];
        let index = GridIndex::build(points, 1.0);
        let n = index.range_query(&Point::new(-5.0, -5.0));
        assert_eq!(n.len(), 2);
        assert!(!index.is_empty());
        assert_eq!(index.len(), 3);
    }

    #[test]
    fn non_finite_and_astronomical_coordinates_do_not_panic_or_cluster() {
        // Regression: `floor() as i64` saturation used to put huge and
        // infinite coordinates into cell `i64::MAX`, and the ±1 neighbour
        // offsets then overflowed in `range_query`.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(1e300, -1e300),
            Point::new(f64::INFINITY, 0.0),
            Point::new(f64::NEG_INFINITY, f64::INFINITY),
            Point::new(f64::NAN, 3.0),
        ];
        let index = GridIndex::build(points, 1.0);
        // Near the origin only the two finite nearby points are neighbours.
        let near = index.range_query(&Point::new(0.0, 0.0));
        assert_eq!(near, vec![0, 1]);
        // Querying at the pathological points must not panic, and a NaN
        // point is not even its own neighbour (NaN distance).
        for i in 2..index.len() {
            let hits = index.range_query(&index.points()[i]);
            assert!(hits.len() <= 1, "far point {i} found neighbours: {hits:?}");
        }
        assert!(index.range_query(&Point::new(f64::NAN, 3.0)).is_empty());
    }

    #[test]
    fn distinct_astronomical_points_share_a_cell_but_not_a_neighbourhood() {
        // Both coordinates clamp to the same boundary cell; the exact
        // distance test keeps them apart.
        let points = vec![Point::new(1e300, 0.0), Point::new(2e300, 0.0)];
        let index = GridIndex::build(points, 5.0);
        assert_eq!(index.range_query(&Point::new(1e300, 0.0)), vec![0]);
    }

    #[test]
    fn zero_epsilon_does_not_panic() {
        let points = vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
        let index = GridIndex::build(points, 0.0);
        // Identical points are still mutual neighbours at distance 0.
        assert_eq!(index.range_query(&Point::new(0.0, 0.0)).len(), 2);
    }

    fn db_with_positions(positions: &[(f64, f64)]) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (i, (x, y)) in positions.iter().enumerate() {
            db.insert(
                ObjectId(i as u64),
                Trajectory::from_tuples([(*x, *y, 0)]).unwrap(),
            );
        }
        db
    }

    #[test]
    fn snapshot_clustering_basic() {
        let db = db_with_positions(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (50.0, 50.0)]);
        let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
        let clusters = snapshot_clusters(&snap, 1.5, 2);
        assert_eq!(clusters.len(), 1);
        assert_eq!(
            clusters[0].members(),
            &[ObjectId(0), ObjectId(1), ObjectId(2)]
        );
        let (clusters, noise) = snapshot_clusters_with_noise(&snap, 1.5, 2);
        assert_eq!(clusters.len(), 1);
        assert_eq!(noise, vec![ObjectId(3)]);
    }

    #[test]
    fn snapshot_with_fewer_than_m_objects_returns_nothing() {
        let db = db_with_positions(&[(0.0, 0.0), (0.1, 0.0)]);
        let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
        assert!(snapshot_clusters(&snap, 1.0, 3).is_empty());
    }

    #[test]
    fn lossy_flock_scenario_is_captured_by_density_connection() {
        // Figure 1 of the paper: four objects travelling as an elongated
        // group. A fixed disc of diameter 3 misses o4, but density connection
        // with e=1.2 links the whole chain.
        let db = db_with_positions(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
        let clusters = snapshot_clusters(&snap, 1.2, 2);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 4);
    }

    proptest! {
        #[test]
        fn grid_neighbours_equal_brute_force_neighbours(
            coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 1..80),
            e in 0.3f64..5.0) {
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let grid = GridIndex::build(pts.clone(), e);
            let brute = BruteForcePoints::new(&pts, e);
            for i in 0..pts.len() {
                let mut a = grid.neighbors(i);
                let mut b = brute.neighbors(i);
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "neighbourhood mismatch at index {}", i);
            }
        }

        #[test]
        fn clustering_via_grid_matches_brute_force_partition(
            coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 2..60),
            e in 0.5f64..5.0,
            m in 2usize..4) {
            // Because neighbourhoods agree exactly, the DBSCAN partitions must
            // also agree (same visiting order, same seeds).
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let grid_labels = dbscan(&GridIndex::build(pts.clone(), e), m);
            let brute_labels = dbscan(&BruteForcePoints::new(&pts, e), m);
            prop_assert_eq!(grid_labels, brute_labels);
        }
    }
}
