//! A uniform-grid spatial index for e-range search over point snapshots, and
//! snapshot clustering built on top of it.
//!
//! Snapshot clustering (DBSCAN over the objects' positions at one time point)
//! is the inner loop of both the CMC algorithm and the CuTS refinement step,
//! so its e-neighbourhood search must not be quadratic — and, because every
//! engine calls it once per tick, it must not allocate per call either.
//!
//! ## CSR layout, structure-of-arrays
//!
//! [`GridIndex`] stores its buckets in *compressed sparse row* form rather
//! than a `HashMap<cell, Vec<usize>>`: one flat array of `(cell key, point
//! index)` pairs grouped in place by a byte-adaptive radix sort (`keyed`),
//! a sorted table of the distinct keys (`cell_keys`) with their bucket
//! extents (`bucket_starts`), flat per-cell columns — the point-index
//! column `bucket_points` plus **structure-of-arrays coordinate columns**
//! `cell_xs` / `cell_ys` (split from the former interleaved `Vec<Point>`
//! copy so the distance scan streams pure `f64` lanes) — and a compact
//! open-addressed `(hash tag, rank)` probe table. A range query resolves
//! the 3×3 neighbour cells with typically **one hash probe per column**:
//! vertically adjacent cells have numerically consecutive packed keys, so
//! once one cell of a column is anchored, its neighbours chain via a single
//! sequential comparison in the sorted key table — and an indexed point's
//! own cell needs no probe (and no coordinate division) at all, its bucket
//! rank being recorded at build time. No per-cell `Vec`, no SipHash, no
//! pointer chasing — the flat-bucket structure the grid-join literature
//! gets its speed from.
//!
//! The per-cell distance tests run through the batched
//! [`kernel`](crate::kernel) module: a column's vertically adjacent buckets
//! occupy *consecutive ranks* whenever their keys are consecutive, so the
//! scan fuses them into one contiguous extent and tests it in
//! [`kernel::LANE_WIDTH`](crate::kernel::LANE_WIDTH)-wide branch-free lanes
//! (autovectorizable), emitting hits from a bitmask in ascending-index
//! order (the mask-then-emit argument in the kernel docs).
//!
//! Grouping by `(key, index)` keeps each bucket's points in ascending point
//! index, which is exactly the insertion order the previous `HashMap`
//! implementation produced; together with the fixed 3×3 `dx`/`dy` cell visit
//! order this makes every neighbourhood list — and therefore every DBSCAN
//! label sequence — bit-identical to the historical behaviour, which the
//! engine/shard/stream equivalence suites rely on (the frozen originals
//! live in [`crate::reference`] — the `HashMap` grid — and [`crate::aos`] —
//! the scalar array-of-structs CSR grid — pinned by order-equivalence
//! property tests below and in `tests/kernel_equivalence.rs`).
//!
//! ## Scratch reuse
//!
//! [`SnapshotClusterer`] owns the grid arrays, the id buffer, the DBSCAN
//! scratch and a pool of output [`Cluster`]s, so that
//! [`SnapshotClusterer::cluster_into`] performs **zero heap allocations** in
//! steady state: after a warm-up tick has grown every buffer to its
//! fixpoint, clustering further snapshots of similar size touches no
//! allocator at all (locked in by the `zero_alloc` integration test). Every
//! engine — per-tick, swept, parallel, sharded, the CuTS refinement fold and
//! the streaming pipeline — folds its ticks through a reused clusterer.

use crate::cluster::Cluster;
use crate::dbscan::{
    dbscan, dbscan_with_core_flags_into, labels_to_clusters, DbscanScratch, Label, RegionQuery,
};
use crate::kernel;
use convoy_obs::Obs;
use std::cell::Cell;
use trajectory::geometry::Point;
use trajectory::{ObjectId, Snapshot};

/// A uniform-grid index over a fixed set of points, stored in a flat CSR
/// layout (see the module docs).
///
/// The grid cell side equals the query radius `epsilon`, so the
/// e-neighbourhood of a point is always contained in the 3×3 block of cells
/// around the point's own cell.
#[derive(Debug, Clone, Default)]
pub struct GridIndex {
    points: Vec<Point>,
    epsilon: f64,
    /// Build scratch: `(cell key, point index)` pairs sorted by key then
    /// index — a byte-adaptive LSD radix sort (see
    /// [`GridIndex::sort_keyed`]) groups points per cell while keeping
    /// every bucket in ascending point index.
    keyed: Vec<(u128, u32)>,
    /// Radix-sort double buffer: counting passes ping-pong between `keyed`
    /// and this scratch, so the sort allocates nothing once both have grown
    /// to the working-set size.
    keyed_scratch: Vec<(u128, u32)>,
    /// The distinct cell keys, ascending, indexed by bucket rank.
    cell_keys: Vec<u128>,
    /// `bucket_starts[r]..bucket_starts[r + 1]` is the extent of bucket `r`
    /// inside `bucket_points` / `cell_xs` / `cell_ys`.
    bucket_starts: Vec<u32>,
    /// Original point indices, grouped per cell (the CSR column array).
    bucket_points: Vec<u32>,
    /// x coordinates in bucket order — one of the two structure-of-arrays
    /// columns (cell-local copies, so the distance scan streams memory
    /// sequentially instead of chasing `points[bucket_points[pos]]` at
    /// random, and the batched kernel sees pure `f64` lanes).
    cell_xs: Vec<f64>,
    /// y coordinates in bucket order (see [`GridIndex::cell_xs`]).
    cell_ys: Vec<f64>,
    /// Open-addressed lookup table of `(hash tag, bucket rank)` pairs,
    /// resolved by linear probing: a probe compares the 32-bit tag (one
    /// 8-byte load), and only a tag match pays the exact key verification
    /// against `cell_keys`. Sized to the next power of two ≥ 2× the cell
    /// count, so probes stay short and the table stays compact (8 bytes per
    /// slot). Replaces both the `HashMap` of the original implementation
    /// (whose SipHash dominated lookups) and a sorted-key binary search
    /// (whose ~log₂ cells u128 comparisons per cell lookup measurably lose
    /// to one multiply-shift hash).
    rank_table: Vec<(u32, u32)>,
    /// Bucket rank of every point's own cell (filled free during the
    /// grouping pass): the centre column of a [`RegionQuery::neighbors_into`]
    /// query needs no hash probe at all.
    point_rank: Vec<u32>,
    /// Per bucket rank, the rank of the same-`cy` cell one column to the
    /// left (`cx - 1`) and one to the right (`cx + 1`), or [`EMPTY_SLOT`]
    /// when that cell is unoccupied (or lies across the u64 sign-boundary
    /// key wrap). Filled by an O(cells) two-pointer merge of adjacent
    /// column runs at build time — no hashing — these links resolve the
    /// side columns of a query's 3×3 block with direct rank lookups: in a
    /// dense world, [`RegionQuery::neighbors_into`] touches no hash probe
    /// at all, and [`GridIndex::range_query_into`] only one (the centre
    /// cell). Every probe is a guaranteed-random memory access, so on
    /// large worlds this is the difference between ~3 cache misses per
    /// query and ~0-1.
    col_links: Vec<(u32, u32)>,
    /// Full [`kernel::LANE_WIDTH`]-wide batches the distance kernel has
    /// executed since the last [`GridIndex::take_kernel_counts`]. A `Cell`
    /// because queries take `&self`; plain adds, no atomics — queries are
    /// single-threaded per grid (every engine gives each worker its own).
    kernel_batches: Cell<u64>,
    /// Total candidate points the distance kernel has scanned (full batches
    /// plus scalar tail) since the last [`GridIndex::take_kernel_counts`].
    kernel_lanes: Cell<u64>,
}

/// Sentinel marking an empty [`GridIndex::rank_table`] slot. Bucket ranks
/// are bounded by the point count, which [`GridIndex::rebuild_cells`] caps
/// below `u32::MAX`.
const EMPTY_SLOT: u32 = u32::MAX;

impl GridIndex {
    /// Builds the index over `points` for range queries of radius `epsilon`.
    /// A non-positive `epsilon` is clamped to a tiny positive value so that
    /// degenerate queries still terminate.
    pub fn build(points: Vec<Point>, epsilon: f64) -> Self {
        let mut index = GridIndex {
            points,
            ..GridIndex::default()
        };
        index.epsilon = if epsilon > 0.0 { epsilon } else { f64::EPSILON };
        index.rebuild_cells();
        index
    }

    /// Re-indexes in place: clears the point set, hands the caller the
    /// (capacity-preserving) point buffer to refill, then rebuilds the cell
    /// arrays. No allocation happens once the buffers have grown to cover
    /// the largest input seen — the reuse entry point the snapshot clusterer
    /// and the shard workers drive every tick.
    pub fn rebuild_with(&mut self, epsilon: f64, fill: impl FnOnce(&mut Vec<Point>)) {
        self.points.clear();
        fill(&mut self.points);
        self.epsilon = if epsilon > 0.0 { epsilon } else { f64::EPSILON };
        self.rebuild_cells();
    }

    /// Re-indexes in place over the points of an iterator (see
    /// [`GridIndex::rebuild_with`]).
    pub fn rebuild(&mut self, epsilon: f64, points: impl IntoIterator<Item = Point>) {
        self.rebuild_with(epsilon, |buf| buf.extend(points));
    }

    /// Recomputes the CSR arrays from `self.points` and `self.epsilon`.
    fn rebuild_cells(&mut self) {
        assert!(
            self.points.len() < u32::MAX as usize,
            "grid index caps below u32::MAX points"
        );
        self.keyed.clear();
        let epsilon = self.epsilon;
        self.keyed.extend(
            self.points
                .iter()
                .enumerate()
                // lint: allow(cast-audit) — point count < u32::MAX, asserted above
                .map(|(i, p)| (Self::pack(Self::cell_of(p, epsilon)), i as u32)),
        );
        // Grouping the pairs orders points per cell while keeping each
        // bucket in ascending point index — the HashMap version's insertion
        // order. The stable radix passes preserve push order within equal
        // keys, so the result equals a `sort_unstable` by `(key, index)`.
        self.sort_keyed();
        self.cell_keys.clear();
        self.bucket_starts.clear();
        self.bucket_points.clear();
        self.cell_xs.clear();
        self.cell_ys.clear();
        self.point_rank.clear();
        self.point_rank.resize(self.points.len(), 0);
        for (i, &(key, point)) in self.keyed.iter().enumerate() {
            if self.cell_keys.last() != Some(&key) {
                self.cell_keys.push(key);
                // lint: allow(cast-audit) — pair index ≤ point count < u32::MAX, asserted above
                self.bucket_starts.push(i as u32);
            }
            // lint: allow(cast-audit) — cell count ≤ point count < u32::MAX, asserted above
            self.point_rank[point as usize] = (self.cell_keys.len() - 1) as u32;
            self.bucket_points.push(point);
            let p = self.points[point as usize];
            self.cell_xs.push(p.x);
            self.cell_ys.push(p.y);
        }
        // lint: allow(cast-audit) — keyed holds one pair per point, < u32::MAX, asserted above
        self.bucket_starts.push(self.keyed.len() as u32);

        self.link_columns();

        // Open-addressed rank table at ≤ 50% load.
        let slots = (self.cell_keys.len() * 2).next_power_of_two().max(4);
        self.rank_table.clear();
        self.rank_table.resize(slots, (0, EMPTY_SLOT));
        let mask = slots - 1;
        for (rank, &key) in self.cell_keys.iter().enumerate() {
            let hash = Self::hash_key(key);
            let mut slot = hash as usize & mask;
            while self.rank_table[slot].1 != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            // lint: allow(cast-audit) — rank ≤ cell count < u32::MAX, asserted above
            self.rank_table[slot] = (Self::tag(hash), rank as u32);
        }
    }

    /// Fills [`GridIndex::col_links`] from the sorted key table.
    ///
    /// The sorted keys group into **column runs** (ranks sharing the packed
    /// key's high half, i.e. the same `cx`), each run internally ordered by
    /// `cy`-as-u64. Two runs describe horizontally adjacent columns exactly
    /// when their high halves differ by one (`checked_add` also rejects the
    /// u64 sign-boundary wrap, mirroring the in-column adjacency guards), and
    /// then a two-pointer merge pairs their equal-`cy` cells in one linear
    /// sweep — the whole pass is O(cells), sequential, and hash-free.
    fn link_columns(&mut self) {
        self.col_links.clear();
        self.col_links
            .resize(self.cell_keys.len(), (EMPTY_SLOT, EMPTY_SLOT));
        let n_cells = self.cell_keys.len();
        let mut prev_run: Option<(usize, usize, u64)> = None;
        let mut r = 0usize;
        while r < n_cells {
            let high = (self.cell_keys[r] >> 64) as u64;
            let mut end = r + 1;
            while end < n_cells && (self.cell_keys[end] >> 64) as u64 == high {
                end += 1;
            }
            if let Some((prev_start, prev_end, prev_high)) = prev_run {
                if prev_high.checked_add(1) == Some(high) {
                    // Merge walk: `prev` is the left column, `r..end` the
                    // right. Shifting a left key up one column cannot
                    // overflow (prev_high < u64::MAX, checked above).
                    let (mut a, mut b) = (prev_start, r);
                    while a < prev_end && b < end {
                        let shifted = self.cell_keys[a] + (1u128 << 64);
                        match shifted.cmp(&self.cell_keys[b]) {
                            std::cmp::Ordering::Equal => {
                                // lint: allow(cast-audit) — ranks ≤ cell count < u32::MAX, asserted in rebuild_cells
                                self.col_links[a].1 = b as u32;
                                // lint: allow(cast-audit) — ranks ≤ cell count < u32::MAX, asserted in rebuild_cells
                                self.col_links[b].0 = a as u32;
                                a += 1;
                                b += 1;
                            }
                            std::cmp::Ordering::Less => a += 1,
                            std::cmp::Ordering::Greater => b += 1,
                        }
                    }
                }
            }
            prev_run = Some((r, end, high));
            r = end;
        }
    }

    /// Comparison sort wins below this size: the radix passes' fixed
    /// per-pass scans (count + scatter over the double buffer) only amortize
    /// once a few cache lines of pairs are in play.
    const RADIX_CUTOFF: usize = 64;

    /// Groups `keyed` by ascending `(key, index)` with a **byte-adaptive LSD
    /// radix sort** instead of a comparison sort — the `grid_build`
    /// hot-spot fix: `sort_unstable` on 100k `(u128, u32)` pairs pays
    /// `n log n` 16-byte comparisons, while cell keys in any realistic
    /// world differ only in a few low bytes of each packed coordinate.
    ///
    /// One XOR pass finds which of the 16 key bytes vary at all; only those
    /// byte positions get a counting pass (typically 2: the low byte of
    /// `cy` and the low byte of `cx`). Passes are stable and scatter into
    /// the `keyed_scratch` double buffer, ping-ponging back so the result
    /// lands in `keyed`; within equal keys the original push order —
    /// ascending point index — survives, which is exactly the
    /// `sort_unstable` order on `(key, index)` pairs with distinct indices.
    /// Both buffers reach a capacity fixpoint, so a warmed rebuild
    /// allocates nothing.
    fn sort_keyed(&mut self) {
        let n = self.keyed.len();
        if n < Self::RADIX_CUTOFF {
            // Distinct indices make the pair order total, so instability
            // cannot reorder anything.
            self.keyed.sort_unstable();
            return;
        }
        let first = self.keyed[0].0;
        let mut diff = 0u128;
        for &(k, _) in &self.keyed {
            diff |= k ^ first;
        }
        if diff == 0 {
            return; // one single cell: push order is already the answer
        }
        self.keyed_scratch.clear();
        self.keyed_scratch.resize(n, (0, 0));
        // Move both buffers out so the ping-pong borrows are disjoint
        // (`mem::take` leaves empty non-allocating vecs behind).
        let mut src = std::mem::take(&mut self.keyed);
        let mut dst = std::mem::take(&mut self.keyed_scratch);
        for byte in 0..16 {
            let shift = byte * 8;
            // lint: allow(cast-audit) — intentional truncation to one key byte
            if (diff >> shift) as u8 == 0 {
                continue; // every key agrees on this byte: skip the pass
            }
            let mut counts = [0usize; 256];
            for &(k, _) in src.iter() {
                // lint: allow(cast-audit) — intentional truncation to one key byte
                counts[(k >> shift) as u8 as usize] += 1;
            }
            let mut total = 0usize;
            for c in counts.iter_mut() {
                let here = *c;
                *c = total;
                total += here;
            }
            for &pair in src.iter() {
                // lint: allow(cast-audit) — intentional truncation to one key byte
                let digit = (pair.0 >> shift) as u8 as usize;
                dst[counts[digit]] = pair;
                counts[digit] += 1;
            }
            std::mem::swap(&mut src, &mut dst);
        }
        // After the final swap the sorted data sits in `src`.
        self.keyed = src;
        self.keyed_scratch = dst;
    }

    /// Drains the batched-kernel work counters accumulated since the last
    /// call: `(full LANE_WIDTH batches executed, total candidate points
    /// scanned)`. The [`SnapshotClusterer`] publishes them per tick as
    /// `cluster.kernel_batches` / `cluster.kernel_lanes`, making the
    /// batching ratio (`batches × LANE_WIDTH / lanes`) observable per run.
    pub fn take_kernel_counts(&self) -> (u64, u64) {
        (self.kernel_batches.take(), self.kernel_lanes.take())
    }

    /// Multiply-shift hash of a packed cell key. Collisions are resolved by
    /// probing with tag comparison plus exact key verification, so the hash
    /// only affects speed, never correctness.
    #[inline]
    fn hash_key(key: u128) -> u64 {
        let lo = key as u64;
        let hi = (key >> 64) as u64;
        (hi ^ lo.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The tag bits of a hash stored in the probe table (its high half —
    /// disjoint from the low bits that pick the slot, so colliding slots
    /// rarely share a tag).
    #[inline]
    fn tag(hash: u64) -> u32 {
        // lint: allow(cast-audit) — intentional truncation to the high 32 bits
        (hash >> 32) as u32
    }

    /// Looks up the bucket rank of `key` in the open-addressed table.
    // lint: hot-path — open-addressed probe on every column resolution
    #[inline]
    fn bucket_rank(&self, key: u128) -> Option<usize> {
        let mask = self.rank_table.len().checked_sub(1)?;
        let hash = Self::hash_key(key);
        let tag = Self::tag(hash);
        let mut slot = hash as usize & mask;
        loop {
            let (stored_tag, rank) = self.rank_table[slot];
            if rank == EMPTY_SLOT {
                return None;
            }
            // A tag match is near-certain to be the key; the exact
            // comparison keeps false positives impossible rather than rare.
            if stored_tag == tag && self.cell_keys[rank as usize] == key {
                return Some(rank as usize);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Largest cell coordinate magnitude the grid uses. `floor() as i64`
    /// saturates at `i64::MAX` for huge or infinite inputs, and the ±1
    /// neighbour offsets of [`GridIndex::range_query`] would then overflow;
    /// clamping to ±2⁶² (exactly representable as `f64`) keeps every
    /// neighbour-cell computation in range. Points this far out are beyond
    /// any meaningful `epsilon`, so the distance filter still rejects every
    /// false bucket-mate.
    const CELL_LIMIT: f64 = (1i64 << 62) as f64;

    #[inline]
    fn cell_coord(v: f64, epsilon: f64) -> i64 {
        let cell = (v / epsilon).floor();
        if cell.is_nan() {
            // NaN coordinates (rejected upstream at `Trajectory`
            // construction, but raw `Point` sets can still carry them) are
            // parked in cell 0; NaN distances compare false against every
            // epsilon, so such points are never reported as neighbours.
            return 0;
        }
        cell.clamp(-Self::CELL_LIMIT, Self::CELL_LIMIT) as i64
    }

    #[inline]
    fn cell_of(p: &Point, epsilon: f64) -> (i64, i64) {
        (
            Self::cell_coord(p.x, epsilon),
            Self::cell_coord(p.y, epsilon),
        )
    }

    /// Packs a cell coordinate pair into one order-irrelevant `u128` key
    /// (bucket lookup only ever tests equality of exact keys, so the packed
    /// ordering does not need to match the lexicographic `(i64, i64)` one).
    #[inline]
    fn pack((cx, cy): (i64, i64)) -> u128 {
        ((cx as u64 as u128) << 64) | (cy as u64 as u128)
    }

    /// The number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Indices of all points within `epsilon` of `target` (including the
    /// target itself when it is one of the indexed points).
    pub fn range_query(&self, target: &Point) -> Vec<usize> {
        let mut out = Vec::new();
        self.range_query_into(target, &mut out);
        out
    }

    /// Like [`GridIndex::range_query`], but writes the indices into `out`
    /// (cleared first) instead of allocating — same hits, same order.
    ///
    /// One hash probe resolves the target's own cell; when it exists (a
    /// query at an indexed point always lands in one), the side columns
    /// follow from its [`GridIndex::col_links`] and no further probes run.
    pub fn range_query_into(&self, target: &Point, out: &mut Vec<usize>) {
        out.clear();
        let (cx, cy) = Self::cell_of(target, self.epsilon);
        let center = self.bucket_rank(Self::pack((cx, cy)));
        self.query_cells(cx, cy, center, target, out);
    }

    /// The single batched query entry point shared by
    /// [`GridIndex::range_query_into`] and [`RegionQuery::neighbors_into`]:
    /// scans the 3×3 cell block around `(cx, cy)` column by column, pushing
    /// every indexed point within `epsilon` of `target`. `eps²` is computed
    /// exactly once, here.
    ///
    /// ### Column resolution
    ///
    /// Within a column, consecutive `cy` cells have numerically consecutive
    /// packed keys (except across the rare u64 sign-boundary wrap, which the
    /// `checked_add` guards detect), and the key table is sorted — so once
    /// one cell of the column is resolved, its neighbours are found with a
    /// single sequential key comparison at the adjacent rank. The side
    /// columns' mid cells come from the centre cell's precomputed
    /// [`GridIndex::col_links`]. Typical dense-grid cost: **zero** hash
    /// probes when the caller supplies `center_rank` (an indexed point's
    /// own cell, recorded at build time), with per-column probe fallbacks
    /// for absent cells and unlinked columns.
    ///
    /// ### Run merging and the batched kernel
    ///
    /// Occupied column cells with consecutive ranks occupy contiguous CSR
    /// extents, so their buckets fuse into one slice handed to
    /// [`kernel::scan_soa`] as a single batch — at typical query density a
    /// full 3-cell column becomes one multi-point extent instead of three
    /// tiny scalar loops. Fusing only ever joins rank `r` with rank `r + 1`
    /// in the lo → mid → hi scan order, so the merged kernel pass visits
    /// buckets in precisely the order the scalar path scanned them one at a
    /// time: hits and order stay bit-identical to the frozen references.
    // lint: hot-path — the one batched query path; eps² computed once, extents go to the kernel
    fn query_cells(
        &self,
        cx: i64,
        cy: i64,
        center_rank: Option<usize>,
        target: &Point,
        out: &mut Vec<usize>,
    ) {
        let eps_sq = self.epsilon * self.epsilon;
        // The centre cell's cross-column links hand the side columns their
        // mid-cell ranks for free; a missing link (absent cell, or the rare
        // key wrap) falls back to the hash-probe resolution below.
        let (left_hint, right_hint) = match center_rank {
            Some(r) => {
                let (l, rt) = self.col_links[r];
                (
                    (l != EMPTY_SLOT).then_some(l as usize),
                    (rt != EMPTY_SLOT).then_some(rt as usize),
                )
            }
            None => (None, None),
        };
        for (col, col_rank) in [(cx - 1, left_hint), (cx, center_rank), (cx + 1, right_hint)] {
            let k_lo = Self::pack((col, cy - 1));
            let k_mid = Self::pack((col, cy));
            let k_hi = Self::pack((col, cy + 1));
            let lo_adjacent = k_lo.checked_add(1) == Some(k_mid);
            let mid_adjacent = k_mid.checked_add(1) == Some(k_hi);

            let r_lo = match col_rank {
                Some(r_mid) if lo_adjacent => {
                    if r_mid > 0 && self.cell_keys[r_mid - 1] == k_lo {
                        Some(r_mid - 1)
                    } else {
                        None
                    }
                }
                _ => self.bucket_rank(k_lo),
            };
            let r_mid = match (col_rank, r_lo) {
                (Some(r), _) => Some(r),
                (None, Some(r)) if lo_adjacent => {
                    if self.cell_keys.get(r + 1) == Some(&k_mid) {
                        Some(r + 1)
                    } else {
                        None
                    }
                }
                _ => self.bucket_rank(k_mid),
            };
            let r_hi = match (r_mid, r_lo) {
                (Some(r), _) if mid_adjacent => {
                    if self.cell_keys.get(r + 1) == Some(&k_hi) {
                        Some(r + 1)
                    } else {
                        None
                    }
                }
                // The middle cell was just probed absent, so if `k_hi`
                // exists it immediately follows the low cell's rank.
                (None, Some(r)) if lo_adjacent && mid_adjacent => {
                    if self.cell_keys.get(r + 1) == Some(&k_hi) {
                        Some(r + 1)
                    } else {
                        None
                    }
                }
                _ => self.bucket_rank(k_hi),
            };

            // Fuse consecutive-rank buckets into one contiguous SoA extent,
            // preserving the lo → mid → hi scan order.
            let mut run: Option<(usize, usize)> = None;
            for rank in [r_lo, r_mid, r_hi].into_iter().flatten() {
                run = match run {
                    Some((first, last)) if rank == last + 1 => Some((first, rank)),
                    Some((first, last)) => {
                        self.scan_extent(first, last, target, eps_sq, out);
                        Some((rank, rank))
                    }
                    None => Some((rank, rank)),
                };
            }
            if let Some((first, last)) = run {
                self.scan_extent(first, last, target, eps_sq, out);
            }
        }
    }

    /// Hands the contiguous SoA extent spanning bucket ranks
    /// `first_rank..=last_rank` to the batched kernel, and accounts the work
    /// in the counters behind `cluster.kernel_batches` /
    /// `cluster.kernel_lanes`.
    #[inline]
    fn scan_extent(
        &self,
        first_rank: usize,
        last_rank: usize,
        target: &Point,
        eps_sq: f64,
        out: &mut Vec<usize>,
    ) {
        let start = self.bucket_starts[first_rank] as usize;
        let end = self.bucket_starts[last_rank + 1] as usize;
        let len = end - start;
        self.kernel_batches
            .set(self.kernel_batches.get() + kernel::full_batches(len) as u64);
        self.kernel_lanes.set(self.kernel_lanes.get() + len as u64);
        kernel::scan_soa(
            &self.cell_xs[start..end],
            &self.cell_ys[start..end],
            &self.bucket_points[start..end],
            target.x,
            target.y,
            eps_sq,
            out,
        );
    }

    /// Inverse of [`GridIndex::pack`].
    #[inline]
    fn unpack(key: u128) -> (i64, i64) {
        (((key >> 64) as u64) as i64, (key as u64) as i64)
    }
}

impl RegionQuery for GridIndex {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.neighbors_into(idx, &mut out);
        out
    }

    /// The DBSCAN hot path: identical hits and order to
    /// [`GridIndex::range_query_into`] at the point's own position, but the
    /// point's cell is recovered from its recorded bucket rank — no
    /// coordinate divisions, and the centre column needs no hash probe.
    /// Both entry points funnel into the one audited
    /// [`GridIndex::query_cells`] region.
    fn neighbors_into(&self, idx: usize, out: &mut Vec<usize>) {
        out.clear();
        let target = &self.points[idx];
        let rank = self.point_rank[idx] as usize;
        let (cx, cy) = Self::unpack(self.cell_keys[rank]);
        self.query_cells(cx, cy, Some(rank), target, out);
    }
}

/// Reusable scratch state for snapshot clustering: the grid index, the
/// object-id buffer, the DBSCAN working arrays and a pool of output
/// clusters.
///
/// [`SnapshotClusterer::cluster_into`] produces exactly the clusters of
/// [`snapshot_clusters`] — same members, same order — but reuses every
/// buffer across calls, so a warmed clusterer performs **zero heap
/// allocations** per tick. One clusterer per fold (or per worker thread) is
/// the pattern: the convoy engine's `CmcState` owns one for its ingest path,
/// and the parallel/sharded drivers give each worker its own.
#[derive(Debug, Clone, Default)]
pub struct SnapshotClusterer {
    ids: Vec<ObjectId>,
    grid: GridIndex,
    scratch: DbscanScratch,
    /// `(cluster id, point index)` pairs, sorted to group members per
    /// cluster (ascending point index within each cluster).
    pairs: Vec<(u32, u32)>,
    /// Pooled output clusters; the first `n` are overwritten per call, the
    /// rest keep stale members but are never exposed.
    clusters: Vec<Cluster>,
    /// Recorder for the `cluster.*` metrics; the no-op default costs one
    /// branch per call. A live [`convoy_obs::Registry`] stays within the
    /// zero-allocation contract: metric names are `&'static str` keys whose
    /// map nodes exist after the first call.
    obs: Obs,
}

impl SnapshotClusterer {
    /// Creates an empty clusterer (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty clusterer recording into `obs`.
    pub fn with_obs(obs: Obs) -> Self {
        SnapshotClusterer {
            obs,
            ..Self::default()
        }
    }

    /// Attaches a recorder for subsequent [`SnapshotClusterer::cluster_into`]
    /// calls (`cluster.calls` / `cluster.points` / `cluster.clusters_found`
    /// counters and the `cluster.call_ns` latency histogram).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Density-clusters the objects of `snapshot` (DBSCAN with range `e` and
    /// density threshold `m`) into clusters of object ids — the same output
    /// as [`snapshot_clusters`], reusing this clusterer's buffers.
    ///
    /// The returned slice borrows the clusterer's cluster pool: it is valid
    /// until the next `cluster_into` call, which overwrites it (clone the
    /// clusters out if they must outlive the tick).
    // lint: hot-path — the steady-state per-tick clustering entry point (zero_alloc.rs proves a run; this proves the code)
    pub fn cluster_into(&mut self, snapshot: &Snapshot, e: f64, m: usize) -> &[Cluster] {
        let live = self.obs.enabled();
        let started_ns = if live { self.obs.now_ns() } else { 0 };
        if snapshot.len() < m {
            if live {
                self.obs.counter_add("cluster.calls", 1);
                self.obs
                    .counter_add("cluster.points", snapshot.len() as u64);
            }
            return &[];
        }
        self.ids.clear();
        self.ids
            .extend(snapshot.entries.iter().map(|entry| entry.id));
        self.grid.rebuild_with(e, |points| {
            points.extend(snapshot.entries.iter().map(|entry| entry.position));
        });
        dbscan_with_core_flags_into(&self.grid, m, &mut self.scratch);

        // Group the labelled points per cluster: sorting `(cluster, index)`
        // pairs groups members in ascending point index, which after the id
        // mapping is exactly what `labels_to_clusters` + `Cluster::new`
        // produce.
        self.pairs.clear();
        let mut num_clusters = 0u32;
        for (i, label) in self.scratch.labels().iter().enumerate() {
            if let Label::Cluster(c) = label {
                // lint: allow(cast-audit) — cluster ids and point indices are < u32::MAX (grid assert)
                let c = *c as u32;
                num_clusters = num_clusters.max(c + 1);
                // lint: allow(cast-audit) — point index < u32::MAX (grid assert)
                self.pairs.push((c, i as u32));
            }
        }
        self.pairs.sort_unstable();
        while self.clusters.len() < num_clusters as usize {
            self.clusters.push(Cluster::default());
        }
        let mut cursor = 0;
        for c in 0..num_clusters {
            let start = cursor;
            while cursor < self.pairs.len() && self.pairs[cursor].0 == c {
                cursor += 1;
            }
            let ids = &self.ids;
            self.clusters[c as usize].assign(
                self.pairs[start..cursor]
                    .iter()
                    .map(|&(_, i)| ids[i as usize]),
            );
        }
        if live {
            let (kernel_batches, kernel_lanes) = self.grid.take_kernel_counts();
            self.obs.counter_add("cluster.calls", 1);
            self.obs
                .counter_add("cluster.points", self.ids.len() as u64);
            self.obs
                .counter_add("cluster.clusters_found", num_clusters as u64);
            self.obs
                .counter_add("cluster.kernel_batches", kernel_batches);
            self.obs.counter_add("cluster.kernel_lanes", kernel_lanes);
            self.obs.histogram_record(
                "cluster.call_ns",
                self.obs.now_ns().saturating_sub(started_ns),
            );
        }
        &self.clusters[..num_clusters as usize]
    }
}

/// Density-clusters the objects of a snapshot (DBSCAN with range `e` and
/// density threshold `m`), returning clusters of object ids.
///
/// This is the `DBSCAN(O_t, e, m)` call of Algorithm 1 (CMC) and of the CuTS
/// refinement step. Objects labelled as noise are not reported. One-shot
/// convenience over [`SnapshotClusterer::cluster_into`] — per-tick callers
/// should hold a clusterer and reuse it instead.
pub fn snapshot_clusters(snapshot: &Snapshot, e: f64, m: usize) -> Vec<Cluster> {
    SnapshotClusterer::new()
        .cluster_into(snapshot, e, m)
        .to_vec()
}

/// Like [`snapshot_clusters`] but also reports the noise objects, which some
/// analyses (and tests) need.
pub fn snapshot_clusters_with_noise(
    snapshot: &Snapshot,
    e: f64,
    m: usize,
) -> (Vec<Cluster>, Vec<ObjectId>) {
    if snapshot.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let ids: Vec<ObjectId> = snapshot.entries.iter().map(|entry| entry.id).collect();
    let points: Vec<Point> = snapshot
        .entries
        .iter()
        .map(|entry| entry.position)
        .collect();
    let index = GridIndex::build(points, e);
    let labels = dbscan(&index, m);
    let clusters = labels_to_clusters(&labels)
        .into_iter()
        .map(|members| Cluster::new(members.into_iter().map(|i| ids[i]).collect()))
        .collect();
    let noise = labels
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == Label::Noise)
        .map(|(i, _)| ids[i])
        .collect();
    (clusters, noise)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::BruteForcePoints;
    use crate::reference::HashMapGrid;
    use proptest::prelude::*;
    use trajectory::database::SnapshotEntry;
    use trajectory::{SnapshotPolicy, Trajectory, TrajectoryDatabase};

    /// Asserts the CSR index agrees with the HashMap reference on every
    /// point's neighbourhood — order included — and that the buffered query
    /// path equals the allocating one.
    fn assert_matches_reference(points: &[Point], epsilon: f64) {
        let csr = GridIndex::build(points.to_vec(), epsilon);
        let reference = HashMapGrid::build(points.to_vec(), epsilon);
        let mut buf = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let expected = reference.range_query(p);
            assert_eq!(
                csr.range_query(p),
                expected,
                "range_query order mismatch at point {i}"
            );
            csr.neighbors_into(i, &mut buf);
            assert_eq!(buf, expected, "neighbors_into order mismatch at point {i}");
            assert_eq!(csr.neighbors(i), expected);
        }
    }

    #[test]
    fn range_query_matches_brute_force() {
        let points: Vec<Point> = (0..50)
            .map(|i| Point::new((i % 10) as f64 * 0.7, (i / 10) as f64 * 0.7))
            .collect();
        let index = GridIndex::build(points.clone(), 1.0);
        for (i, p) in points.iter().enumerate() {
            let mut from_grid = index.range_query(p);
            from_grid.sort_unstable();
            let mut brute: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, q)| q.distance(p) <= 1.0)
                .map(|(j, _)| j)
                .collect();
            brute.sort_unstable();
            assert_eq!(from_grid, brute, "mismatch for point {i}");
        }
        assert_matches_reference(&points, 1.0);
    }

    #[test]
    fn grid_handles_negative_coordinates() {
        let points = vec![
            Point::new(-5.0, -5.0),
            Point::new(-5.5, -5.2),
            Point::new(5.0, 5.0),
        ];
        let index = GridIndex::build(points.clone(), 1.0);
        let n = index.range_query(&Point::new(-5.0, -5.0));
        assert_eq!(n.len(), 2);
        assert!(!index.is_empty());
        assert_eq!(index.len(), 3);
        assert_matches_reference(&points, 1.0);
    }

    #[test]
    fn non_finite_and_astronomical_coordinates_do_not_panic_or_cluster() {
        // Regression: `floor() as i64` saturation used to put huge and
        // infinite coordinates into cell `i64::MAX`, and the ±1 neighbour
        // offsets then overflowed in `range_query`.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(1e300, -1e300),
            Point::new(f64::INFINITY, 0.0),
            Point::new(f64::NEG_INFINITY, f64::INFINITY),
            Point::new(f64::NAN, 3.0),
        ];
        let index = GridIndex::build(points.clone(), 1.0);
        // Near the origin only the two finite nearby points are neighbours.
        let near = index.range_query(&Point::new(0.0, 0.0));
        assert_eq!(near, vec![0, 1]);
        // Querying at the pathological points must not panic, and a NaN
        // point is not even its own neighbour (NaN distance).
        for i in 2..index.len() {
            let hits = index.range_query(&index.points()[i]);
            assert!(hits.len() <= 1, "far point {i} found neighbours: {hits:?}");
        }
        assert!(index.range_query(&Point::new(f64::NAN, 3.0)).is_empty());
        assert_matches_reference(&points, 1.0);
    }

    #[test]
    fn distinct_astronomical_points_share_a_cell_but_not_a_neighbourhood() {
        // Both coordinates clamp to the same boundary cell; the exact
        // distance test keeps them apart.
        let points = vec![Point::new(1e300, 0.0), Point::new(2e300, 0.0)];
        let index = GridIndex::build(points.clone(), 5.0);
        assert_eq!(index.range_query(&Point::new(1e300, 0.0)), vec![0]);
        assert_matches_reference(&points, 5.0);
    }

    #[test]
    fn zero_epsilon_does_not_panic() {
        let points = vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
        let index = GridIndex::build(points, 0.0);
        // Identical points are still mutual neighbours at distance 0.
        assert_eq!(index.range_query(&Point::new(0.0, 0.0)).len(), 2);
    }

    #[test]
    fn rebuild_reuses_buffers_and_reindexes_exactly() {
        let mut index = GridIndex::default();
        for round in 0..3 {
            let shift = round as f64 * 10.0;
            let points: Vec<Point> = (0..40)
                .map(|i| Point::new(shift + (i % 8) as f64 * 0.6, (i / 8) as f64 * 0.6))
                .collect();
            index.rebuild(1.0, points.iter().copied());
            let fresh = GridIndex::build(points.clone(), 1.0);
            for (i, p) in points.iter().enumerate() {
                assert_eq!(
                    index.range_query(p),
                    fresh.range_query(p),
                    "rebuild diverged from fresh build at round {round}, point {i}"
                );
            }
        }
    }

    fn db_with_positions(positions: &[(f64, f64)]) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (i, (x, y)) in positions.iter().enumerate() {
            db.insert(
                ObjectId(i as u64),
                Trajectory::from_tuples([(*x, *y, 0)]).unwrap(),
            );
        }
        db
    }

    #[test]
    fn snapshot_clustering_basic() {
        let db = db_with_positions(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (50.0, 50.0)]);
        let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
        let clusters = snapshot_clusters(&snap, 1.5, 2);
        assert_eq!(clusters.len(), 1);
        assert_eq!(
            clusters[0].members(),
            &[ObjectId(0), ObjectId(1), ObjectId(2)]
        );
        let (clusters, noise) = snapshot_clusters_with_noise(&snap, 1.5, 2);
        assert_eq!(clusters.len(), 1);
        assert_eq!(noise, vec![ObjectId(3)]);
    }

    #[test]
    fn snapshot_with_fewer_than_m_objects_returns_nothing() {
        let db = db_with_positions(&[(0.0, 0.0), (0.1, 0.0)]);
        let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
        assert!(snapshot_clusters(&snap, 1.0, 3).is_empty());
        let mut clusterer = SnapshotClusterer::new();
        assert!(clusterer.cluster_into(&snap, 1.0, 3).is_empty());
    }

    #[test]
    fn lossy_flock_scenario_is_captured_by_density_connection() {
        // Figure 1 of the paper: four objects travelling as an elongated
        // group. A fixed disc of diameter 3 misses o4, but density connection
        // with e=1.2 links the whole chain.
        let db = db_with_positions(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
        let clusters = snapshot_clusters(&snap, 1.2, 2);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 4);
    }

    /// Builds an id-ordered snapshot from raw positions (ids = input order).
    fn snapshot_of(positions: &[(f64, f64)]) -> Snapshot {
        Snapshot {
            time: 0,
            entries: positions
                .iter()
                .enumerate()
                .map(|(i, (x, y))| SnapshotEntry {
                    id: ObjectId(i as u64),
                    position: Point::new(*x, *y),
                    interpolated: false,
                })
                .collect(),
        }
    }

    #[test]
    fn reused_clusterer_equals_fresh_clustering_over_100_random_snapshots() {
        // One clusterer folded over 100 snapshots of wildly varying size and
        // density must produce exactly what a fresh `snapshot_clusters` call
        // produces per snapshot — stale pool contents, grown buffers and all.
        let mut clusterer = SnapshotClusterer::new();
        let mut seed = 0x5eed_cafe_u64;
        let mut rand = move || {
            // xorshift64*: deterministic, dependency-free.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..100 {
            let n = (rand() % 120) as usize;
            let positions: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    (
                        (rand() % 2_000) as f64 * 0.03 - 30.0,
                        (rand() % 2_000) as f64 * 0.03 - 30.0,
                    )
                })
                .collect();
            let snap = snapshot_of(&positions);
            let e = 0.3 + (rand() % 40) as f64 * 0.1;
            let m = 1 + (rand() % 4) as usize;
            let reused = clusterer.cluster_into(&snap, e, m).to_vec();
            assert_eq!(
                reused,
                snapshot_clusters(&snap, e, m),
                "reused clusterer diverged at round {round} (n={n}, e={e}, m={m})"
            );
        }
    }

    #[test]
    fn reused_clusterer_handles_pathological_coordinates() {
        let mut clusterer = SnapshotClusterer::new();
        for positions in [
            vec![(0.0, 0.0), (0.5, 0.0), (1e300, -1e300), (f64::NAN, 3.0)],
            vec![(f64::INFINITY, 0.0), (f64::NEG_INFINITY, f64::INFINITY)],
            vec![(0.0, 0.0), (0.4, 0.0), (0.8, 0.0), (50.0, 50.0)],
        ] {
            let snap = snapshot_of(&positions);
            assert_eq!(
                clusterer.cluster_into(&snap, 1.0, 2).to_vec(),
                snapshot_clusters(&snap, 1.0, 2)
            );
        }
    }

    proptest! {
        #[test]
        fn grid_neighbours_equal_brute_force_neighbours(
            coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 1..80),
            e in 0.3f64..5.0) {
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let grid = GridIndex::build(pts.clone(), e);
            let brute = BruteForcePoints::new(&pts, e);
            for i in 0..pts.len() {
                let mut a = grid.neighbors(i);
                let mut b = brute.neighbors(i);
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "neighbourhood mismatch at index {}", i);
            }
        }

        #[test]
        fn csr_neighbourhood_order_equals_hashmap_reference(
            coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 1..80),
            e in 0.3f64..5.0) {
            // The exactness contract of the CSR rewrite: not just the same
            // neighbour *sets* but the same *order* the HashMap buckets
            // reported, for every point — DBSCAN's seed order (and thus the
            // engines' bit-identical output) depends on it.
            let mut pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            // Salt the set with the pathological fixtures so clamped and NaN
            // cells are exercised under the same order contract.
            pts.push(Point::new(1e300, -1e300));
            pts.push(Point::new(f64::INFINITY, 0.0));
            pts.push(Point::new(f64::NAN, 3.0));
            let csr = GridIndex::build(pts.clone(), e);
            let reference = HashMapGrid::build(pts.clone(), e);
            let mut buf = Vec::new();
            for (i, p) in pts.iter().enumerate() {
                let expected = reference.range_query(p);
                csr.neighbors_into(i, &mut buf);
                prop_assert_eq!(&buf, &expected, "order mismatch at index {}", i);
            }
        }

        #[test]
        fn clustering_via_grid_matches_brute_force_partition(
            coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 2..60),
            e in 0.5f64..5.0,
            m in 2usize..4) {
            // Because neighbourhoods agree exactly, the DBSCAN partitions must
            // also agree (same visiting order, same seeds).
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let grid_labels = dbscan(&GridIndex::build(pts.clone(), e), m);
            let brute_labels = dbscan(&BruteForcePoints::new(&pts, e), m);
            prop_assert_eq!(grid_labels, brute_labels);
        }

        #[test]
        fn reused_clusterer_is_equivalent_on_random_snapshots(
            coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 0..60),
            e in 0.3f64..5.0,
            m in 1usize..5) {
            let snap = snapshot_of(&coords);
            let mut clusterer = SnapshotClusterer::new();
            // Warm the pool with an unrelated snapshot first so stale state
            // is in play, then cluster the real one.
            let warm = snapshot_of(&[(0.0, 0.0), (0.2, 0.0), (0.4, 0.0), (9.0, 9.0)]);
            clusterer.cluster_into(&warm, 0.5, 2);
            prop_assert_eq!(
                clusterer.cluster_into(&snap, e, m).to_vec(),
                snapshot_clusters(&snap, e, m)
            );
        }
    }
}
