//! Batched, auto-vectorizable distance kernels over structure-of-arrays
//! coordinate columns.
//!
//! This is the innermost loop of the whole suite: every e-range query of the
//! CSR [`GridIndex`](crate::GridIndex) ends up distance-testing the points
//! of a handful of buckets against one target. The grid stores those points
//! as parallel `xs`/`ys` columns (structure of arrays), and the kernel here
//! tests them in fixed-width lanes:
//!
//! 1. **Batch.** Each [`LANE_WIDTH`]-wide chunk computes
//!    `dx*dx + dy*dy <= eps_sq` for all lanes with no data-dependent
//!    branches, accumulating the comparison results into a bitmask. The
//!    chunked-slice shape (`chunks_exact` over plain `f64` columns) is the
//!    form LLVM's autovectorizer reliably turns into SIMD compares — no
//!    `std::simd`, no `unsafe`, no platform intrinsics.
//! 2. **Emit.** The mask is then drained lowest-bit-first
//!    (`trailing_zeros`), pushing hit indices in ascending lane order.
//!    Chunks are visited left to right and the scalar remainder last, so
//!    hits are emitted in exactly ascending slice order — which, because CSR
//!    buckets store points in ascending point index, is bit-identical to the
//!    historical scalar scan (the order every engine-equivalence suite and
//!    the frozen [`crate::reference`] pin).
//!
//! The arithmetic is the same IEEE expression the scalar path evaluated
//! (`(x - tx)² + (y - ty)²`, no FMA contraction, compared with `<=`), so the
//! hit *set* is bit-identical too: NaN coordinates compare false against
//! every epsilon, points exactly at distance `e` stay inclusive, and ±∞
//! squares to +∞ which is rejected. `kernel_equivalence.rs` pits this kernel
//! against the frozen scalar references on exactly those adversarial shapes.

/// Number of lanes a batch tests at once.
///
/// Eight `f64` lanes span four SSE2 / two AVX vectors — wide enough that the
/// autovectorized compare amortizes the mask drain, narrow enough that the
/// typical merged 3-cell column extent (~8 points at the benchmark's
/// constant density) still fills a batch. The emit mask is a `u32`, so the
/// width is statically capped at 32.
pub const LANE_WIDTH: usize = 8;

// Compile-time guarantee that every lane index fits the `u32` emit mask.
const _: () = assert!(LANE_WIDTH <= 32);

/// Batched e-range test over one structure-of-arrays extent.
///
/// Scans the parallel coordinate columns `xs`/`ys` (and the matching
/// original-point-index column `idxs`) against the target `(tx, ty)`,
/// pushing `idxs[j] as usize` for every `j` with
/// `(xs[j] - tx)² + (ys[j] - ty)² <= eps_sq` — in ascending `j` order,
/// exactly the hits and order of the scalar reference scan.
///
/// The three slices must have equal length (the CSR layout guarantees it;
/// debug builds assert it). `out` is appended to, not cleared.
// lint: hot-path — the batched distance kernel; mask-then-emit, no allocation
#[inline]
pub fn scan_soa(
    xs: &[f64],
    ys: &[f64],
    idxs: &[u32],
    tx: f64,
    ty: f64,
    eps_sq: f64,
    out: &mut Vec<usize>,
) {
    debug_assert_eq!(xs.len(), ys.len());
    debug_assert_eq!(xs.len(), idxs.len());
    let n = xs.len().min(ys.len()).min(idxs.len());
    let (xs, ys, idxs) = (&xs[..n], &ys[..n], &idxs[..n]);

    // Short extents (no full batch) skip the chunk/mask machinery outright:
    // identical expression and order to the remainder loop below, without
    // paying two `ChunksExact` constructions for zero chunks.
    if n < LANE_WIDTH {
        for ((x, y), &idx) in xs.iter().zip(ys).zip(idxs) {
            let dx = x - tx;
            let dy = y - ty;
            if dx * dx + dy * dy <= eps_sq {
                out.push(idx as usize);
            }
        }
        return;
    }

    let mut chunks_x = xs.chunks_exact(LANE_WIDTH);
    let mut chunks_y = ys.chunks_exact(LANE_WIDTH);
    let mut base = 0usize;
    for (cx, cy) in chunks_x.by_ref().zip(chunks_y.by_ref()) {
        // Branch-free lane pass: the fixed-width loop over `chunks_exact`
        // slices is bounds-check-free and autovectorizes to SIMD subtract /
        // multiply / compare; the comparison results land in one bitmask.
        let mut mask = 0u32;
        for lane in 0..LANE_WIDTH {
            let dx = cx[lane] - tx;
            let dy = cy[lane] - ty;
            let d2 = dx * dx + dy * dy;
            mask |= u32::from(d2 <= eps_sq) << lane;
        }
        // Emit pass: drain set bits lowest-first, preserving ascending
        // slice (= ascending point index) order. Misses cost nothing —
        // the common all-miss chunk is a single branch on `mask == 0`.
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            out.push(idxs[base + lane] as usize);
            mask &= mask - 1;
        }
        base += LANE_WIDTH;
    }

    // Scalar tail for the `n mod LANE_WIDTH` remainder, same expression,
    // still ascending.
    for ((x, y), &idx) in chunks_x
        .remainder()
        .iter()
        .zip(chunks_y.remainder())
        .zip(&idxs[base..])
    {
        let dx = x - tx;
        let dy = y - ty;
        if dx * dx + dy * dy <= eps_sq {
            out.push(idx as usize);
        }
    }
}

/// The number of full [`LANE_WIDTH`] batches [`scan_soa`] executes for an
/// extent of `len` points (the rest goes through the scalar tail). Pure
/// arithmetic — the grid uses it to account the `cluster.kernel_batches` /
/// `cluster.kernel_lanes` observability counters without touching the
/// kernel's inner loop.
#[inline]
pub fn full_batches(len: usize) -> usize {
    len / LANE_WIDTH
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar loop the kernel replaces, in its exact historical shape.
    fn scan_scalar(
        xs: &[f64],
        ys: &[f64],
        idxs: &[u32],
        tx: f64,
        ty: f64,
        eps_sq: f64,
        out: &mut Vec<usize>,
    ) {
        for ((x, y), &idx) in xs.iter().zip(ys).zip(idxs) {
            let dx = x - tx;
            let dy = y - ty;
            if dx * dx + dy * dy <= eps_sq {
                out.push(idx as usize);
            }
        }
    }

    fn assert_kernel_matches(xs: &[f64], ys: &[f64], tx: f64, ty: f64, eps_sq: f64) {
        let idxs: Vec<u32> = (0..xs.len() as u32).collect();
        let mut batched = vec![999usize]; // pre-seeded: append, don't clear
        let mut scalar = vec![999usize];
        scan_soa(xs, ys, &idxs, tx, ty, eps_sq, &mut batched);
        scan_scalar(xs, ys, &idxs, tx, ty, eps_sq, &mut scalar);
        assert_eq!(batched, scalar, "kernel diverged (n = {})", xs.len());
    }

    #[test]
    fn every_length_mod_lane_width_matches_scalar() {
        // 0..=3·width+1 covers empty, pure-remainder, exact-chunk and
        // chunk-plus-every-remainder shapes.
        for n in 0..=(3 * LANE_WIDTH + 1) {
            let xs: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.9).collect();
            let ys: Vec<f64> = (0..n).map(|i| (i % 3) as f64 * 1.1).collect();
            assert_kernel_matches(&xs, &ys, 1.0, 1.0, 4.0);
        }
    }

    #[test]
    fn exact_epsilon_hits_are_inclusive_in_every_lane_position() {
        // A point at exactly distance e from the target in each lane slot of
        // a chunk: d² == eps² must be a hit (closed balls, Definition 1).
        for slot in 0..LANE_WIDTH {
            let mut xs = vec![100.0; LANE_WIDTH + 3];
            let ys = vec![0.0; LANE_WIDTH + 3];
            xs[slot] = 3.0;
            let idxs: Vec<u32> = (0..xs.len() as u32).collect();
            let mut out = Vec::new();
            scan_soa(&xs, &ys, &idxs, 0.0, 0.0, 9.0, &mut out);
            assert_eq!(out, vec![slot], "exact-e hit missed in lane {slot}");
        }
    }

    #[test]
    fn non_finite_coordinates_never_hit() {
        let xs = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, 1e300];
        let ys = [0.0, 0.0, f64::INFINITY, f64::NAN, -1e300];
        assert_kernel_matches(&xs, &ys, 0.0, 0.0, 1e18);
        // A NaN target rejects everything — including a NaN point.
        let mut out = Vec::new();
        let idxs: Vec<u32> = (0..xs.len() as u32).collect();
        scan_soa(&xs, &ys, &idxs, f64::NAN, 0.0, 1e18, &mut out);
        assert!(out.is_empty(), "NaN target must produce no hits");
    }

    #[test]
    fn dense_duplicate_extent_emits_every_index_in_order() {
        // 4096 coincident points: 512 completely full batches, every lane a
        // hit — the mask drain must still emit strictly ascending indices.
        let n = 4096;
        let xs = vec![2.5; n];
        let ys = vec![-1.5; n];
        let idxs: Vec<u32> = (0..n as u32).collect();
        let mut out = Vec::new();
        scan_soa(&xs, &ys, &idxs, 2.5, -1.5, 0.0, &mut out);
        let expected: Vec<usize> = (0..n).collect();
        assert_eq!(out, expected);
        assert_eq!(full_batches(n), n / LANE_WIDTH);
    }

    #[test]
    fn non_contiguous_index_column_is_passed_through() {
        // The kernel reports `idxs[j]`, not `j`: bucket extents carry
        // original point indices.
        let xs = [0.0, 10.0, 0.1];
        let ys = [0.0, 10.0, 0.0];
        let idxs = [7u32, 3, 42];
        let mut out = Vec::new();
        scan_soa(&xs, &ys, &idxs, 0.0, 0.0, 1.0, &mut out);
        assert_eq!(out, vec![7, 42]);
    }
}
