//! # `traj-cluster` — density-based clustering substrate
//!
//! Convoy discovery is built on density-connected clustering (DBSCAN,
//! Ester et al. 1996). This crate provides:
//!
//! * [`dbscan`]: a generic DBSCAN implementation over abstract items with a
//!   pluggable [`RegionQuery`] neighbourhood provider;
//! * [`GridIndex`]: a uniform-grid spatial index in a flat CSR
//!   structure-of-arrays layout whose distance scans run through the
//!   batched, auto-vectorizable [`kernel`] module, providing the
//!   e-neighbourhood searches DBSCAN needs over point snapshots (used by
//!   CMC and by the CuTS refinement step);
//! * [`snapshot_clusters`]: snapshot clustering of a
//!   [`trajectory::Snapshot`] into object-id clusters, and
//!   [`SnapshotClusterer`]: its reusable-scratch form, allocation-free in
//!   steady state — what every per-tick engine loop holds on to;
//! * [`SubTrajectory`] + [`cluster_sub_trajectories`]: the "TRAJ-DBSCAN" of
//!   the paper's Algorithm 2 — density clustering of *simplified
//!   sub-trajectories* within one time partition, using the ω distance with
//!   the Lemma 1 / Lemma 3 error bounds and the Lemma 2 bounding-box
//!   pre-filter;
//! * [`ShardGrid`] + [`shard_clusters`] + [`merge_shard_clusters`]: spatially
//!   sharded snapshot clustering — per-shard DBSCAN over owned objects plus
//!   a boundary halo, merged back into exactly the global clustering (the
//!   substrate of the sharded convoy engine).
//!
//! ## Example: snapshot clustering
//!
//! ```
//! use trajectory::{TrajectoryDatabase, Trajectory, ObjectId, SnapshotPolicy};
//! use traj_cluster::snapshot_clusters;
//!
//! let mut db = TrajectoryDatabase::new();
//! for (i, x) in [0.0, 1.0, 2.0, 50.0].iter().enumerate() {
//!     db.insert(ObjectId(i as u64),
//!               Trajectory::from_tuples([(*x, 0.0, 0)]).unwrap());
//! }
//! let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
//! let clusters = snapshot_clusters(&snap, 1.5, 2);
//! assert_eq!(clusters.len(), 1);            // the three nearby objects
//! assert_eq!(clusters[0].len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[doc(hidden)]
pub mod aos;
pub mod cluster;
pub mod dbscan;
pub mod grid;
pub mod kernel;
#[doc(hidden)]
pub mod reference;
pub mod segment;
pub mod shard;

pub use cluster::Cluster;
pub use dbscan::{
    dbscan, dbscan_with_core_flags, dbscan_with_core_flags_into, DbscanScratch, Label, RegionQuery,
};
pub use grid::{snapshot_clusters, GridIndex, SnapshotClusterer};
pub use segment::{cluster_sub_trajectories, omega_distance, SegmentDistance, SubTrajectory};
pub use shard::{
    merge_shard_clusters, shard_clusters, shard_clusters_with, sharded_snapshot_clusters,
    ShardClusters, ShardGrid, ShardScratch,
};
