//! The **frozen pre-CSR clustering hot path**, kept verbatim as a
//! behavioural reference — not production code.
//!
//! The CSR [`GridIndex`](crate::GridIndex) rewrite promises the exact
//! neighbour sets *and order* of the original `HashMap`-bucket
//! implementation (the engines' bit-identical guarantees depend on it), and
//! `BENCH_baseline.json` records the speedup against the original's real
//! cost profile. Both claims need the original to stay available and
//! unchanged in one place:
//!
//! * the order-equivalence property tests in [`crate::grid`] compare the
//!   CSR index against [`HashMapGrid`] hit-for-hit, order included;
//! * the `micro_primitives` bench times [`snapshot_clusters`] (this
//!   module's, with the pre-scratch DBSCAN loop below) against the CSR +
//!   scratch-reuse path.
//!
//! Do not "improve" this module: any edit here silently changes what the
//! tests and the recorded baseline claim to pin.

use crate::cluster::Cluster;
use crate::dbscan::{labels_to_clusters, Label, RegionQuery};
use std::collections::HashMap;
use trajectory::geometry::Point;
use trajectory::{ObjectId, Snapshot};

/// The pre-CSR grid: `HashMap` buckets keyed by cell coordinates, one
/// heap-allocated `Vec` per cell, a freshly allocated hit list per query.
pub struct HashMapGrid {
    points: Vec<Point>,
    epsilon: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
}

const CELL_LIMIT: f64 = (1i64 << 62) as f64;

fn cell_coord(v: f64, epsilon: f64) -> i64 {
    let cell = (v / epsilon).floor();
    if cell.is_nan() {
        return 0;
    }
    cell.clamp(-CELL_LIMIT, CELL_LIMIT) as i64
}

fn cell_of(p: &Point, epsilon: f64) -> (i64, i64) {
    (cell_coord(p.x, epsilon), cell_coord(p.y, epsilon))
}

impl HashMapGrid {
    /// Builds the grid over `points` for queries of radius `epsilon`.
    pub fn build(points: Vec<Point>, epsilon: f64) -> Self {
        let epsilon = if epsilon > 0.0 { epsilon } else { f64::EPSILON };
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells.entry(cell_of(p, epsilon)).or_default().push(i);
        }
        HashMapGrid {
            points,
            epsilon,
            cells,
        }
    }

    /// Indices of all points within `epsilon` of `target`, in the original
    /// implementation's order: 3×3 `dx`/`dy` cell sweep, each bucket in
    /// insertion (= ascending point index) order.
    pub fn range_query(&self, target: &Point) -> Vec<usize> {
        let (cx, cy) = cell_of(target, self.epsilon);
        let eps_sq = self.epsilon * self.epsilon;
        let mut out = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in bucket {
                        if self.points[i].distance_squared(target) <= eps_sq {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out
    }
}

impl RegionQuery for HashMapGrid {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        self.range_query(&self.points[idx])
    }
}

/// The pre-scratch DBSCAN loop: fresh label vector, fresh seed queue, one
/// allocated neighbour list per visited item (verbatim from before the
/// `neighbors_into` rewrite).
pub fn dbscan<Q: RegionQuery>(query: &Q, min_pts: usize) -> Vec<Label> {
    let n = query.len();
    let mut labels = vec![Label::Unvisited; n];
    let mut next_cluster = 0usize;
    let mut seeds: Vec<usize> = Vec::new();

    for start in 0..n {
        if labels[start] != Label::Unvisited {
            continue;
        }
        let neighbors = query.neighbors(start);
        if neighbors.len() < min_pts {
            labels[start] = Label::Noise;
            continue;
        }
        let cluster_id = next_cluster;
        next_cluster += 1;
        labels[start] = Label::Cluster(cluster_id);
        seeds.clear();
        seeds.extend(neighbors);
        let mut cursor = 0;
        while cursor < seeds.len() {
            let item = seeds[cursor];
            cursor += 1;
            match labels[item] {
                Label::Cluster(_) => continue,
                Label::Noise | Label::Unvisited => {
                    let was_unvisited = labels[item] == Label::Unvisited;
                    labels[item] = Label::Cluster(cluster_id);
                    if was_unvisited {
                        let item_neighbors = query.neighbors(item);
                        if item_neighbors.len() >= min_pts {
                            seeds.extend(item_neighbors);
                        }
                    }
                }
            }
        }
    }
    labels
}

/// The pre-CSR `snapshot_clusters`: fresh id/point vectors, fresh
/// `HashMap` grid, the allocating DBSCAN above.
pub fn snapshot_clusters(snapshot: &Snapshot, e: f64, m: usize) -> Vec<Cluster> {
    if snapshot.len() < m {
        return Vec::new();
    }
    let ids: Vec<ObjectId> = snapshot.entries.iter().map(|entry| entry.id).collect();
    let points: Vec<Point> = snapshot
        .entries
        .iter()
        .map(|entry| entry.position)
        .collect();
    let index = HashMapGrid::build(points, e);
    let labels = dbscan(&index, m);
    labels_to_clusters(&labels)
        .into_iter()
        .map(|members| Cluster::new(members.into_iter().map(|i| ids[i]).collect()))
        .collect()
}
