//! Clustering of simplified sub-trajectories — the "TRAJ-DBSCAN" used by the
//! CuTS filter step (Algorithm 2, Sections 5.2–5.3 and 6.2 of the paper).
//!
//! Within one time partition, every object contributes the portion of its
//! simplified trajectory whose segments intersect the partition (a
//! [`SubTrajectory`]). Two sub-trajectories are neighbours when their ω
//! distance does not exceed `e`:
//!
//! ```text
//! ω(o′q, o′i) = min { dist(l′q, l′i) − δ(l′q) − δ(l′i)
//!                     | l′q ∈ o′q, l′i ∈ o′i, l′q.τ ∩ l′i.τ ≠ ∅ }
//! ```
//!
//! where `dist` is `DLL` (Lemma 1, used by CuTS and CuTS+) or the tighter CPA
//! distance `D*` (Lemma 3, used by CuTS*). Lemma 2 is applied first: when the
//! minimum distance between the sub-trajectories' bounding boxes already
//! exceeds `e + δ(l′q) + δ_max`, no segment pair needs to be examined.

use crate::cluster::Cluster;
use crate::dbscan::{dbscan, labels_to_clusters, RegionQuery};
use serde::{Deserialize, Serialize};
use traj_simplify::{SimplifiedSegment, SimplifiedTrajectory, ToleranceMode};
use trajectory::geometry::BoundingBox;
use trajectory::{ObjectId, TimeInterval};

/// Which segment-to-segment distance the filter step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentDistance {
    /// The spatial shortest distance `DLL` between segments (Lemma 1;
    /// CuTS and CuTS+).
    Dll,
    /// The closest-point-of-approach distance `D*` restricted to the common
    /// time interval (Lemma 3; CuTS*). Requires the segments to have been
    /// produced by a time-aware simplifier (DP*) for the bound to be tight,
    /// but is *correct* for any simplifier because `D* ≥ DLL`... it is only
    /// *safe* when the simplification error is measured synchronously, which
    /// DP* guarantees.
    DStar,
}

impl SegmentDistance {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            SegmentDistance::Dll => "DLL",
            SegmentDistance::DStar => "D*",
        }
    }

    /// The distance between two simplified segments under this function.
    /// Returns `f64::INFINITY` when `D*` is requested and the segments' time
    /// intervals do not intersect.
    pub fn distance(&self, a: &SimplifiedSegment, b: &SimplifiedSegment) -> f64 {
        match self {
            SegmentDistance::Dll => a.segment().distance_to_segment(&b.segment()),
            SegmentDistance::DStar => a.timed.cpa_distance(&b.timed),
        }
    }
}

/// The portion of one object's simplified trajectory that falls into one time
/// partition: the unit of clustering in the CuTS filter step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubTrajectory {
    /// The object the sub-trajectory belongs to.
    pub object: ObjectId,
    /// The simplified segments whose time intervals intersect the partition.
    pub segments: Vec<SimplifiedSegment>,
    /// The global simplification tolerance the segments were produced with.
    pub global_tolerance: f64,
}

impl SubTrajectory {
    /// Builds the sub-trajectory of `simplified` for the given partition
    /// window: the segments whose time interval intersects `window`.
    /// Returns `None` when no segment intersects the window (the object is
    /// absent from this partition).
    ///
    /// Single-sample simplified trajectories (no segments) are represented by
    /// a degenerate segment so that such objects can still join clusters.
    pub fn for_window(
        object: ObjectId,
        simplified: &SimplifiedTrajectory,
        window: TimeInterval,
    ) -> Option<SubTrajectory> {
        let mut segments: Vec<SimplifiedSegment> =
            simplified.segments_intersecting(window).to_vec();
        if segments.is_empty() {
            if simplified.segments().is_empty() {
                // Single-sample trajectory: include it when its instant lies
                // inside the window.
                let only = simplified.points()[0];
                if window.contains(only.t) {
                    let seg = trajectory::geometry::Segment::new(only.position(), only.position());
                    segments.push(SimplifiedSegment {
                        timed: trajectory::geometry::segment::TimedSegment::new(
                            seg,
                            TimeInterval::instant(only.t),
                        ),
                        actual_tolerance: 0.0,
                        start_index: 0,
                        end_index: 0,
                    });
                } else {
                    return None;
                }
            } else {
                return None;
            }
        }
        Some(SubTrajectory {
            object,
            segments,
            global_tolerance: simplified.global_tolerance(),
        })
    }

    /// The time interval covered by the sub-trajectory's segments.
    pub fn time_interval(&self) -> TimeInterval {
        let first = self.segments[0].interval();
        self.segments
            .iter()
            .skip(1)
            .fold(first, |acc, s| acc.hull(&s.interval()))
    }

    /// The spatial bounding box `B(S)` of all segments (Lemma 2).
    pub fn bounding_box(&self) -> BoundingBox {
        let mut bbox = self.segments[0].bounding_box();
        for s in &self.segments[1..] {
            bbox = bbox.union(&s.bounding_box());
        }
        bbox
    }

    /// The largest per-segment tolerance, `δ_max(S)` of Lemma 2, under the
    /// chosen tolerance mode.
    pub fn max_tolerance(&self, mode: ToleranceMode) -> f64 {
        self.segments
            .iter()
            .map(|s| mode.tolerance_for(s.actual_tolerance, self.global_tolerance))
            .fold(0.0, f64::max)
    }
}

/// The ω distance between two sub-trajectories (Section 5.2, "Extension for
/// trajectories"), under the chosen segment distance and tolerance mode.
///
/// Returns `f64::INFINITY` when no segment pair shares a time interval — such
/// objects can never be density-connected within the partition.
pub fn omega_distance(
    a: &SubTrajectory,
    b: &SubTrajectory,
    distance: SegmentDistance,
    mode: ToleranceMode,
) -> f64 {
    let mut best = f64::INFINITY;
    for sa in &a.segments {
        let tol_a = mode.tolerance_for(sa.actual_tolerance, a.global_tolerance);
        for sb in &b.segments {
            if !sa.interval().intersects(&sb.interval()) {
                continue;
            }
            let tol_b = mode.tolerance_for(sb.actual_tolerance, b.global_tolerance);
            let d = distance.distance(sa, sb) - tol_a - tol_b;
            if d < best {
                best = d;
            }
        }
    }
    best
}

struct SubTrajectoryQuery<'a> {
    items: &'a [SubTrajectory],
    epsilon: f64,
    distance: SegmentDistance,
    mode: ToleranceMode,
    bboxes: Vec<BoundingBox>,
    max_tolerances: Vec<f64>,
    intervals: Vec<TimeInterval>,
    /// Uniform grid over the items' tolerance-expanded bounding boxes. An
    /// item is registered in every cell its expanded box overlaps, so a range
    /// search only has to inspect the cells overlapped by the query's
    /// expanded box grown by `epsilon` — the spatial "prune a subset of
    /// segments fast" step the paper motivates Lemma 2 with, generalised to
    /// whole sub-trajectories.
    cells: std::collections::HashMap<(i64, i64), Vec<usize>>,
    cell_size: f64,
}

impl<'a> SubTrajectoryQuery<'a> {
    fn new(
        items: &'a [SubTrajectory],
        epsilon: f64,
        distance: SegmentDistance,
        mode: ToleranceMode,
    ) -> Self {
        let bboxes: Vec<BoundingBox> = items.iter().map(|s| s.bounding_box()).collect();
        let max_tolerances: Vec<f64> = items.iter().map(|s| s.max_tolerance(mode)).collect();
        let intervals = items.iter().map(|s| s.time_interval()).collect();

        // Cell side: the average expanded-box extent plus the search radius,
        // so a typical box overlaps only a handful of cells.
        let mut extent_sum = 0.0f64;
        for (bbox, tol) in bboxes.iter().zip(&max_tolerances) {
            extent_sum += (bbox.width() + bbox.height()) * 0.5 + 2.0 * tol;
        }
        let mean_extent = if items.is_empty() {
            0.0
        } else {
            extent_sum / items.len() as f64
        };
        let cell_size = (mean_extent + epsilon).max(epsilon).max(f64::EPSILON);

        let mut cells: std::collections::HashMap<(i64, i64), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, (bbox, tol)) in bboxes.iter().zip(&max_tolerances).enumerate() {
            let expanded = bbox.expanded(*tol);
            let (x0, y0) = Self::cell_of(expanded.min.x, expanded.min.y, cell_size);
            let (x1, y1) = Self::cell_of(expanded.max.x, expanded.max.y, cell_size);
            for cx in x0..=x1 {
                for cy in y0..=y1 {
                    cells.entry((cx, cy)).or_default().push(i);
                }
            }
        }

        SubTrajectoryQuery {
            items,
            epsilon,
            distance,
            mode,
            bboxes,
            max_tolerances,
            intervals,
            cells,
            cell_size,
        }
    }

    #[inline]
    fn cell_of(x: f64, y: f64, cell_size: f64) -> (i64, i64) {
        (
            (x / cell_size).floor() as i64,
            (y / cell_size).floor() as i64,
        )
    }

    /// Candidate item indices whose tolerance-expanded bounding box can lie
    /// within `epsilon` of item `idx`'s expanded bounding box.
    fn spatial_candidates(&self, idx: usize) -> Vec<usize> {
        let probe = self.bboxes[idx]
            .expanded(self.max_tolerances[idx])
            .expanded(self.epsilon);
        let (x0, y0) = Self::cell_of(probe.min.x, probe.min.y, self.cell_size);
        let (x1, y1) = Self::cell_of(probe.max.x, probe.max.y, self.cell_size);
        let mut seen = vec![false; self.items.len()];
        let mut out = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for &j in bucket {
                        if !seen[j] {
                            seen[j] = true;
                            out.push(j);
                        }
                    }
                }
            }
        }
        out
    }
}

impl RegionQuery for SubTrajectoryQuery<'_> {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let query = &self.items[idx];
        for j in self.spatial_candidates(idx) {
            if j == idx {
                out.push(j);
                continue;
            }
            // Temporal pre-filter: objects absent from each other's time range
            // cannot be neighbours.
            if !self.intervals[idx].intersects(&self.intervals[j]) {
                continue;
            }
            // Lemma 2: bounding-box pre-filter with δ_max values.
            let bound = self.epsilon + self.max_tolerances[idx] + self.max_tolerances[j];
            if self.bboxes[idx].min_distance(&self.bboxes[j]) > bound {
                continue;
            }
            // Lemma 1 / Lemma 3: exact ω computation over segment pairs.
            if omega_distance(query, &self.items[j], self.distance, self.mode) <= self.epsilon {
                out.push(j);
            }
        }
        out.sort_unstable();
        out
    }
}

/// Density-clusters the sub-trajectories of one time partition
/// (TRAJ-DBSCAN of Algorithm 2), returning clusters of object ids.
pub fn cluster_sub_trajectories(
    items: &[SubTrajectory],
    epsilon: f64,
    m: usize,
    distance: SegmentDistance,
    mode: ToleranceMode,
) -> Vec<Cluster> {
    if items.len() < m {
        return Vec::new();
    }
    let query = SubTrajectoryQuery::new(items, epsilon, distance, mode);
    let labels = dbscan(&query, m);
    labels_to_clusters(&labels)
        .into_iter()
        .map(|member_indices| {
            Cluster::new(
                member_indices
                    .into_iter()
                    .map(|i| items[i].object)
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use traj_simplify::{DouglasPeucker, DouglasPeuckerStar, Simplifier};
    use trajectory::{TrajPoint, Trajectory};

    fn straight_trajectory(x0: f64, y0: f64, dx: f64, dy: f64, len: i64) -> Trajectory {
        Trajectory::from_points(
            (0..len)
                .map(|t| TrajPoint::new(x0 + dx * t as f64, y0 + dy * t as f64, t))
                .collect(),
        )
        .unwrap()
    }

    fn sub(object: u64, traj: &Trajectory, delta: f64, window: TimeInterval) -> SubTrajectory {
        let simplified = DouglasPeucker.simplify(traj, delta);
        SubTrajectory::for_window(ObjectId(object), &simplified, window).unwrap()
    }

    #[test]
    fn omega_of_parallel_trajectories_is_their_gap_minus_tolerances() {
        let a = straight_trajectory(0.0, 0.0, 1.0, 0.0, 10);
        let b = straight_trajectory(0.0, 5.0, 1.0, 0.0, 10);
        let window = TimeInterval::new(0, 9);
        let sa = sub(1, &a, 0.5, window);
        let sb = sub(2, &b, 0.5, window);
        // Straight lines simplify losslessly: actual tolerances are zero, so
        // ω equals the spatial gap.
        let omega = omega_distance(&sa, &sb, SegmentDistance::Dll, ToleranceMode::Actual);
        assert!((omega - 5.0).abs() < 1e-9);
        // With the global tolerance the bound is looser by 2·δ.
        let omega_global = omega_distance(&sa, &sb, SegmentDistance::Dll, ToleranceMode::Global);
        assert!((omega_global - 4.0).abs() < 1e-9);
    }

    #[test]
    fn omega_is_infinite_for_temporally_disjoint_objects() {
        let a = Trajectory::from_tuples([(0.0, 0.0, 0), (5.0, 0.0, 5)]).unwrap();
        let b = Trajectory::from_tuples([(0.0, 0.0, 10), (5.0, 0.0, 15)]).unwrap();
        let sa = SubTrajectory::for_window(
            ObjectId(1),
            &DouglasPeucker.simplify(&a, 0.1),
            TimeInterval::new(0, 20),
        )
        .unwrap();
        let sb = SubTrajectory::for_window(
            ObjectId(2),
            &DouglasPeucker.simplify(&b, 0.1),
            TimeInterval::new(0, 20),
        )
        .unwrap();
        assert_eq!(
            omega_distance(&sa, &sb, SegmentDistance::Dll, ToleranceMode::Actual),
            f64::INFINITY
        );
    }

    #[test]
    fn dstar_distance_is_at_least_dll_distance() {
        // Two objects moving in opposite directions along nearby parallel
        // lines: spatially the segments nearly touch, but synchronously they
        // are only close in the middle.
        let a = straight_trajectory(0.0, 0.0, 1.0, 0.0, 11);
        let b = straight_trajectory(10.0, 1.0, -1.0, 0.0, 11);
        let window = TimeInterval::new(0, 10);
        let sa = sub(1, &a, 0.1, window);
        let sb = sub(2, &b, 0.1, window);
        let dll = omega_distance(&sa, &sb, SegmentDistance::Dll, ToleranceMode::Actual);
        let dstar = omega_distance(&sa, &sb, SegmentDistance::DStar, ToleranceMode::Actual);
        assert!(
            dstar >= dll - 1e-9,
            "D* ω ({dstar}) must be ≥ DLL ω ({dll})"
        );
    }

    #[test]
    fn for_window_selects_intersecting_segments_only() {
        // A trajectory with a sharp corner at t=10 so the simplification keeps
        // two segments: [0,10] and [10,20].
        let mut pts: Vec<TrajPoint> = (0..=10).map(|t| TrajPoint::new(t as f64, 0.0, t)).collect();
        pts.extend((11..=20).map(|t| TrajPoint::new(10.0, (t - 10) as f64, t)));
        let traj = Trajectory::from_points(pts).unwrap();
        let simplified = DouglasPeucker.simplify(&traj, 0.5);
        assert_eq!(simplified.segments().len(), 2);
        let early =
            SubTrajectory::for_window(ObjectId(1), &simplified, TimeInterval::new(0, 5)).unwrap();
        assert_eq!(early.segments.len(), 1);
        let spanning =
            SubTrajectory::for_window(ObjectId(1), &simplified, TimeInterval::new(5, 15)).unwrap();
        assert_eq!(spanning.segments.len(), 2);
        assert!(
            SubTrajectory::for_window(ObjectId(1), &simplified, TimeInterval::new(30, 40))
                .is_none()
        );
    }

    #[test]
    fn single_sample_object_gets_degenerate_segment() {
        let traj = Trajectory::from_tuples([(3.0, 3.0, 5)]).unwrap();
        let simplified = DouglasPeucker.simplify(&traj, 0.5);
        let s =
            SubTrajectory::for_window(ObjectId(1), &simplified, TimeInterval::new(0, 10)).unwrap();
        assert_eq!(s.segments.len(), 1);
        assert!(s.segments[0].segment().is_degenerate());
        assert!(
            SubTrajectory::for_window(ObjectId(1), &simplified, TimeInterval::new(6, 10)).is_none()
        );
    }

    #[test]
    fn clustering_groups_co_moving_objects() {
        // Three objects moving together, two moving together elsewhere, one loner.
        let window = TimeInterval::new(0, 19);
        let items: Vec<SubTrajectory> = vec![
            sub(1, &straight_trajectory(0.0, 0.0, 1.0, 0.0, 20), 0.5, window),
            sub(2, &straight_trajectory(0.0, 1.0, 1.0, 0.0, 20), 0.5, window),
            sub(3, &straight_trajectory(0.0, 2.0, 1.0, 0.0, 20), 0.5, window),
            sub(
                4,
                &straight_trajectory(100.0, 0.0, 0.0, 1.0, 20),
                0.5,
                window,
            ),
            sub(
                5,
                &straight_trajectory(101.0, 0.0, 0.0, 1.0, 20),
                0.5,
                window,
            ),
            sub(
                6,
                &straight_trajectory(500.0, 500.0, -1.0, 1.0, 20),
                0.5,
                window,
            ),
        ];
        let clusters =
            cluster_sub_trajectories(&items, 1.5, 2, SegmentDistance::Dll, ToleranceMode::Actual);
        assert_eq!(clusters.len(), 2);
        assert_eq!(
            clusters[0].members(),
            &[ObjectId(1), ObjectId(2), ObjectId(3)]
        );
        assert_eq!(clusters[1].members(), &[ObjectId(4), ObjectId(5)]);
    }

    #[test]
    fn clustering_respects_min_points() {
        let window = TimeInterval::new(0, 9);
        let items: Vec<SubTrajectory> = vec![
            sub(1, &straight_trajectory(0.0, 0.0, 1.0, 0.0, 10), 0.5, window),
            sub(2, &straight_trajectory(0.0, 1.0, 1.0, 0.0, 10), 0.5, window),
        ];
        assert!(cluster_sub_trajectories(
            &items,
            1.5,
            3,
            SegmentDistance::Dll,
            ToleranceMode::Actual
        )
        .is_empty());
        assert!(cluster_sub_trajectories(
            &items[..1],
            1.5,
            2,
            SegmentDistance::Dll,
            ToleranceMode::Actual
        )
        .is_empty());
    }

    /// The filter-step soundness property behind Lemmas 1 and 3: whenever the
    /// ω distance between two objects' simplified sub-trajectories exceeds e,
    /// the true synchronous distance between the *original* objects exceeds e
    /// at every shared time point.
    fn check_pruning_soundness(
        a: &Trajectory,
        b: &Trajectory,
        delta: f64,
        e: f64,
        distance: SegmentDistance,
    ) -> Result<(), proptest::test_runner::TestCaseError> {
        let (sa, sb) = match distance {
            SegmentDistance::Dll => (
                DouglasPeucker.simplify(a, delta),
                DouglasPeucker.simplify(b, delta),
            ),
            SegmentDistance::DStar => (
                DouglasPeuckerStar.simplify(a, delta),
                DouglasPeuckerStar.simplify(b, delta),
            ),
        };
        let window = a.time_interval().hull(&b.time_interval());
        let (Some(sub_a), Some(sub_b)) = (
            SubTrajectory::for_window(ObjectId(1), &sa, window),
            SubTrajectory::for_window(ObjectId(2), &sb, window),
        ) else {
            return Ok(());
        };
        let omega = omega_distance(&sub_a, &sub_b, distance, ToleranceMode::Actual);
        if omega > e {
            // Pruned: verify no shared time point has the originals within e.
            if let Some(common) = a.time_interval().intersection(&b.time_interval()) {
                for t in common.iter() {
                    let (Some(pa), Some(pb)) = (a.location_at(t), b.location_at(t)) else {
                        continue;
                    };
                    prop_assert!(
                        pa.distance(&pb) > e,
                        "pruned pair is actually within e={e} at t={t} (ω={omega})"
                    );
                }
            }
        }
        Ok(())
    }

    prop_compose! {
        fn arb_walk(seed_x: f64)(len in 4usize..30)
            (steps in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), len),
             start_y in -20.0f64..20.0)
            -> Trajectory {
            let mut x = seed_x;
            let mut y = start_y;
            let mut pts = Vec::with_capacity(steps.len());
            for (t, (dx, dy)) in steps.into_iter().enumerate() {
                x += dx;
                y += dy;
                pts.push(TrajPoint::new(x, y, t as i64));
            }
            Trajectory::from_points(pts).unwrap()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn lemma1_pruning_is_sound(a in arb_walk(0.0), b in arb_walk(5.0),
                                   delta in 0.1f64..3.0, e in 0.5f64..5.0) {
            check_pruning_soundness(&a, &b, delta, e, SegmentDistance::Dll)?;
        }

        #[test]
        fn lemma3_pruning_is_sound(a in arb_walk(0.0), b in arb_walk(5.0),
                                   delta in 0.1f64..3.0, e in 0.5f64..5.0) {
            check_pruning_soundness(&a, &b, delta, e, SegmentDistance::DStar)?;
        }

        #[test]
        fn lemma2_box_prefilter_never_prunes_a_true_neighbour(
            a in arb_walk(0.0), b in arb_walk(3.0),
            delta in 0.1f64..3.0, e in 0.5f64..5.0) {
            // If the Lemma 2 test would discard the pair, the exact ω distance
            // must also exceed e (the pre-filter is conservative).
            let sa = DouglasPeucker.simplify(&a, delta);
            let sb = DouglasPeucker.simplify(&b, delta);
            let window = a.time_interval().hull(&b.time_interval());
            if let (Some(sub_a), Some(sub_b)) = (
                SubTrajectory::for_window(ObjectId(1), &sa, window),
                SubTrajectory::for_window(ObjectId(2), &sb, window),
            ) {
                let mode = ToleranceMode::Actual;
                let bound = e + sub_a.max_tolerance(mode) + sub_b.max_tolerance(mode);
                let box_dist = sub_a.bounding_box().min_distance(&sub_b.bounding_box());
                if box_dist > bound {
                    let omega = omega_distance(&sub_a, &sub_b, SegmentDistance::Dll, mode);
                    prop_assert!(omega > e,
                        "Lemma 2 pruned a pair whose ω={omega} is within e={e}");
                }
            }
        }
    }
}
