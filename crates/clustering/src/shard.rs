//! Spatially sharded snapshot clustering with boundary-halo exchange.
//!
//! The sharded convoy driver splits the *spatial* domain into a grid of `S`
//! shards, density-clusters every shard's objects independently (the
//! embarrassingly parallel part, and in a multi-node deployment the part
//! that never leaves the worker), and then merges the shard-local clusters
//! into exactly the clusters a global DBSCAN run would have produced. The
//! exchange format between workers and the coordinator is deliberately
//! small: per tick, a shard ships its local clusters, its owned core ids,
//! and its border-object adjacency — never raw positions of other shards.
//!
//! ## Why exactness is subtle
//!
//! A naive scheme — cluster each shard's objects alone, re-cluster the
//! objects near shard edges, and union shard clusters that share a halo
//! cluster — is *not* equivalent to global DBSCAN, for two reasons:
//!
//! 1. **Core status straddles edges.** A point's core test counts its whole
//!    e-neighbourhood; a point near an edge can have too few same-shard
//!    neighbours to look core locally while being core globally. A halo
//!    restricted to points within `e` of an edge undercounts for the same
//!    reason, so a chain crossing an edge can be silently severed.
//! 2. **Border points are order-assigned.** A non-core point within `e` of
//!    cores of two different clusters belongs to whichever cluster DBSCAN
//!    seeds first (the cluster holding the smallest-index core). Shard-local
//!    runs see different candidate sets in different orders, so unioning
//!    clusters merely for *sharing* such a point merges clusters the global
//!    run keeps apart.
//!
//! The construction here fixes both:
//!
//! * Every shard clusters its **owned objects plus a ghost halo of width
//!   `2e`** (every foreign point within `2e` of the shard's rectangle).
//!   With that width, any point within `e` of the shard rectangle has its
//!   *entire* e-neighbourhood inside the shard's input, so its core test is
//!   exact — in particular for both endpoints of any core–core edge that
//!   crosses a shard boundary, which therefore always land in one common
//!   local cluster of at least one shard.
//! * The merge unions shard-local clusters that share an object which is
//!   **core in the global sense** (reported by the object's owning shard,
//!   where the test is exact). Locally-core implies globally-core (a local
//!   neighbourhood is a subset of the global one), so shard-local clusters
//!   never connect two global components; the union-find therefore
//!   reproduces the global core partition exactly.
//! * Border points are discarded from the local clusters and re-assigned by
//!   the merge using each owner's exact border adjacency: a border object
//!   joins the merged cluster whose smallest core id is smallest — precisely
//!   the cluster the sequential scan (which visits snapshot entries in
//!   object-id order) would have seeded first.
//!
//! The result of [`merge_shard_clusters`] is equal to
//! [`snapshot_clusters`](crate::snapshot_clusters) as a `Vec<Cluster>` —
//! same clusters, same members, same order — which is what lets the sharded
//! convoy engine claim bit-identical output to sequential CMC.

use crate::cluster::Cluster;
use crate::dbscan::{dbscan_with_core_flags_into, labels_to_clusters, DbscanScratch};
use crate::grid::GridIndex;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use trajectory::geometry::{BoundingBox, Point};
use trajectory::{ObjectId, Snapshot};

/// A fixed rectangular partition of the spatial domain into `cols × rows`
/// shards.
///
/// Shard assignment is a pure function of position (clamped to the grid, so
/// every point — even one outside `bounds` — is owned by exactly one shard),
/// which makes the partition stable across the ticks of a window: an object
/// migrates between shards simply by moving.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardGrid {
    bounds: BoundingBox,
    cols: usize,
    rows: usize,
    cell_width: f64,
    cell_height: f64,
}

impl ShardGrid {
    /// Partitions `bounds` into exactly `shards` rectangles (clamped to at
    /// least one). The factorisation is as square as the count allows, with
    /// the longer spatial axis receiving the larger factor; a prime count
    /// degenerates to parallel strips, which remains exact (the merge is
    /// partition-agnostic) if less balanced.
    pub fn new(bounds: BoundingBox, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut small = (shards as f64).sqrt().floor() as usize;
        small = small.clamp(1, shards);
        while !shards.is_multiple_of(small) {
            small -= 1;
        }
        let large = shards / small;
        let (cols, rows) = if bounds.width() >= bounds.height() {
            (large, small)
        } else {
            (small, large)
        };
        ShardGrid {
            bounds,
            cols,
            rows,
            cell_width: bounds.width() / cols as f64,
            cell_height: bounds.height() / rows as f64,
        }
    }

    /// Number of shards in the grid.
    pub fn num_shards(&self) -> usize {
        self.cols * self.rows
    }

    /// Grid shape as `(cols, rows)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The bounds the grid partitions.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    #[inline]
    fn axis_cell(v: f64, min: f64, step: f64, n: usize) -> usize {
        let f = (v - min) / step;
        if f.is_finite() && f > 0.0 {
            (f as usize).min(n - 1)
        } else {
            // NaN coordinates, degenerate (zero-extent) axes and
            // out-of-bounds-low points all clamp to the first cell; the
            // merge is exact for any assignment, so clamping only affects
            // load balance.
            0
        }
    }

    /// The shard owning `p`. Total: every point (including NaN or
    /// out-of-bounds coordinates) is assigned to exactly one shard.
    pub fn shard_of(&self, p: &Point) -> usize {
        let col = Self::axis_cell(p.x, self.bounds.min.x, self.cell_width, self.cols);
        let row = Self::axis_cell(p.y, self.bounds.min.y, self.cell_height, self.rows);
        row * self.cols + col
    }

    /// The rectangle of shard `shard`. The outermost cells extend to the
    /// grid bounds exactly, so the regions tile `bounds` without float
    /// drift at the outer border.
    pub fn region(&self, shard: usize) -> BoundingBox {
        assert!(shard < self.num_shards(), "shard {shard} out of range");
        let col = shard % self.cols;
        let row = shard / self.cols;
        let min_x = self.bounds.min.x + col as f64 * self.cell_width;
        let min_y = self.bounds.min.y + row as f64 * self.cell_height;
        let max_x = if col + 1 == self.cols {
            self.bounds.max.x
        } else {
            self.bounds.min.x + (col + 1) as f64 * self.cell_width
        };
        let max_y = if row + 1 == self.rows {
            self.bounds.max.y
        } else {
            self.bounds.min.y + (row + 1) as f64 * self.cell_height
        };
        BoundingBox::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
    }

    /// Distance from `p` to the rectangle of `shard` (zero inside).
    pub fn distance_to(&self, shard: usize, p: &Point) -> f64 {
        self.region(shard).min_distance_to_point(p)
    }

    /// Distance from `p` to the nearest *internal* shard edge (the grid
    /// lines separating shards). Infinite for a single-shard grid: with no
    /// internal edges nothing is ever a boundary object.
    ///
    /// For any point inside the bounds this equals the distance to the
    /// nearest *foreign* shard rectangle — the predicate
    /// [`shard_clusters`] uses (against `2e`) to build its ghost halo — so
    /// `boundary_distance(p) <= e` is exactly "p is a ghost candidate of
    /// some neighbouring shard at margin e" (property-tested below).
    pub fn boundary_distance(&self, p: &Point) -> f64 {
        let mut best = f64::INFINITY;
        let col = Self::axis_cell(p.x, self.bounds.min.x, self.cell_width, self.cols);
        let row = Self::axis_cell(p.y, self.bounds.min.y, self.cell_height, self.rows);
        if col > 0 {
            best = best.min((p.x - (self.bounds.min.x + col as f64 * self.cell_width)).abs());
        }
        if col + 1 < self.cols {
            best = best.min(((self.bounds.min.x + (col + 1) as f64 * self.cell_width) - p.x).abs());
        }
        if row > 0 {
            best = best.min((p.y - (self.bounds.min.y + row as f64 * self.cell_height)).abs());
        }
        if row + 1 < self.rows {
            best =
                best.min(((self.bounds.min.y + (row + 1) as f64 * self.cell_height) - p.y).abs());
        }
        best
    }

    /// The objects of `snapshot` within `margin` of an internal shard edge —
    /// the *boundary objects* whose clusters can straddle shards and whose
    /// halo therefore has to be exchanged before the merge.
    pub fn boundary_objects(&self, snapshot: &Snapshot, margin: f64) -> Vec<ObjectId> {
        snapshot
            .entries
            .iter()
            .filter(|entry| self.boundary_distance(&entry.position) <= margin)
            .map(|entry| entry.id)
            .collect()
    }

    /// Additive slack absorbing the float rounding of region boundaries, so
    /// a ghost sitting arithmetically *exactly* on the halo rim is never
    /// excluded by a last-ulp rounding error. Scales with the coordinate
    /// magnitude of the grid; including extra ghosts is always safe (the
    /// merge proof only needs the halo to be a superset).
    fn halo_slack(&self) -> f64 {
        let mag = self
            .bounds
            .min
            .x
            .abs()
            .max(self.bounds.min.y.abs())
            .max(self.bounds.max.x.abs())
            .max(self.bounds.max.y.abs())
            .max(1.0);
        mag * f64::EPSILON * 4.0
    }
}

/// One shard's contribution to a tick: the output of the local clustering
/// pass, and everything the coordinator needs to merge exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardClusters {
    /// The shard that produced this partial result.
    pub shard: usize,
    /// Local DBSCAN clusters over the shard's input (owned objects plus the
    /// `2e` ghost halo). Ghost members are retained — they are what stitches
    /// a cluster straddling the shard edge to its other half.
    pub clusters: Vec<Cluster>,
    /// Owned objects that are core in the *global* sense (their whole
    /// e-neighbourhood is inside the shard input, so the local test is
    /// exact).
    pub cores: Vec<ObjectId>,
    /// Owned non-core objects within `e` of at least one core, paired with
    /// those core neighbours. The merge re-assigns border objects from this
    /// adjacency instead of trusting order-dependent local labels.
    pub border_links: Vec<(ObjectId, Vec<ObjectId>)>,
}

/// Reusable working state for [`shard_clusters_with`]: the shard-local
/// grid index, the DBSCAN scratch and the input filtering buffers. One
/// scratch per worker thread, reused across every tick (and every shard the
/// worker owns), keeps the per-tick shard pass off the allocator for
/// everything except the [`ShardClusters`] exchange payload itself.
#[derive(Debug, Clone, Default)]
pub struct ShardScratch {
    ids: Vec<ObjectId>,
    owned: Vec<bool>,
    near: Vec<bool>,
    core_flag: Vec<bool>,
    neigh: Vec<usize>,
    grid: GridIndex,
    dbscan: DbscanScratch,
}

impl ShardScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the shard-local pass for one tick: filters the snapshot to the
/// shard's owned objects plus its ghost halo, density-clusters that input,
/// and computes the exact core set and border adjacency of the owned
/// objects.
///
/// This is the per-worker unit of the sharded convoy engine; it only reads
/// the snapshot, so workers can run it concurrently for disjoint shards.
/// One-shot convenience over [`shard_clusters_with`] — per-tick workers
/// should hold a [`ShardScratch`] and reuse it instead.
pub fn shard_clusters(
    snapshot: &Snapshot,
    grid: &ShardGrid,
    shard: usize,
    e: f64,
    m: usize,
) -> ShardClusters {
    shard_clusters_with(&mut ShardScratch::new(), snapshot, grid, shard, e, m)
}

/// [`shard_clusters`] driving caller-owned scratch buffers: identical
/// output, but the grid index, DBSCAN state and filter buffers are reused
/// across calls instead of freshly allocated. Only the returned
/// [`ShardClusters`] — the worker→coordinator exchange payload — still
/// allocates.
pub fn shard_clusters_with(
    scratch: &mut ShardScratch,
    snapshot: &Snapshot,
    grid: &ShardGrid,
    shard: usize,
    e: f64,
    m: usize,
) -> ShardClusters {
    let slack = grid.halo_slack();
    let halo = 2.0 * e.max(0.0) + slack;
    let near_margin = e.max(0.0) + slack;
    let region = grid.region(shard);
    let ShardScratch {
        ids,
        owned,
        near,
        core_flag,
        neigh,
        grid: index,
        dbscan,
    } = scratch;
    ids.clear();
    owned.clear();
    near.clear();
    index.rebuild_with(e, |points| {
        for entry in &snapshot.entries {
            let is_owner = grid.shard_of(&entry.position) == shard;
            let dist = if is_owner {
                0.0
            } else {
                region.min_distance_to_point(&entry.position)
            };
            if is_owner || dist <= halo {
                ids.push(entry.id);
                points.push(entry.position);
                owned.push(is_owner);
                near.push(dist <= near_margin);
            }
        }
    });

    dbscan_with_core_flags_into(index, m, dbscan);
    let clusters: Vec<Cluster> = labels_to_clusters(dbscan.labels())
        .into_iter()
        .map(|members| members.into_iter().map(|i| ids[i]).collect())
        .collect();

    // Exact core flags: a local flag is trustworthy only for points within
    // `e` of the region (their whole neighbourhoods are inside the input) —
    // and the only flags consulted below are those of owned points and of
    // the within-`e` neighbours of owned border points, all of which are
    // `near`. Outer-ring ghosts are masked to `false`.
    core_flag.clear();
    core_flag.extend(
        dbscan
            .core_flags()
            .iter()
            .enumerate()
            .map(|(i, &local)| near[i] && local),
    );

    let mut cores = Vec::new();
    let mut border_links = Vec::new();
    for i in 0..ids.len() {
        if !owned[i] {
            continue;
        }
        if core_flag[i] {
            cores.push(ids[i]);
        } else {
            index.range_query_into(&index.points()[i], neigh);
            let links: Vec<ObjectId> = neigh
                .iter()
                .filter(|&&j| core_flag[j])
                .map(|&j| ids[j])
                .collect();
            if !links.is_empty() {
                border_links.push((ids[i], links));
            }
        }
    }

    ShardClusters {
        shard,
        clusters,
        cores,
        border_links,
    }
}

/// A minimal union-find over cluster indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Merges the per-shard partial results of one tick into the clusters a
/// global DBSCAN run over the whole snapshot would have produced — same
/// member sets, same cluster order.
///
/// The merge unions local clusters that share a globally-core object,
/// collects each component's cores, re-assigns border objects to the
/// component whose smallest core id is smallest (the component the
/// sequential id-ordered scan seeds first), and emits the components in
/// ascending order of that smallest core id (the sequential cluster-label
/// order).
pub fn merge_shard_clusters<'a, I>(partials: I) -> Vec<Cluster>
where
    I: IntoIterator<Item = &'a ShardClusters>,
{
    let partials: Vec<&ShardClusters> = partials.into_iter().collect();

    let core_set: HashSet<ObjectId> = partials
        .iter()
        .flat_map(|p| p.cores.iter().copied())
        .collect();
    if core_set.is_empty() {
        return Vec::new();
    }

    let all_clusters: Vec<&Cluster> = partials.iter().flat_map(|p| p.clusters.iter()).collect();
    let mut uf = UnionFind::new(all_clusters.len());
    // First local cluster observed to contain each core; later sightings
    // union into it.
    let mut rep: HashMap<ObjectId, usize> = HashMap::new();
    for (ci, cluster) in all_clusters.iter().enumerate() {
        for id in cluster.iter() {
            if core_set.contains(&id) {
                match rep.entry(id) {
                    Entry::Occupied(existing) => uf.union(ci, *existing.get()),
                    Entry::Vacant(slot) => {
                        slot.insert(ci);
                    }
                }
            }
        }
    }

    // Component root -> (smallest core id, members so far).
    let mut components: HashMap<usize, (ObjectId, Vec<ObjectId>)> = HashMap::new();
    for (&id, &ci) in &rep {
        let root = uf.find(ci);
        let entry = components.entry(root).or_insert((id, Vec::new()));
        entry.0 = entry.0.min(id);
        entry.1.push(id);
    }

    // Border objects join the candidate component seeded earliest by the
    // sequential scan: the one with the smallest minimum core id.
    for partial in &partials {
        for (border, links) in &partial.border_links {
            let target = links
                .iter()
                .filter_map(|core| rep.get(core).copied())
                .map(|ci| uf.find(ci))
                .min_by_key(|root| components[root].0);
            debug_assert!(target.is_some(), "border object linked to unknown core");
            if let Some(root) = target {
                components
                    .get_mut(&root)
                    // lint: allow(no-unwrap-in-lib) — every union-find root was inserted into `components` above
                    .expect("component exists")
                    .1
                    .push(*border);
            }
        }
    }

    let mut merged: Vec<(ObjectId, Vec<ObjectId>)> = components.into_values().collect();
    merged.sort_by_key(|(min_core, _)| *min_core);
    merged
        .into_iter()
        .map(|(_, members)| Cluster::new(members))
        .collect()
}

/// Convenience single-call form: shards the snapshot's own bounding box into
/// `shards` cells, runs every shard's local pass, and merges. Equal to
/// [`snapshot_clusters`](crate::snapshot_clusters) for every input — the
/// equality the convoy shard-equivalence harness locks in.
pub fn sharded_snapshot_clusters(
    snapshot: &Snapshot,
    e: f64,
    m: usize,
    shards: usize,
) -> Vec<Cluster> {
    if snapshot.len() < m {
        return Vec::new();
    }
    let Some(bounds) = BoundingBox::from_points(snapshot.entries.iter().map(|e| e.position)) else {
        return Vec::new();
    };
    let grid = ShardGrid::new(bounds, shards);
    let partials: Vec<ShardClusters> = (0..grid.num_shards())
        .map(|s| shard_clusters(snapshot, &grid, s, e, m))
        .collect();
    merge_shard_clusters(&partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::snapshot_clusters;
    use proptest::prelude::*;
    use trajectory::database::SnapshotEntry;

    /// Builds a snapshot (id-ordered, like the database produces) from raw
    /// positions; object ids follow the input order.
    fn snapshot_of(positions: &[(f64, f64)]) -> Snapshot {
        Snapshot {
            time: 0,
            entries: positions
                .iter()
                .enumerate()
                .map(|(i, (x, y))| SnapshotEntry {
                    id: ObjectId(i as u64),
                    position: Point::new(*x, *y),
                    interpolated: false,
                })
                .collect(),
        }
    }

    /// Asserts the sharded pipeline reproduces the sequential clustering
    /// exactly (same clusters, same order) for every shard count in `counts`.
    fn assert_exact(positions: &[(f64, f64)], e: f64, m: usize, counts: &[usize]) {
        let snap = snapshot_of(positions);
        let reference = snapshot_clusters(&snap, e, m);
        for &shards in counts {
            let sharded = sharded_snapshot_clusters(&snap, e, m, shards);
            assert_eq!(
                sharded, reference,
                "sharded ({shards} shards) diverged from sequential (e={e}, m={m})"
            );
        }
    }

    #[test]
    fn grid_partitions_every_point_exactly_once() {
        let bounds = BoundingBox::new(Point::new(-10.0, -5.0), Point::new(10.0, 5.0));
        let grid = ShardGrid::new(bounds, 6);
        assert_eq!(grid.num_shards(), 6);
        let (cols, rows) = grid.shape();
        assert_eq!(cols * rows, 6);
        assert!(cols >= rows, "wider-than-tall bounds get more columns");
        for i in 0..40 {
            for j in 0..20 {
                let p = Point::new(-10.0 + i as f64 * 0.5, -5.0 + j as f64 * 0.5);
                let s = grid.shard_of(&p);
                assert!(s < grid.num_shards());
                assert_eq!(
                    grid.distance_to(s, &p),
                    0.0,
                    "owner region must contain the point"
                );
            }
        }
    }

    #[test]
    fn prime_shard_count_degenerates_to_strips() {
        let bounds = BoundingBox::new(Point::new(0.0, 0.0), Point::new(7.0, 1.0));
        let grid = ShardGrid::new(bounds, 7);
        assert_eq!(grid.shape(), (7, 1));
        // Region x-extents tile [0, 7].
        for s in 0..7 {
            let r = grid.region(s);
            assert!((r.width() - 1.0).abs() < 1e-12);
        }
        assert_eq!(grid.region(6).max.x, 7.0, "last cell reaches the bound");
    }

    #[test]
    fn out_of_bounds_and_nan_points_clamp_to_edge_shards() {
        let bounds = BoundingBox::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let grid = ShardGrid::new(bounds, 4);
        assert_eq!(grid.shard_of(&Point::new(-100.0, -100.0)), 0);
        let far = grid.shard_of(&Point::new(100.0, 100.0));
        assert_eq!(far, grid.num_shards() - 1);
        // NaN clamps that axis to cell 0; the finite axis still places the
        // point (col 0, row 1 of the 2x2 grid).
        assert_eq!(grid.shard_of(&Point::new(f64::NAN, 2.0)), 2);
        // Degenerate bounds: a single point world still owns everything.
        let degenerate = ShardGrid::new(BoundingBox::from_point(Point::new(1.0, 1.0)), 5);
        assert_eq!(degenerate.shard_of(&Point::new(1.0, 1.0)), 0);
    }

    #[test]
    fn boundary_distance_and_objects_detect_the_halo() {
        // 2 columns over [0, 8]: one internal edge at x = 4.
        let bounds = BoundingBox::new(Point::new(0.0, 0.0), Point::new(8.0, 1.0));
        let grid = ShardGrid::new(bounds, 2);
        assert_eq!(grid.boundary_distance(&Point::new(3.0, 0.5)), 1.0);
        assert_eq!(grid.boundary_distance(&Point::new(4.0, 0.5)), 0.0);
        assert_eq!(grid.boundary_distance(&Point::new(6.5, 0.5)), 2.5);
        // A single shard has no internal edges.
        let solo = ShardGrid::new(bounds, 1);
        assert_eq!(solo.boundary_distance(&Point::new(4.0, 0.5)), f64::INFINITY);

        // Objects exactly `e` from the edge are boundary objects (inclusive).
        let snap = snapshot_of(&[(3.0, 0.5), (4.0, 0.5), (5.0, 0.5), (7.9, 0.5)]);
        let boundary = grid.boundary_objects(&snap, 1.0);
        assert_eq!(boundary, vec![ObjectId(0), ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn cluster_exactly_e_from_the_shard_edge_round_trips() {
        // 2 columns over [0, 8] (edge at x = 4); a chain whose rightmost
        // point sits exactly `e` away from the edge on the left side, with
        // its continuation exactly on and beyond the edge. Distances are
        // whole numbers so the <= comparisons are arithmetically exact.
        let positions = [
            (0.0, 0.0), // pins bounds.min
            (2.0, 0.0),
            (3.0, 0.0), // exactly e = 1 from the edge
            (4.0, 0.0), // exactly on the edge (owned by the right shard)
            (5.0, 0.0),
            (8.0, 0.0), // pins bounds.max
        ];
        assert_exact(&positions, 1.0, 2, &[2, 4, 8]);
        // And the merged chain really is one whole cluster (the four chained
        // points; the two pins are isolated noise), nothing dropped.
        let merged = sharded_snapshot_clusters(&snapshot_of(&positions), 1.0, 2, 2);
        assert_eq!(merged.len(), 1);
        assert_eq!(
            merged[0].members(),
            &[ObjectId(1), ObjectId(2), ObjectId(3), ObjectId(4)]
        );
    }

    #[test]
    fn shards_narrower_than_epsilon_round_trip() {
        // 16 shards over a span of 10 with e = 2.5: every shard rectangle is
        // narrower than e, so halos span several shards in each direction.
        let positions: Vec<(f64, f64)> = (0..20).map(|i| (i as f64 * 0.5, 0.0)).collect();
        assert_exact(&positions, 2.5, 3, &[16, 32]);
        let merged = sharded_snapshot_clusters(&snapshot_of(&positions), 2.5, 3, 16);
        assert_eq!(merged.len(), 1, "one chain, never split by narrow shards");
        assert_eq!(merged[0].len(), 20);
    }

    #[test]
    fn empty_shards_neither_drop_nor_duplicate_clusters() {
        // All mass in one corner of a 3×3 grid: eight shards own nothing.
        let positions = [
            (0.0, 0.0),
            (0.5, 0.0),
            (1.0, 0.5),
            (30.0, 30.0), // pins the far corner; isolated noise
        ];
        let snap = snapshot_of(&positions);
        let grid = ShardGrid::new(
            BoundingBox::from_points(snap.entries.iter().map(|e| e.position)).unwrap(),
            9,
        );
        let partials: Vec<ShardClusters> = (0..9)
            .map(|s| shard_clusters(&snap, &grid, s, 1.0, 2))
            .collect();
        assert!(
            partials.iter().filter(|p| p.cores.is_empty()).count() >= 7,
            "most shards are empty of cores"
        );
        let merged = merge_shard_clusters(&partials);
        assert_eq!(merged, snapshot_clusters(&snap, 1.0, 2));
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn contested_border_object_is_assigned_like_the_sequential_scan() {
        // Two dense groups in different shards with one non-core point
        // equidistant (within e) from cores of both: sequential DBSCAN gives
        // it to the cluster seeded first (smallest core id). The sharded
        // merge must pick the same side, not duplicate or drop it.
        let positions = [
            (0.0, 0.0),
            (0.1, 0.0),
            (0.2, 0.0),
            (0.3, 0.0), // group A (ids 0-3)
            (4.3, 0.0),
            (4.4, 0.0),
            (4.5, 0.0),
            (4.6, 0.0), // group B (ids 4-7)
            (2.3, 0.0), // contested border (id 8): exactly e from a core of
                        // each group, itself non-core (3 neighbours < m)
        ];
        let snap = snapshot_of(&positions);
        let reference = snapshot_clusters(&snap, 2.0, 4);
        assert_eq!(reference.len(), 2);
        let holder: Vec<bool> = reference.iter().map(|c| c.contains(ObjectId(8))).collect();
        assert_eq!(holder, vec![true, false], "sequential gives it to group A");
        assert_exact(&positions, 2.0, 4, &[2, 3, 9]);
    }

    #[test]
    fn chain_straddling_three_narrow_strips_stays_whole() {
        // A tight chain crossing multiple internal edges; ids deliberately
        // reversed relative to x so cluster order depends on ids, not space.
        let positions: Vec<(f64, f64)> = (0..12).rev().map(|i| (i as f64, 0.0)).collect();
        assert_exact(&positions, 1.0, 2, &[3, 4, 6, 12]);
    }

    #[test]
    fn fewer_objects_than_m_yield_no_clusters() {
        assert!(
            sharded_snapshot_clusters(&snapshot_of(&[(0.0, 0.0), (0.1, 0.0)]), 1.0, 3, 4)
                .is_empty()
        );
        assert!(sharded_snapshot_clusters(&snapshot_of(&[]), 1.0, 2, 4).is_empty());
    }

    #[test]
    fn nan_positions_stay_noise_in_both_pipelines() {
        let positions = [(0.0, 0.0), (0.5, 0.0), (f64::NAN, 0.0), (1.0, 0.0)];
        assert_exact(&positions, 1.0, 2, &[1, 2, 4]);
    }

    #[test]
    fn single_shard_is_plain_sequential_clustering() {
        let positions = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (50.0, 50.0)];
        assert_exact(&positions, 1.5, 2, &[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn sharded_clustering_equals_sequential_on_random_snapshots(
            coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 1..70),
            e in 0.4f64..6.0,
            m in 2usize..5,
            shards in 2usize..12,
        ) {
            let snap = snapshot_of(&coords);
            let reference = snapshot_clusters(&snap, e, m);
            let sharded = sharded_snapshot_clusters(&snap, e, m, shards);
            prop_assert_eq!(sharded, reference);
        }

        #[test]
        fn boundary_distance_equals_nearest_foreign_shard_distance(
            coords in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..40),
            shards in 2usize..13,
        ) {
            // Locks the diagnostic halo predicate (distance to internal
            // edges) to the production one (distance to foreign shard
            // rectangles in `shard_clusters`): they must agree for every
            // in-bounds point, so they cannot silently drift apart.
            let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
            let bounds = BoundingBox::from_points(pts.iter().copied()).unwrap();
            let grid = ShardGrid::new(bounds, shards);
            for p in &pts {
                let own = grid.shard_of(p);
                let nearest_foreign = (0..grid.num_shards())
                    .filter(|&s| s != own)
                    .map(|s| grid.distance_to(s, p))
                    .fold(f64::INFINITY, f64::min);
                prop_assert_eq!(grid.boundary_distance(p), nearest_foreign);
            }
        }

        #[test]
        fn dense_boundary_hugging_snapshots_round_trip(
            offsets in proptest::collection::vec(-1.0f64..1.0, 4..40),
            shards in 2usize..9,
        ) {
            // Points concentrated around what will become internal shard
            // edges: x positions hug multiples of span/shards.
            let n = offsets.len();
            let span = 10.0;
            let coords: Vec<(f64, f64)> = offsets
                .iter()
                .enumerate()
                .map(|(i, off)| {
                    let edge = span * ((i % shards) as f64) / shards as f64;
                    (edge + off * 0.6, (i / shards) as f64 * 0.4)
                })
                .chain([(0.0, 0.0), (span, 2.0)]) // pin the bbox
                .collect();
            prop_assert!(coords.len() == n + 2);
            let snap = snapshot_of(&coords);
            let reference = snapshot_clusters(&snap, 0.7, 3);
            let sharded = sharded_snapshot_clusters(&snap, 0.7, 3, shards);
            prop_assert_eq!(sharded, reference);
        }
    }
}
