//! Bit-exactness suite for the batched structure-of-arrays kernel path.
//!
//! The production [`GridIndex`] answers every e-range query through
//! `kernel::scan_soa` — fixed-width lanes, mask-then-emit. This suite pins
//! that path, hit-for-hit and order-for-order, against **two** frozen
//! scalar references:
//!
//! * [`reference::HashMapGrid`] — the original per-cell `HashMap` grid
//!   (the order every engine-equivalence suite anchors to), and
//! * [`aos::AosGridIndex`] — the pre-SoA CSR grid with the scalar
//!   array-of-structs bucket scan (isolates the layout + kernel change
//!   from the CSR restructuring that came before it).
//!
//! The fixtures are chosen adversarially for a lane-based kernel: NaN and
//! ±∞ coordinates, thousands of duplicate points packed into a single cell
//! (every lane of every batch a hit), points at *exactly* distance `e`
//! (closed-ball inclusivity in every lane slot), and extent sizes covering
//! every remainder class `n mod LANE_WIDTH` (the scalar tail).

use proptest::prelude::*;
use traj_cluster::aos::AosGridIndex;
use traj_cluster::dbscan::RegionQuery;
use traj_cluster::kernel::LANE_WIDTH;
use traj_cluster::reference::HashMapGrid;
use traj_cluster::{dbscan, GridIndex};
use trajectory::geometry::Point;

/// Asserts that the batched grid reports exactly the hits and order of both
/// frozen references, for a standalone range query at every point and for
/// the indexed-point `neighbors_into` fast path.
fn assert_all_paths_agree(pts: &[Point], e: f64) {
    let soa = GridIndex::build(pts.to_vec(), e);
    let aos = AosGridIndex::build(pts.to_vec(), e);
    let hashmap = HashMapGrid::build(pts.to_vec(), e);

    let mut soa_buf = Vec::new();
    let mut aos_buf = Vec::new();
    for (i, p) in pts.iter().enumerate() {
        let expected = hashmap.range_query(p);

        soa.range_query_into(p, &mut soa_buf);
        assert_eq!(
            soa_buf, expected,
            "SoA range_query diverged from HashMap reference at point {i}"
        );
        aos.range_query_into(p, &mut aos_buf);
        assert_eq!(
            soa_buf, aos_buf,
            "SoA range_query diverged from frozen AoS baseline at point {i}"
        );

        soa.neighbors_into(i, &mut soa_buf);
        assert_eq!(
            soa_buf, expected,
            "SoA neighbors_into diverged from HashMap reference at point {i}"
        );
        aos.neighbors_into(i, &mut aos_buf);
        assert_eq!(
            soa_buf, aos_buf,
            "SoA neighbors_into diverged from frozen AoS baseline at point {i}"
        );
    }
}

#[test]
fn non_finite_coordinates_agree_with_both_references() {
    // NaN cells hash to cell 0, ±∞ clamps to the world edge; none of them
    // may ever appear in a neighbourhood, and their presence must not
    // disturb the hits of finite points sharing their (clamped) cells.
    let pts = vec![
        Point::new(0.0, 0.0),
        Point::new(f64::NAN, 0.0),
        Point::new(0.5, f64::NAN),
        Point::new(f64::INFINITY, f64::INFINITY),
        Point::new(f64::NEG_INFINITY, 2.0),
        Point::new(0.4, 0.3),
        Point::new(f64::NAN, f64::NAN),
        Point::new(-0.2, 0.1),
        Point::new(1e308, -1e308),
    ];
    assert_all_paths_agree(&pts, 1.0);
}

#[test]
fn thousands_of_duplicates_in_one_cell_agree_with_both_references() {
    // ~4096 coincident points: one giant bucket, hundreds of completely
    // full batches, every lane a hit — the mask drain must reproduce the
    // scalar emit order (strictly ascending point index) exactly.
    let mut pts = vec![Point::new(2.5, 2.5); 4096];
    // A few satellites in the 3×3 halo so the merged-extent path also runs.
    pts.push(Point::new(3.2, 2.5));
    pts.push(Point::new(2.5, 1.8));
    pts.push(Point::new(-50.0, -50.0));
    assert_all_paths_agree(&pts, 1.0);

    let labels_soa = dbscan(&GridIndex::build(pts.clone(), 1.0), 3);
    let labels_aos = dbscan(&AosGridIndex::build(pts.clone(), 1.0), 3);
    assert_eq!(labels_soa, labels_aos, "DBSCAN labels diverged");
}

#[test]
fn points_at_exactly_distance_e_agree_in_every_lane_slot() {
    // A 3-4-5 triangle puts neighbours at exactly distance 5 with an
    // exactly representable squared distance (25 == eps_sq bit-for-bit).
    // Rotating the boundary point through every slot of a lane batch
    // checks the closed-ball comparison in each lane position.
    for slot in 0..LANE_WIDTH {
        let mut pts = vec![Point::new(0.0, 0.0)];
        for i in 0..LANE_WIDTH + 3 {
            // Filler co-located with the boundary cell so the bucket is
            // bigger than one batch; only `slot` sits exactly on the rim.
            let off = if i == slot {
                0.0
            } else {
                0.25 + i as f64 * 0.01
            };
            pts.push(Point::new(3.0 - off, 4.0));
        }
        assert_all_paths_agree(&pts, 5.0);
        // The exact-rim point really is a hit of the centre point.
        let grid = GridIndex::build(pts.clone(), 5.0);
        let mut out = Vec::new();
        grid.range_query_into(&pts[0], &mut out);
        assert!(
            out.contains(&(slot + 1)),
            "exact-distance-e point missed in lane slot {slot}"
        );
    }
}

#[test]
fn every_remainder_class_mod_lane_width_agrees() {
    // Bucket sizes congruent to 1..LANE_WIDTH-1 (and full multiples) drive
    // every scalar-tail length through the grid path: n points in one cell
    // plus a probe from an adjacent cell.
    for extra in 0..=LANE_WIDTH {
        for batches in 0..3usize {
            let n = batches * LANE_WIDTH + extra;
            let mut pts: Vec<Point> = (0..n)
                .map(|i| Point::new(1.0 + (i as f64) * 1e-6, 1.0))
                .collect();
            pts.push(Point::new(-0.4, 1.0)); // neighbouring-cell probe
            if pts.len() < 2 {
                continue;
            }
            assert_all_paths_agree(&pts, 2.0);
        }
    }
}

#[test]
fn grid_rebuild_reuse_keeps_the_kernel_path_exact() {
    // The radix sort and the SoA columns are all reused scratch; a rebuild
    // over a completely different world must leave no stale hits behind.
    let mut grid = GridIndex::build(vec![Point::new(9.0, 9.0); 100], 1.0);
    let pts: Vec<Point> = (0..257)
        .map(|i| Point::new((i % 17) as f64 * 0.7, (i / 17) as f64 * 0.7))
        .collect();
    grid.rebuild(1.0, pts.iter().copied());
    let hashmap = HashMapGrid::build(pts.clone(), 1.0);
    let mut buf = Vec::new();
    for (i, p) in pts.iter().enumerate() {
        grid.neighbors_into(i, &mut buf);
        assert_eq!(buf, hashmap.range_query(p), "stale state at point {i}");
    }
}

proptest! {
    #[test]
    fn random_worlds_agree_with_both_references(
        coords in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 1..120),
        e in 0.3f64..5.0,
    ) {
        let pts: Vec<Point> = coords.iter().map(|(x, y)| Point::new(*x, *y)).collect();
        assert_all_paths_agree(&pts, e);
    }

    #[test]
    fn clustered_worlds_with_dense_cells_agree(
        anchors in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..6),
        per_cell in 1usize..40,
        e in 0.5f64..4.0,
    ) {
        // Duplicate-heavy anchors produce the multi-batch buckets and
        // merged column extents the kernel cares about.
        let mut pts = Vec::new();
        for (ax, ay) in &anchors {
            for i in 0..per_cell {
                let nudge = (i % 7) as f64 * 1e-3;
                pts.push(Point::new(ax + nudge, ay - nudge));
            }
        }
        assert_all_paths_agree(&pts, e);
        let labels_soa = dbscan(&GridIndex::build(pts.clone(), e), 3);
        let labels_aos = dbscan(&AosGridIndex::build(pts.clone(), e), 3);
        prop_assert_eq!(labels_soa, labels_aos);
    }
}
