//! Allocation regression harness for the snapshot-clustering hot path.
//!
//! The CSR grid + scratch-reuse rewrite promises that a *warmed*
//! [`SnapshotClusterer`] — one whose buffers have grown to the working-set
//! fixpoint — performs **zero heap allocations** per
//! [`SnapshotClusterer::cluster_into`] call. This test installs a counting
//! global allocator and asserts exactly that; any future change that
//! reintroduces per-tick allocation (a fresh `Vec` per neighbourhood query,
//! a rebuilt hash map, an allocating sort) fails it immediately.
//!
//! The counting allocator is process-global, which is why this test lives in
//! its own integration-test binary: the `#[global_allocator]` would
//! otherwise count every other test's allocations too.

// The counting allocator is the one place in the workspace that needs
// `unsafe`: implementing `GlobalAlloc` requires it by definition. The
// workspace-level `unsafe_code = "deny"` is relaxed here only.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use traj_cluster::{snapshot_clusters, SnapshotClusterer};
use trajectory::database::SnapshotEntry;
use trajectory::geometry::Point;
use trajectory::{ObjectId, Snapshot};

/// Forwards to the system allocator, counting every allocation call
/// (`alloc`, `realloc` growth included — a `Vec` growing its capacity is an
/// allocation the steady state must not perform).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counter is process-global but the test harness runs tests on
/// parallel threads; every test takes this lock so no other test's
/// allocations leak into a measured window.
static SERIAL: Mutex<()> = Mutex::new(());

/// Deterministic xorshift64* stream, so the snapshots are reproducible
/// without pulling a RNG dependency into the measured binary.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn coord(&mut self) -> f64 {
        (self.next() % 10_000) as f64 * 0.01
    }
}

/// A "tick": `n` objects scattered over a 100×100 world, id-ordered like
/// database snapshots are.
fn snapshot(rng: &mut XorShift, time: i64, n: usize) -> Snapshot {
    Snapshot {
        time,
        entries: (0..n)
            .map(|i| SnapshotEntry {
                id: ObjectId(i as u64),
                position: Point::new(rng.coord(), rng.coord()),
                interpolated: false,
            })
            .collect(),
    }
}

#[test]
fn warmed_clusterer_performs_zero_steady_state_allocations() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    // Steady-state workload: 60 ticks of 400 objects (dense enough for real
    // clusters — e = 3 over a 100×100 world groups most of them).
    let ticks: Vec<Snapshot> = (0..60).map(|t| snapshot(&mut rng, t, 400)).collect();

    let mut clusterer = SnapshotClusterer::new();
    // Warm-up: two full passes grow every buffer (ids, points, CSR arrays,
    // DBSCAN scratch, pair buffer, cluster pool and each pooled cluster's
    // member vec) to the workload's fixpoint.
    for pass in 0..2 {
        for snap in &ticks {
            let clusters = clusterer.cluster_into(snap, 3.0, 3);
            assert!(
                !clusters.is_empty(),
                "warm-up pass {pass} found no clusters"
            );
        }
    }

    // Measured pass: not a single heap allocation across 60 further ticks.
    let before = allocations();
    let mut total_clusters = 0usize;
    for snap in &ticks {
        total_clusters += clusterer.cluster_into(snap, 3.0, 3).len();
    }
    let after = allocations();
    assert!(total_clusters > 0, "steady state produced no clusters");
    assert_eq!(
        after - before,
        0,
        "a warmed SnapshotClusterer must not allocate in steady state \
         ({} allocations over {} ticks)",
        after - before,
        ticks.len()
    );
}

#[test]
fn warmed_clusterer_stays_allocation_free_across_varying_tick_sizes() {
    let _guard = SERIAL.lock().unwrap();
    // Shrinking ticks must also be free: every buffer is sized by the
    // *largest* snapshot seen, so smaller ones fit without growth.
    let mut rng = XorShift(0x2545f4914f6cdd1d);
    let sizes = [500usize, 120, 333, 60, 499, 7, 250];
    let ticks: Vec<Snapshot> = sizes
        .iter()
        .enumerate()
        .map(|(t, &n)| snapshot(&mut rng, t as i64, n))
        .collect();

    let mut clusterer = SnapshotClusterer::new();
    for snap in &ticks {
        clusterer.cluster_into(snap, 3.0, 2);
    }
    let before = allocations();
    for snap in &ticks {
        clusterer.cluster_into(snap, 3.0, 2);
    }
    assert_eq!(
        allocations() - before,
        0,
        "shrinking or revisited ticks must reuse the grown buffers"
    );
}

#[test]
fn clusterer_output_still_matches_one_shot_clustering() {
    let _guard = SERIAL.lock().unwrap();
    // Sanity inside the counting binary: the allocation-free path is the
    // same clustering, not a cheaper approximation.
    let mut rng = XorShift(0xdeadbeefcafef00d);
    let mut clusterer = SnapshotClusterer::new();
    for t in 0..10 {
        let snap = snapshot(&mut rng, t, 150);
        assert_eq!(
            clusterer.cluster_into(&snap, 2.5, 3).to_vec(),
            snapshot_clusters(&snap, 2.5, 3),
        );
    }
}
