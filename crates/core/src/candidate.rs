//! Candidate convoy bookkeeping shared by CMC and the CuTS filter step.

use crate::query::Convoy;
use serde::{Deserialize, Serialize};
use traj_cluster::Cluster;
use trajectory::TimePoint;

/// A convoy candidate under construction: a set of objects that have stayed
/// in a common (snapshot or partition) cluster since `start`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateConvoy {
    /// The objects currently shared by every cluster of the candidate's chain.
    pub objects: Cluster,
    /// Time point (or partition start) at which the chain began.
    pub start: TimePoint,
    /// Last time point (or partition end) the chain has been extended to.
    pub end: TimePoint,
}

impl CandidateConvoy {
    /// Creates a fresh candidate from a cluster discovered over
    /// `[start, end]`.
    pub fn new(objects: Cluster, start: TimePoint, end: TimePoint) -> Self {
        CandidateConvoy {
            objects,
            start: start.min(end),
            end: start.max(end),
        }
    }

    /// The candidate's lifetime in time points (`end - start + 1`),
    /// saturating at `i64::MAX` for candidates spanning the full tick range.
    pub fn lifetime(&self) -> i64 {
        self.end.saturating_sub(self.start).saturating_add(1)
    }

    /// Attempts to extend the candidate with a cluster observed up to
    /// `new_end`. Returns the extended candidate when the intersection still
    /// has at least `m` members, `None` otherwise.
    pub fn extend_with(
        &self,
        cluster: &Cluster,
        new_end: TimePoint,
        m: usize,
    ) -> Option<CandidateConvoy> {
        let common = self.objects.intersection(cluster);
        if common.len() >= m {
            Some(CandidateConvoy {
                objects: common,
                start: self.start,
                end: new_end.max(self.end),
            })
        } else {
            None
        }
    }

    /// Converts the candidate into a reported convoy.
    pub fn into_convoy(self) -> Convoy {
        Convoy::new(self.objects, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::ObjectId;

    fn cluster(ids: &[u64]) -> Cluster {
        Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect())
    }

    #[test]
    fn lifetime_counts_inclusive_points() {
        let c = CandidateConvoy::new(cluster(&[1, 2]), 3, 7);
        assert_eq!(c.lifetime(), 5);
        // Reversed bounds are normalised.
        assert_eq!(CandidateConvoy::new(cluster(&[1]), 7, 3).start, 3);
    }

    #[test]
    fn extension_keeps_intersection_and_grows_interval() {
        let c = CandidateConvoy::new(cluster(&[1, 2, 3, 4]), 0, 2);
        let extended = c.extend_with(&cluster(&[2, 3, 4, 5]), 3, 2).unwrap();
        assert_eq!(extended.objects, cluster(&[2, 3, 4]));
        assert_eq!(extended.start, 0);
        assert_eq!(extended.end, 3);
        // Too little overlap: extension fails.
        assert!(c.extend_with(&cluster(&[4, 9]), 3, 2).is_none());
        // The end never moves backwards.
        let same = c.extend_with(&cluster(&[1, 2, 3, 4]), 1, 2).unwrap();
        assert_eq!(same.end, 2);
    }

    #[test]
    fn conversion_to_convoy() {
        let convoy = CandidateConvoy::new(cluster(&[5, 6]), 10, 20).into_convoy();
        assert_eq!(convoy.objects, cluster(&[5, 6]));
        assert_eq!(convoy.start, 10);
        assert_eq!(convoy.end, 20);
    }
}
