//! CMC — the Coherent Moving Cluster algorithm (Algorithm 1 of the paper).
//!
//! CMC is the exact baseline: it density-clusters the objects' (possibly
//! interpolated) positions at every time point and intersects clusters across
//! consecutive time points, reporting every chain that keeps at least `m`
//! common objects for at least `k` consecutive time points.
//!
//! It is also the building block of the CuTS refinement step, which runs CMC
//! on the candidate's objects restricted to the candidate's time window.

use crate::engine::CmcEngine;
use crate::query::{Convoy, ConvoyQuery};
use trajectory::{TimeInterval, TrajectoryDatabase};

/// Runs CMC over the whole time domain of `db`.
///
/// Snapshots are streamed from one sorted sweep over all samples (the
/// [`CmcEngine::Swept`] engine); use [`CmcEngine`] directly for the per-tick
/// baseline or the parallel driver.
pub fn cmc(db: &TrajectoryDatabase, query: &ConvoyQuery) -> Vec<Convoy> {
    CmcEngine::Swept.run(db, query)
}

/// Runs CMC restricted to the time window `window` (Algorithm 1, as invoked
/// by the refinement step of Algorithm 3).
///
/// Positions of objects that cover a time point without an exact sample are
/// linearly interpolated (the *virtual points* of Section 4). Time points at
/// which fewer than `m` objects are present produce no clusters, which closes
/// every open candidate chain exactly as an empty clustering would.
///
/// The candidate bookkeeping lives in [`crate::engine::CmcState`]; this
/// function folds a snapshot sweep through it.
pub fn cmc_windowed(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    window: TimeInterval,
) -> Vec<Convoy> {
    CmcEngine::Swept.run_windowed(db, query, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::normalize_convoys;
    use trajectory::{ObjectId, Trajectory};

    /// Builds a database from per-object position tables: `positions[i]` is a
    /// list of `(x, y, t)` samples for object `i`.
    fn db_from(positions: &[&[(f64, f64, i64)]]) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (i, samples) in positions.iter().enumerate() {
            db.insert(
                ObjectId(i as u64),
                Trajectory::from_tuples(samples.iter().copied()).unwrap(),
            );
        }
        db
    }

    /// A database with three objects travelling together on [0, 9] and one
    /// object far away.
    fn convoy_db() -> TrajectoryDatabase {
        let mut rows: Vec<Vec<(f64, f64, i64)>> = Vec::new();
        for lane in 0..3 {
            rows.push(
                (0..10)
                    .map(|t| (t as f64, lane as f64 * 0.5, t as i64))
                    .collect(),
            );
        }
        rows.push((0..10).map(|t| (t as f64, 100.0, t as i64)).collect());
        let refs: Vec<&[(f64, f64, i64)]> = rows.iter().map(|r| r.as_slice()).collect();
        db_from(&refs)
    }

    #[test]
    fn finds_a_simple_convoy() {
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 5, 1.5);
        let result = normalize_convoys(cmc(&db, &query), &query);
        assert_eq!(result.len(), 1);
        let convoy = &result[0];
        assert_eq!(convoy.objects.len(), 3);
        assert_eq!(convoy.start, 0);
        assert_eq!(convoy.end, 9);
        assert!(!convoy.objects.contains(ObjectId(3)));
    }

    #[test]
    fn lifetime_constraint_filters_short_groups() {
        let db = convoy_db();
        // k larger than the whole domain: nothing qualifies.
        let query = ConvoyQuery::new(3, 50, 1.5);
        assert!(cmc(&db, &query).is_empty());
    }

    #[test]
    fn group_size_constraint() {
        let db = convoy_db();
        let query = ConvoyQuery::new(4, 5, 1.5);
        assert!(normalize_convoys(cmc(&db, &query), &query).is_empty());
    }

    #[test]
    fn empty_database_returns_nothing() {
        let db = TrajectoryDatabase::new();
        assert!(cmc(&db, &ConvoyQuery::new(2, 2, 1.0)).is_empty());
    }

    #[test]
    fn convoy_ends_when_an_object_departs() {
        // Objects 0 and 1 travel together on [0, 9]; object 2 joins them only
        // on [0, 4] and then veers away.
        let rows: Vec<Vec<(f64, f64, i64)>> = vec![
            (0..10).map(|t| (t as f64, 0.0, t as i64)).collect(),
            (0..10).map(|t| (t as f64, 0.5, t as i64)).collect(),
            (0..10)
                .map(|t| {
                    let y = if t <= 4 {
                        1.0
                    } else {
                        1.0 + (t - 4) as f64 * 10.0
                    };
                    (t as f64, y, t as i64)
                })
                .collect(),
        ];
        let refs: Vec<&[(f64, f64, i64)]> = rows.iter().map(|r| r.as_slice()).collect();
        let db = db_from(&refs);
        let query = ConvoyQuery::new(2, 3, 1.5);
        let result = normalize_convoys(cmc(&db, &query), &query);
        // The pair {0,1} convoys for the whole window. Note that Algorithm 1
        // reports a candidate only when it *fails* to extend, so the
        // shrinking candidate {0,1,2}→{0,1} does not additionally emit the
        // triple over [0,4] — this matches the paper's published algorithm
        // (Table 2 / Figure 5) and is the semantics CuTS reproduces exactly.
        assert_eq!(result.len(), 1);
        assert!(result
            .iter()
            .any(|c| c.objects.len() == 2 && c.start == 0 && c.end == 9));
    }

    #[test]
    fn departing_object_is_reported_when_the_remaining_group_dissolves() {
        // Same shape as above, but objects 0 and 1 also separate at t=5, so
        // the candidate fails to extend and the triple over [0, 4] *is*
        // reported.
        let rows: Vec<Vec<(f64, f64, i64)>> = vec![
            (0..10)
                .map(|t| {
                    let y = if t <= 4 { 0.0 } else { -(t - 4) as f64 * 20.0 };
                    (t as f64, y, t as i64)
                })
                .collect(),
            (0..10).map(|t| (t as f64, 0.5, t as i64)).collect(),
            (0..10)
                .map(|t| {
                    let y = if t <= 4 {
                        1.0
                    } else {
                        1.0 + (t - 4) as f64 * 20.0
                    };
                    (t as f64, y, t as i64)
                })
                .collect(),
        ];
        let refs: Vec<&[(f64, f64, i64)]> = rows.iter().map(|r| r.as_slice()).collect();
        let db = db_from(&refs);
        let query = ConvoyQuery::new(2, 3, 1.5);
        let result = normalize_convoys(cmc(&db, &query), &query);
        assert!(result
            .iter()
            .any(|c| c.objects.len() == 3 && c.start == 0 && c.end == 4));
    }

    #[test]
    fn missing_samples_are_interpolated() {
        // Object 1 has no sample at t=2 but is travelling alongside object 0;
        // interpolation must keep the convoy alive through the gap.
        let rows: Vec<Vec<(f64, f64, i64)>> = vec![
            (0..6).map(|t| (t as f64, 0.0, t as i64)).collect(),
            vec![
                (0.0, 0.5, 0),
                (1.0, 0.5, 1),
                (3.0, 0.5, 3),
                (4.0, 0.5, 4),
                (5.0, 0.5, 5),
            ],
        ];
        let refs: Vec<&[(f64, f64, i64)]> = rows.iter().map(|r| r.as_slice()).collect();
        let db = db_from(&refs);
        let query = ConvoyQuery::new(2, 6, 1.0);
        let result = normalize_convoys(cmc(&db, &query), &query);
        assert_eq!(
            result.len(),
            1,
            "interpolation must bridge the missing sample"
        );
        assert_eq!(result[0].lifetime(), 6);
    }

    #[test]
    fn windowed_cmc_restricts_the_search() {
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 3, 1.5);
        let result = normalize_convoys(cmc_windowed(&db, &query, TimeInterval::new(2, 6)), &query);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].start, 2);
        assert_eq!(result[0].end, 6);
    }

    #[test]
    fn two_disjoint_convoys_are_both_reported() {
        let rows: Vec<Vec<(f64, f64, i64)>> = vec![
            (0..8).map(|t| (t as f64, 0.0, t as i64)).collect(),
            (0..8).map(|t| (t as f64, 0.5, t as i64)).collect(),
            (0..8).map(|t| (-(t as f64), 50.0, t as i64)).collect(),
            (0..8).map(|t| (-(t as f64), 50.5, t as i64)).collect(),
        ];
        let refs: Vec<&[(f64, f64, i64)]> = rows.iter().map(|r| r.as_slice()).collect();
        let db = db_from(&refs);
        let query = ConvoyQuery::new(2, 4, 1.0);
        let result = normalize_convoys(cmc(&db, &query), &query);
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn density_connected_chain_forms_one_convoy() {
        // Figure 1: an elongated chain of objects each within e of the next —
        // the group a fixed-size flock disc would lose, but density connection
        // keeps whole.
        let rows: Vec<Vec<(f64, f64, i64)>> = (0..5)
            .map(|lane| (0..6).map(|t| (t as f64, lane as f64, t as i64)).collect())
            .collect();
        let refs: Vec<&[(f64, f64, i64)]> = rows.iter().map(|r| r.as_slice()).collect();
        let db = db_from(&refs);
        let query = ConvoyQuery::new(2, 6, 1.2);
        let result = normalize_convoys(cmc(&db, &query), &query);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].objects.len(), 5);
    }
}
