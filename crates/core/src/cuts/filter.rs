//! The CuTS filter step (Algorithm 2 of the paper).
//!
//! The filter simplifies every trajectory, partitions the time domain into
//! λ-length partitions, density-clusters the simplified sub-trajectories of
//! each partition using the Lemma 1 / Lemma 3 bounds, and chains clusters
//! across partitions into **candidate convoys** — a superset of the true
//! convoys, which the refinement step then verifies.

use crate::candidate::CandidateConvoy;
use crate::cuts::partition::{cluster_partition, CandidateChain, PartitionClusters};
use crate::cuts::CutsConfig;
use crate::params::{auto_delta, auto_lambda};
use crate::query::ConvoyQuery;
use serde::{Deserialize, Serialize};
use traj_cluster::SubTrajectory;
use traj_simplify::SimplifiedTrajectory;
use trajectory::{ObjectId, TimePartition, TrajectoryDatabase};

/// The output of the filter step: candidate convoys plus the bookkeeping the
/// refinement step and the benchmark harness need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterOutput {
    /// Candidate convoys (a superset of the true convoys, at partition
    /// granularity).
    pub candidates: Vec<CandidateConvoy>,
    /// Every λ-partition's clusters, in window order — the per-tick object
    /// coverage the refinement fold restricts its snapshots to
    /// ([`crate::cuts::refine::refine_partitions`]).
    pub partitions: Vec<PartitionClusters>,
    /// The simplification tolerance δ actually used.
    pub delta: f64,
    /// The partition length λ actually used.
    pub lambda: usize,
    /// Total number of samples before simplification.
    pub original_points: usize,
    /// Total number of samples after simplification.
    pub simplified_points: usize,
}

impl FilterOutput {
    /// Vertex reduction of the simplification step, in percent.
    pub fn reduction_percent(&self) -> f64 {
        if self.original_points == 0 {
            return 0.0;
        }
        (1.0 - self.simplified_points as f64 / self.original_points as f64) * 100.0
    }
}

/// Simplifies every trajectory of `db` with the variant's simplifier and the
/// given δ. Exposed separately so the benchmark harness can time the
/// simplification stage on its own (Figure 13).
pub fn simplify_database(
    db: &TrajectoryDatabase,
    config: &CutsConfig,
    delta: f64,
) -> Vec<(ObjectId, SimplifiedTrajectory)> {
    let method = config.variant.simplification();
    db.iter()
        .map(|(id, traj)| (id, method.simplify(traj, delta)))
        .collect()
}

/// Runs the filter step on already-simplified trajectories.
///
/// This is the partition-and-cluster half of Algorithm 2; [`filter`] is the
/// convenience wrapper that also performs the simplification.
pub fn filter_simplified(
    simplified: &[(ObjectId, SimplifiedTrajectory)],
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    config: &CutsConfig,
    delta: f64,
) -> FilterOutput {
    let original_points = db.total_points();
    let simplified_points = simplified.iter().map(|(_, s)| s.num_points()).sum();

    let lambda = config
        .lambda
        .unwrap_or_else(|| auto_lambda(simplified.iter().map(|(_, s)| s), query.k));

    let Some(domain) = db.time_domain() else {
        return FilterOutput {
            candidates: Vec::new(),
            partitions: Vec::new(),
            delta,
            lambda,
            original_points,
            simplified_points,
        };
    };

    let distance = config.variant.segment_distance();
    let mode = config.tolerance_mode;
    let partition = TimePartition::new(domain, lambda as i64);

    // The partition loop proper lives in `cuts::partition`, shared with the
    // streaming filter: cluster each λ-partition's sub-trajectories, fold the
    // clusters into candidate chains.
    let mut partitions: Vec<PartitionClusters> = Vec::with_capacity(partition.len());
    let mut chain = CandidateChain::new(query);

    for window in partition.iter() {
        // Collect the sub-trajectories of every object present in this
        // partition (line 9–10 of Algorithm 2).
        let items: Vec<SubTrajectory> = simplified
            .iter()
            .filter_map(|(id, s)| SubTrajectory::for_window(*id, s, window))
            .collect();
        let clustered = cluster_partition(window, &items, query, distance, mode);
        chain.fold(&clustered);
        partitions.push(clustered);
    }

    FilterOutput {
        candidates: chain.finish(),
        partitions,
        delta,
        lambda,
        original_points,
        simplified_points,
    }
}

/// Runs the complete filter step (simplification + partitioned clustering) of
/// Algorithm 2.
pub fn filter(db: &TrajectoryDatabase, query: &ConvoyQuery, config: &CutsConfig) -> FilterOutput {
    let delta = config.delta.unwrap_or_else(|| auto_delta(db, query.e));
    let simplified = simplify_database(db, config, delta);
    filter_simplified(&simplified, db, query, config, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts::CutsVariant;
    use trajectory::{ObjectId, Trajectory};

    fn convoy_db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        // Three objects moving together with a little jitter, one far away.
        for i in 0..3u64 {
            let traj = Trajectory::from_tuples((0..30).map(|t| {
                let jitter = if (t + i as i64) % 2 == 0 { 0.1 } else { -0.1 };
                (t as f64, i as f64 * 0.4 + jitter, t)
            }))
            .unwrap();
            db.insert(ObjectId(i), traj);
        }
        db.insert(
            ObjectId(9),
            Trajectory::from_tuples((0..30).map(|t| (t as f64, 400.0, t))).unwrap(),
        );
        db
    }

    #[test]
    fn filter_produces_a_candidate_covering_the_true_convoy() {
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 10, 1.5);
        for variant in CutsVariant::ALL {
            let output = filter(&db, &query, &CutsConfig::new(variant));
            assert!(
                !output.candidates.is_empty(),
                "{variant} filter must produce at least one candidate"
            );
            // Some candidate must contain all three convoy members over the
            // full window — the no-false-dismissal guarantee.
            let covered = output.candidates.iter().any(|c| {
                (0..3u64).all(|i| c.objects.contains(ObjectId(i))) && c.start <= 0 && c.end >= 29
            });
            assert!(covered, "{variant} filter lost the true convoy");
            // The far-away object must not force itself into every candidate.
            assert!(output
                .candidates
                .iter()
                .any(|c| !c.objects.contains(ObjectId(9))));
            assert!(output.delta > 0.0);
            assert!(output.lambda >= 2);
            assert!(output.simplified_points <= output.original_points);
        }
    }

    #[test]
    fn filter_reduces_vertex_count_on_smooth_trajectories() {
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 10, 1.5);
        // With a tolerance above the ±0.1 jitter the trajectories collapse to
        // a handful of points.
        let config = CutsConfig::new(CutsVariant::Cuts).with_delta(0.5);
        let output = filter(&db, &query, &config);
        assert!(
            output.reduction_percent() > 60.0,
            "nearly-straight trajectories should simplify well, got {:.1}%",
            output.reduction_percent()
        );
    }

    #[test]
    fn explicit_parameters_are_respected() {
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 10, 1.5);
        let config = CutsConfig::new(CutsVariant::CutsStar)
            .with_delta(0.75)
            .with_lambda(6);
        let output = filter(&db, &query, &config);
        assert_eq!(output.delta, 0.75);
        assert_eq!(output.lambda, 6);
    }

    #[test]
    fn empty_database_produces_no_candidates() {
        let db = TrajectoryDatabase::new();
        let query = ConvoyQuery::new(2, 3, 1.0);
        let output = filter(&db, &query, &CutsConfig::new(CutsVariant::Cuts));
        assert!(output.candidates.is_empty());
        assert_eq!(output.original_points, 0);
    }

    #[test]
    fn lifetime_constraint_prunes_short_candidates() {
        let db = convoy_db();
        // k far larger than the domain: no candidate can qualify.
        let query = ConvoyQuery::new(3, 500, 1.5);
        let output = filter(&db, &query, &CutsConfig::new(CutsVariant::Cuts));
        assert!(output.candidates.is_empty());
    }
}
