//! The CuTS family: convoy discovery using trajectory simplification
//! (Sections 5 and 6 of the paper).
//!
//! All three variants share the same filter–refinement skeleton and differ
//! only in the simplification algorithm and the segment distance used by the
//! filter:
//!
//! | Variant  | Simplification | Segment distance | Distance bound |
//! |----------|----------------|------------------|----------------|
//! | `CuTS`   | DP             | `DLL`            | Lemma 1        |
//! | `CuTS+`  | DP+            | `DLL`            | Lemma 1        |
//! | `CuTS*`  | DP*            | `D*`             | Lemma 3        |

pub mod filter;
pub mod partition;
pub mod refine;

use serde::{Deserialize, Serialize};
use traj_cluster::SegmentDistance;
use traj_simplify::{SimplificationMethod, ToleranceMode};

/// The three members of the CuTS family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CutsVariant {
    /// CuTS: DP simplification + `DLL` distance bounds (Lemma 1).
    Cuts,
    /// CuTS+: DP+ simplification + `DLL` distance bounds (Lemma 1).
    CutsPlus,
    /// CuTS*: DP* simplification + `D*` distance bounds (Lemma 3).
    CutsStar,
}

impl CutsVariant {
    /// All variants, in the order the paper's figures list them.
    pub const ALL: [CutsVariant; 3] = [
        CutsVariant::Cuts,
        CutsVariant::CutsPlus,
        CutsVariant::CutsStar,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            CutsVariant::Cuts => "CuTS",
            CutsVariant::CutsPlus => "CuTS+",
            CutsVariant::CutsStar => "CuTS*",
        }
    }

    /// The simplification method the variant uses.
    pub fn simplification(&self) -> SimplificationMethod {
        match self {
            CutsVariant::Cuts => SimplificationMethod::Dp,
            CutsVariant::CutsPlus => SimplificationMethod::DpPlus,
            CutsVariant::CutsStar => SimplificationMethod::DpStar,
        }
    }

    /// The segment distance function the variant's filter step uses.
    pub fn segment_distance(&self) -> SegmentDistance {
        match self {
            CutsVariant::Cuts | CutsVariant::CutsPlus => SegmentDistance::Dll,
            CutsVariant::CutsStar => SegmentDistance::DStar,
        }
    }
}

impl std::fmt::Display for CutsVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs of the CuTS filter step. None of these affect correctness —
/// only the filter's selectivity and therefore the running time (Section 7.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CutsConfig {
    /// The variant to run.
    pub variant: CutsVariant,
    /// Simplification tolerance δ. `None` selects it automatically with the
    /// Section 7.4 guideline ([`crate::params::auto_delta`]).
    pub delta: Option<f64>,
    /// Time-partition length λ. `None` selects it automatically with the
    /// Section 7.4 guideline ([`crate::params::auto_lambda`]).
    pub lambda: Option<usize>,
    /// Whether range searches use each segment's actual tolerance (the
    /// paper's recommended setting) or the global δ (Figure 14's comparison
    /// baseline).
    pub tolerance_mode: ToleranceMode,
}

impl CutsConfig {
    /// The default configuration for a variant: automatic δ and λ, actual
    /// tolerances.
    pub fn new(variant: CutsVariant) -> Self {
        CutsConfig {
            variant,
            delta: None,
            lambda: None,
            tolerance_mode: ToleranceMode::Actual,
        }
    }

    /// Overrides the simplification tolerance δ.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Overrides the partition length λ.
    #[must_use]
    pub fn with_lambda(mut self, lambda: usize) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Selects the tolerance mode used by the filter's range searches.
    #[must_use]
    pub fn with_tolerance_mode(mut self, mode: ToleranceMode) -> Self {
        self.tolerance_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_components_match_the_paper_table() {
        assert_eq!(CutsVariant::Cuts.simplification(), SimplificationMethod::Dp);
        assert_eq!(
            CutsVariant::CutsPlus.simplification(),
            SimplificationMethod::DpPlus
        );
        assert_eq!(
            CutsVariant::CutsStar.simplification(),
            SimplificationMethod::DpStar
        );
        assert_eq!(CutsVariant::Cuts.segment_distance(), SegmentDistance::Dll);
        assert_eq!(
            CutsVariant::CutsPlus.segment_distance(),
            SegmentDistance::Dll
        );
        assert_eq!(
            CutsVariant::CutsStar.segment_distance(),
            SegmentDistance::DStar
        );
        assert_eq!(CutsVariant::CutsStar.to_string(), "CuTS*");
        assert_eq!(CutsVariant::ALL.len(), 3);
    }

    #[test]
    fn config_builder() {
        let config = CutsConfig::new(CutsVariant::Cuts)
            .with_delta(3.5)
            .with_lambda(8)
            .with_tolerance_mode(ToleranceMode::Global);
        assert_eq!(config.delta, Some(3.5));
        assert_eq!(config.lambda, Some(8));
        assert_eq!(config.tolerance_mode, ToleranceMode::Global);
        let default = CutsConfig::new(CutsVariant::CutsStar);
        assert_eq!(default.delta, None);
        assert_eq!(default.lambda, None);
        assert_eq!(default.tolerance_mode, ToleranceMode::Actual);
    }
}
