//! The λ-partition primitives shared by the batch filter (Algorithm 2) and
//! the streaming filter (`convoy_stream`).
//!
//! Both filters do the same two things per λ-partition, just at different
//! moments: density-cluster the partition's simplified sub-trajectories
//! ([`cluster_partition`]) and fold the resulting clusters into candidate
//! chains ([`CandidateChain`]). Extracting them here means there is exactly
//! one implementation of the partition loop of Algorithm 2 — the batch
//! filter calls it with whole-trajectory simplifications partition by
//! partition, the streaming filter calls it with sliding-window
//! simplifications as each partition closes.

use crate::candidate::CandidateConvoy;
use crate::query::ConvoyQuery;
use serde::{Deserialize, Serialize};
use traj_cluster::{cluster_sub_trajectories, Cluster, SegmentDistance, SubTrajectory};
use traj_simplify::ToleranceMode;
use trajectory::TimeInterval;

/// The clusters discovered in one λ-partition, tagged with the partition's
/// window. This is the currency between the filter and the refinement stage:
/// the refinement only ever inspects objects that co-clustered in the
/// partition covering each time point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionClusters {
    /// The partition's time window (consecutive partitions share their
    /// boundary time point, matching [`trajectory::TimePartition`]).
    pub window: TimeInterval,
    /// The density clusters of the partition's sub-trajectories.
    pub clusters: Vec<Cluster>,
}

/// Density-clusters one λ-partition's sub-trajectories (lines 9–12 of
/// Algorithm 2) — the partition-clustering routine shared by the batch
/// filter and the streaming filter.
///
/// Fewer than `m` sub-trajectories can never form a cluster, so the
/// clustering is skipped outright in that case.
pub fn cluster_partition(
    window: TimeInterval,
    items: &[SubTrajectory],
    query: &ConvoyQuery,
    distance: SegmentDistance,
    mode: ToleranceMode,
) -> PartitionClusters {
    let clusters = if items.len() < query.m {
        Vec::new()
    } else {
        cluster_sub_trajectories(items, query.e, query.m, distance, mode)
    };
    PartitionClusters { window, clusters }
}

/// The candidate-chaining state machine of Algorithm 2 (lines 13–22): fold
/// one partition's clusters at a time, extending open candidate chains with
/// every cluster that keeps at least `m` common objects and closing chains
/// that fail to extend.
///
/// This is the partition-granularity sibling of
/// [`crate::engine::CmcState`]: the same extend-or-close dynamics, but over
/// λ-length windows instead of single ticks and producing *candidates* (to
/// be refined) instead of verified convoys.
#[derive(Debug, Clone)]
pub struct CandidateChain {
    query: ConvoyQuery,
    current: Vec<CandidateConvoy>,
    closed: Vec<CandidateConvoy>,
    peak_open: usize,
    partitions_folded: u64,
}

/// A serializable view of a [`CandidateChain`]'s resumable state (open and
/// undrained chains plus counters; the query is configuration and comes back
/// from the caller on restore).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateChainSnapshot {
    /// Open chains, in fold order.
    pub current: Vec<CandidateConvoy>,
    /// Chains closed but not yet drained.
    pub closed: Vec<CandidateConvoy>,
    /// Largest number of simultaneously open chains observed.
    pub peak_open: usize,
    /// Partitions folded so far.
    pub partitions_folded: u64,
}

impl CandidateChain {
    /// Creates an empty chain for `query`.
    pub fn new(query: &ConvoyQuery) -> Self {
        CandidateChain {
            query: *query,
            current: Vec::new(),
            closed: Vec::new(),
            peak_open: 0,
            partitions_folded: 0,
        }
    }

    /// Exports the resumable state for checkpointing.
    pub fn export_state(&self) -> CandidateChainSnapshot {
        CandidateChainSnapshot {
            current: self.current.clone(),
            closed: self.closed.clone(),
            peak_open: self.peak_open,
            partitions_folded: self.partitions_folded,
        }
    }

    /// Rebuilds a chain for `query` from an exported view.
    pub fn from_state(query: &ConvoyQuery, snapshot: CandidateChainSnapshot) -> Self {
        CandidateChain {
            query: *query,
            current: snapshot.current,
            closed: snapshot.closed,
            peak_open: snapshot.peak_open,
            partitions_folded: snapshot.partitions_folded,
        }
    }

    /// Folds one partition's clusters into the open chains. Partitions must
    /// arrive in ascending window order.
    pub fn fold(&mut self, partition: &PartitionClusters) {
        let window = partition.window;
        let clusters = &partition.clusters;
        let mut next: Vec<CandidateConvoy> = Vec::with_capacity(self.current.len());
        let mut cluster_assigned = vec![false; clusters.len()];

        for candidate in &self.current {
            let mut extended = false;
            for (ci, cluster) in clusters.iter().enumerate() {
                if let Some(grown) = candidate.extend_with(cluster, window.end, self.query.m) {
                    extended = true;
                    cluster_assigned[ci] = true;
                    next.push(grown);
                }
            }
            if !extended && candidate.lifetime() >= self.query.k as i64 {
                self.closed.push(candidate.clone());
            }
        }

        for (ci, cluster) in clusters.iter().enumerate() {
            if !cluster_assigned[ci] {
                next.push(CandidateConvoy::new(
                    cluster.clone(),
                    window.start,
                    window.end,
                ));
            }
        }

        self.current = next;
        self.peak_open = self.peak_open.max(self.current.len());
        self.partitions_folded += 1;
    }

    /// The chains currently open.
    pub fn open(&self) -> &[CandidateConvoy] {
        &self.current
    }

    /// The largest number of simultaneously open chains observed so far.
    pub fn peak_open(&self) -> usize {
        self.peak_open
    }

    /// Number of partitions folded so far.
    pub fn partitions_folded(&self) -> u64 {
        self.partitions_folded
    }

    /// Closes chains that started before `cutoff`, reporting those that
    /// satisfy the lifetime constraint. Returns the number of chains closed.
    /// This is the coarse-filter side of windowed eviction: a long-lived
    /// feed must not keep chains from an unbounded past open.
    pub fn close_started_before(&mut self, cutoff: trajectory::TimePoint) -> usize {
        let k = self.query.k as i64;
        let mut closed = 0;
        self.current.retain(|candidate| {
            if candidate.start < cutoff {
                if candidate.lifetime() >= k {
                    self.closed.push(candidate.clone());
                }
                closed += 1;
                false
            } else {
                true
            }
        });
        closed
    }

    /// Takes the candidates that have closed since the last drain.
    pub fn drain_closed(&mut self) -> Vec<CandidateConvoy> {
        std::mem::take(&mut self.closed)
    }

    /// Ends the stream: closes every remaining open chain (reporting the
    /// lifetime-satisfying ones) and returns all candidates not yet drained.
    pub fn finish(mut self) -> Vec<CandidateConvoy> {
        let k = self.query.k as i64;
        for candidate in std::mem::take(&mut self.current) {
            if candidate.lifetime() >= k {
                self.closed.push(candidate);
            }
        }
        self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::ObjectId;

    fn cluster(ids: &[u64]) -> Cluster {
        Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect())
    }

    fn partition(start: i64, end: i64, clusters: &[&[u64]]) -> PartitionClusters {
        PartitionClusters {
            window: TimeInterval::new(start, end),
            clusters: clusters.iter().map(|ids| cluster(ids)).collect(),
        }
    }

    #[test]
    fn chains_extend_across_partitions_and_close_on_failure() {
        let query = ConvoyQuery::new(2, 6, 1.0);
        let mut chain = CandidateChain::new(&query);
        chain.fold(&partition(0, 3, &[&[1, 2, 3]]));
        chain.fold(&partition(3, 6, &[&[1, 2, 9]]));
        // The cluster extended the open chain, so it was assigned and does
        // not additionally open a fresh chain.
        assert_eq!(chain.open().len(), 1);
        // Nothing extends: the {1,2} chain (lifetime 7 ≥ k) closes.
        chain.fold(&partition(6, 9, &[]));
        let closed = chain.drain_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].objects, cluster(&[1, 2]));
        assert_eq!(closed[0].start, 0);
        assert_eq!(closed[0].end, 6);
        assert!(chain.open().is_empty());
        assert_eq!(chain.partitions_folded(), 3);
    }

    #[test]
    fn fresh_chains_only_from_unassigned_clusters() {
        let query = ConvoyQuery::new(2, 4, 1.0);
        let mut chain = CandidateChain::new(&query);
        chain.fold(&partition(0, 3, &[&[1, 2]]));
        // The cluster extends the open chain, so no fresh chain appears.
        chain.fold(&partition(3, 6, &[&[1, 2, 3]]));
        assert_eq!(chain.open().len(), 1);
        assert_eq!(chain.open()[0].start, 0);
        // An unrelated cluster starts a fresh chain.
        chain.fold(&partition(6, 9, &[&[1, 2], &[7, 8]]));
        assert_eq!(chain.open().len(), 2);
        assert_eq!(chain.peak_open(), 2);
    }

    #[test]
    fn finish_reports_only_lifetime_satisfying_chains() {
        let query = ConvoyQuery::new(2, 10, 1.0);
        let mut chain = CandidateChain::new(&query);
        chain.fold(&partition(0, 3, &[&[1, 2]]));
        assert!(chain.finish().is_empty(), "lifetime 4 < k = 10");

        let query = ConvoyQuery::new(2, 3, 1.0);
        let mut chain = CandidateChain::new(&query);
        chain.fold(&partition(0, 3, &[&[1, 2]]));
        let closed = chain.finish();
        assert_eq!(closed.len(), 1);
    }

    #[test]
    fn eviction_closes_old_chains_only() {
        let query = ConvoyQuery::new(2, 2, 1.0);
        let mut chain = CandidateChain::new(&query);
        chain.fold(&partition(0, 3, &[&[1, 2]]));
        chain.fold(&partition(3, 6, &[&[1, 2], &[7, 8]]));
        assert_eq!(chain.open().len(), 2);
        // Cutoff between the two chains' starts: only the old one closes.
        assert_eq!(chain.close_started_before(2), 1);
        assert_eq!(chain.open().len(), 1);
        assert_eq!(chain.open()[0].objects, cluster(&[7, 8]));
        let closed = chain.drain_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].objects, cluster(&[1, 2]));
        // A cutoff at the survivor's exact start does not close it.
        assert_eq!(chain.close_started_before(3), 0);
        assert_eq!(chain.open().len(), 1);
    }

    #[test]
    fn cluster_partition_respects_the_m_floor() {
        let query = ConvoyQuery::new(3, 2, 1.0);
        let out = cluster_partition(
            TimeInterval::new(0, 4),
            &[],
            &query,
            SegmentDistance::Dll,
            ToleranceMode::Actual,
        );
        assert!(out.clusters.is_empty());
        assert_eq!(out.window, TimeInterval::new(0, 4));
    }
}
