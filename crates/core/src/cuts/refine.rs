//! The CuTS refinement step.
//!
//! Two refinement strategies live here:
//!
//! * [`refine_candidate`] / [`refine`] — Algorithm 3 as published: for every
//!   candidate convoy, run exact CMC restricted to the candidate's member
//!   objects and time window.
//! * [`RefineFold`] / [`refine_partitions`] — the **coverage fold** shared
//!   with the streaming pipeline (`convoy_stream`): one [`CmcState`] folds
//!   every tick of the filtered domain, with each tick's snapshot restricted
//!   to the objects that co-clustered in the λ-partition(s) covering it.
//!
//! ## Why the coverage fold is exact (and filter-independent)
//!
//! Restricting the snapshot at tick `t` to the partition clusters' object
//! union `U_t` leaves the snapshot's DBSCAN output **bit-identical** to the
//! full snapshot's, for *any* sound filter:
//!
//! 1. The filter's no-false-dismissal lemmas (Lemmas 1–3) guarantee that two
//!    objects within `e` of each other at `t` are ω-neighbours in the
//!    partition covering `t`, so every snapshot cluster at `t` maps into a
//!    single partition cluster — all of its members, cores *and* the border
//!    objects reached through them, are in `U_t`.
//! 2. The objects removed by the restriction are therefore snapshot *noise*:
//!    none is within `e` of any core object (an `e`-neighbour of a core
//!    belongs to its cluster). Removing them changes no core's neighbour
//!    count, no expansion frontier and no scan order among survivors, so
//!    DBSCAN discovers the same clusters in the same order.
//!
//! Folding identical per-tick cluster sequences through one [`CmcState`]
//! yields identical convoys — which is why a streaming filter whose
//! sliding-window simplification differs from the batch simplification still
//! produces refinement output bit-identical to the batch run, and why the
//! equivalence harness (`tests/stream_equivalence.rs`) can assert raw
//! `Vec<Convoy>` equality rather than set equivalence.

use crate::candidate::CandidateConvoy;
use crate::cmc::cmc_windowed;
use crate::cuts::partition::PartitionClusters;
use crate::engine::{CmcState, CmcStats};
use crate::query::{Convoy, ConvoyQuery};
use convoy_obs::Obs;
use std::collections::BTreeSet;
use trajectory::{
    ObjectId, Snapshot, SnapshotPolicy, SnapshotSweep, TimeInterval, TimePoint, TrajectoryDatabase,
};

/// Refines one candidate: runs windowed CMC over the candidate's objects.
pub fn refine_candidate(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    candidate: &CandidateConvoy,
) -> Vec<Convoy> {
    let subset = db.subset(candidate.objects.iter());
    let window = TimeInterval::new(candidate.start, candidate.end);
    cmc_windowed(&subset, query, window)
}

/// Refines every candidate and concatenates the verified convoys.
///
/// The output may contain duplicate or dominated convoys when candidates
/// overlap; callers normalise with
/// [`crate::query::normalize_convoys`] (the [`crate::discovery`] façade does
/// this automatically).
pub fn refine(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    candidates: &[CandidateConvoy],
) -> Vec<Convoy> {
    let mut out = Vec::new();
    for candidate in candidates {
        out.extend(refine_candidate(db, query, candidate));
    }
    out
}

/// The coverage-restricted [`CmcState`] fold shared by batch refinement
/// ([`refine_partitions`]) and the streaming pipeline (see the module docs
/// for the exactness argument).
///
/// The fold is agnostic of where positions come from: every tick's
/// restricted snapshot is produced by a caller-supplied source, so the batch
/// side reads a [`SnapshotSweep`] while a stream reads its ingest buffers —
/// and both drive the identical per-tick loop, eviction hooks included.
#[derive(Debug, Clone)]
pub struct RefineFold {
    state: CmcState,
    /// The last pushed partition's window and object coverage, kept so the
    /// shared boundary tick can be folded with the union of both partitions'
    /// coverage once the next partition (or the stream end) is known.
    prev: Option<(TimeInterval, BTreeSet<ObjectId>)>,
    last_tick: Option<TimePoint>,
    /// Maximum open-chain lifetime in ticks (`None` = unbounded): before a
    /// tick extends the chains, every chain that has already lived this long
    /// is closed (and reported if it satisfies `k`).
    horizon: Option<i64>,
    /// Maximum number of open chains (`None` = unbounded): after each tick,
    /// the oldest chains are closed until the bound holds again.
    max_candidates: Option<usize>,
    evicted: u64,
}

impl RefineFold {
    /// Creates an unbounded fold (the batch configuration).
    pub fn new(query: &ConvoyQuery) -> Self {
        Self::with_eviction(query, None, None)
    }

    /// Creates a fold with windowed eviction: `horizon` caps each open
    /// chain's lifetime, `max_candidates` caps the number of open chains.
    pub fn with_eviction(
        query: &ConvoyQuery,
        horizon: Option<i64>,
        max_candidates: Option<usize>,
    ) -> Self {
        RefineFold {
            state: CmcState::new(query),
            prev: None,
            last_tick: None,
            horizon,
            max_candidates,
            evicted: 0,
        }
    }

    fn ingest<S>(&mut self, t: TimePoint, coverage: &BTreeSet<ObjectId>, snapshot_at: &mut S)
    where
        S: FnMut(TimePoint, &BTreeSet<ObjectId>) -> Snapshot,
    {
        // A single-tick domain makes the sole partition's start and end the
        // same time point; fold it once.
        if self.last_tick.is_some_and(|last| last >= t) {
            return;
        }
        self.last_tick = Some(t);
        if let Some(horizon) = self.horizon {
            self.evicted += self.state.evict_longer_than(horizon) as u64;
        }
        self.state.ingest_snapshot(&snapshot_at(t, coverage));
        if let Some(max) = self.max_candidates {
            self.evicted += self.state.evict_to_capacity(max) as u64;
        }
    }

    /// Folds one λ-partition: the shared boundary tick with the previous
    /// partition (coverage = union of both partitions' clusters), then the
    /// partition's interior ticks. The partition's own end tick is held back
    /// until the next partition — or [`RefineFold::finish`] — supplies the
    /// other half of its coverage.
    ///
    /// Partitions must arrive in window order, consecutive windows sharing
    /// their boundary tick (the shape [`trajectory::TimePartition`] and the
    /// streaming tracker both produce).
    pub fn push_partition<S>(&mut self, partition: &PartitionClusters, snapshot_at: &mut S)
    where
        S: FnMut(TimePoint, &BTreeSet<ObjectId>) -> Snapshot,
    {
        let window = partition.window;
        let coverage: BTreeSet<ObjectId> = partition
            .clusters
            .iter()
            .flat_map(|c| c.members().iter().copied())
            .collect();

        let boundary_coverage: BTreeSet<ObjectId> = match &self.prev {
            Some((prev_window, prev_coverage)) => {
                // A hard assert, not a debug_assert: a gap between windows
                // would silently desynchronise callers that pair the fold
                // with a tick-ordered snapshot source.
                assert_eq!(
                    prev_window.end, window.start,
                    "partitions must share their boundary tick"
                );
                prev_coverage.union(&coverage).copied().collect()
            }
            None => coverage.clone(),
        };
        self.ingest(window.start, &boundary_coverage, snapshot_at);
        for t in window.start.saturating_add(1)..window.end {
            self.ingest(t, &coverage, snapshot_at);
        }
        self.prev = Some((window, coverage));
    }

    /// Exports the resumable state for checkpointing. The eviction policy is
    /// configuration, not state: [`RefineFold::from_state`] takes it again
    /// from the caller, so only the cursor/coverage/counter state is here.
    pub fn export_state(&self) -> RefineFoldSnapshot {
        RefineFoldSnapshot {
            state: self.state.export_state(),
            prev: self
                .prev
                .as_ref()
                .map(|(window, coverage)| (*window, coverage.iter().copied().collect())),
            last_tick: self.last_tick,
            evicted: self.evicted,
        }
    }

    /// Rebuilds a fold for `query` with the given eviction policy from an
    /// exported view.
    pub fn from_state(
        query: &ConvoyQuery,
        horizon: Option<i64>,
        max_candidates: Option<usize>,
        snapshot: RefineFoldSnapshot,
    ) -> Self {
        RefineFold {
            state: CmcState::from_state(query, snapshot.state),
            prev: snapshot
                .prev
                .map(|(window, coverage)| (window, coverage.into_iter().collect())),
            last_tick: snapshot.last_tick,
            horizon,
            max_candidates,
            evicted: snapshot.evicted,
        }
    }

    /// Attaches a metrics recorder to the inner [`CmcState`]: per-tick
    /// `cmc.*` fold metrics plus the `cluster.*` metrics of its clusterer
    /// (see [`CmcState::set_obs`]).
    pub fn set_obs(&mut self, obs: Obs) {
        self.state.set_obs(obs);
    }

    /// Convoys whose chains closed since the last drain (the streaming
    /// consumption path).
    pub fn drain_closed(&mut self) -> Vec<Convoy> {
        self.state.drain_closed()
    }

    /// Number of chains force-closed by the eviction policy so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The fold's [`CmcStats`] so far (counters survive drains).
    pub fn stats(&self) -> CmcStats {
        self.state.stats()
    }

    /// Ends the fold: ingests the final partition's end tick, closes every
    /// open chain, and returns the convoys not yet drained plus the fold's
    /// lifetime counters.
    pub fn finish<S>(mut self, snapshot_at: &mut S) -> FoldOutcome
    where
        S: FnMut(TimePoint, &BTreeSet<ObjectId>) -> Snapshot,
    {
        if let Some((window, coverage)) = self.prev.take() {
            self.ingest(window.end, &coverage, snapshot_at);
        }
        let evicted = self.evicted;
        let (convoys, stats) = self.state.finish_with_stats();
        FoldOutcome {
            convoys,
            stats,
            evicted,
        }
    }
}

/// A serializable view of a [`RefineFold`]'s resumable state: the inner
/// [`CmcState`] view, the held-back boundary partition (window + coverage,
/// the coverage as a sorted object list), the fold cursor, and the eviction
/// counter.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineFoldSnapshot {
    /// The inner CMC state view.
    pub state: crate::engine::CmcStateSnapshot,
    /// The last pushed partition's window and coverage (objects ascending),
    /// if a boundary tick is still held back.
    pub prev: Option<(TimeInterval, Vec<ObjectId>)>,
    /// The last folded tick.
    pub last_tick: Option<TimePoint>,
    /// Chains force-closed by the eviction policy so far.
    pub evicted: u64,
}

/// What a finished [`RefineFold`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldOutcome {
    /// Convoys not yet drained, in closure order.
    pub convoys: Vec<Convoy>,
    /// The fold's lifetime counters.
    pub stats: CmcStats,
    /// Chains force-closed by the eviction policy over the fold's lifetime
    /// (final boundary tick included).
    pub evicted: u64,
}

/// Restricts a snapshot to the objects in `coverage` (the per-tick pruning
/// the coverage fold applies before clustering).
pub fn restrict_snapshot(mut snapshot: Snapshot, coverage: &BTreeSet<ObjectId>) -> Snapshot {
    snapshot.entries.retain(|e| coverage.contains(&e.id));
    snapshot
}

/// Refines a filter's λ-partition clusters with the coverage fold: one
/// [`SnapshotSweep`] over the filtered domain, each tick restricted to the
/// objects of the partition clusters covering it, folded through one
/// [`CmcState`].
///
/// Returns the raw (un-normalised) convoys in closure order together with
/// the fold's counters. The module docs explain why this output is
/// bit-identical to plain CMC over the same database — and therefore to the
/// streaming pipeline's output, whatever its filter decided.
///
/// **Cost profile.** Unlike the per-candidate Algorithm 3, the fold visits
/// every tick of the filtered domain (ticks with empty coverage cost only
/// the snapshot extraction) and clusters the coverage of every partition —
/// including clusters that never persisted `k` ticks. The filter's benefit
/// is therefore *object* pruning per tick, not time pruning: on data whose
/// clusters are sparse (the paper's workloads, where most objects are noise
/// most of the time) refinement stays far below CMC cost, while on data
/// that clusters densely but briefly it approaches it. The trade buys the
/// exactness-for-any-filter property above, which is what lets batch and
/// streaming share one refinement.
///
/// # Panics
///
/// When consecutive partitions do not share their boundary tick — the
/// contract [`trajectory::TimePartition`] and the streaming tracker both
/// satisfy. (A silent gap would pair later ticks with the wrong snapshots.)
pub fn refine_partitions(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    partitions: &[PartitionClusters],
) -> (Vec<Convoy>, CmcStats) {
    refine_partitions_obs(db, query, partitions, &Obs::noop())
}

/// Like [`refine_partitions`], recording the fold's `cmc.*` and `cluster.*`
/// metrics into `obs`. (The surrounding `discover.refine` span is the
/// caller's — [`crate::discovery::Discovery`] wraps this call.)
pub fn refine_partitions_obs(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    partitions: &[PartitionClusters],
    obs: &Obs,
) -> (Vec<Convoy>, CmcStats) {
    assert!(
        partitions
            .windows(2)
            .all(|w| w[0].window.end == w[1].window.start),
        "refine_partitions requires contiguous partitions sharing boundary ticks"
    );
    let (Some(first), Some(last)) = (partitions.first(), partitions.last()) else {
        return (Vec::new(), CmcStats::default());
    };
    let domain = TimeInterval::new(first.window.start, last.window.end);
    let mut sweep = SnapshotSweep::new(db, domain, SnapshotPolicy::Interpolate);
    let mut snapshot_at = |t: TimePoint, coverage: &BTreeSet<ObjectId>| -> Snapshot {
        // lint: allow(no-unwrap-in-lib) — the sweep domain is the hull of all folded windows, so it yields every tick
        let snapshot = sweep.next().expect("sweep covers every folded tick");
        debug_assert_eq!(snapshot.time, t);
        restrict_snapshot(snapshot, coverage)
    };
    let mut fold = RefineFold::new(query);
    fold.set_obs(obs.clone());
    for partition in partitions {
        fold.push_partition(partition, &mut snapshot_at);
    }
    let outcome = fold.finish(&mut snapshot_at);
    (outcome.convoys, outcome.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_cluster::Cluster;
    use trajectory::{ObjectId, Trajectory};

    fn db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        // Objects 0, 1 together for t ∈ [0, 19]; object 2 only nearby for t ∈ [0, 9].
        db.insert(
            ObjectId(0),
            Trajectory::from_tuples((0..20).map(|t| (t as f64, 0.0, t))).unwrap(),
        );
        db.insert(
            ObjectId(1),
            Trajectory::from_tuples((0..20).map(|t| (t as f64, 0.5, t))).unwrap(),
        );
        db.insert(
            ObjectId(2),
            Trajectory::from_tuples((0..20).map(|t| {
                let y = if t < 10 { 1.0 } else { 200.0 };
                (t as f64, y, t)
            }))
            .unwrap(),
        );
        db
    }

    fn cluster(ids: &[u64]) -> Cluster {
        Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect())
    }

    #[test]
    fn refinement_verifies_and_trims_a_candidate() {
        let db = db();
        let query = ConvoyQuery::new(2, 5, 1.5);
        // An over-approximate candidate containing all three objects over the
        // whole domain (what a coarse filter might emit).
        let candidate = CandidateConvoy::new(cluster(&[0, 1, 2]), 0, 19);
        let refined = refine_candidate(&db, &query, &candidate);
        // The refinement (windowed CMC) discovers the pair convoy over the
        // full window; the shrinking {0,1,2}→{0,1} candidate follows the
        // paper's Algorithm 1 semantics and is absorbed into it.
        assert!(refined
            .iter()
            .any(|c| c.objects.len() == 2 && c.start == 0 && c.end == 19));
        // Every refined convoy satisfies the query constraints.
        assert!(refined.iter().all(|c| c.satisfies(&query)));
    }

    #[test]
    fn refinement_rejects_a_false_candidate() {
        let db = db();
        let query = ConvoyQuery::new(2, 15, 1.5);
        // Objects 0 and 2 are never together for 15 consecutive ticks.
        let candidate = CandidateConvoy::new(cluster(&[0, 2]), 0, 19);
        assert!(refine_candidate(&db, &query, &candidate).is_empty());
    }

    #[test]
    fn refinement_is_windowed() {
        let db = db();
        let query = ConvoyQuery::new(2, 3, 1.5);
        let candidate = CandidateConvoy::new(cluster(&[0, 1]), 5, 9);
        let refined = refine_candidate(&db, &query, &candidate);
        assert_eq!(refined.len(), 1);
        assert_eq!(refined[0].start, 5);
        assert_eq!(refined[0].end, 9);
    }

    #[test]
    fn refine_concatenates_all_candidates() {
        let db = db();
        let query = ConvoyQuery::new(2, 3, 1.5);
        let candidates = vec![
            CandidateConvoy::new(cluster(&[0, 1]), 0, 9),
            CandidateConvoy::new(cluster(&[0, 1, 2]), 0, 9),
        ];
        let refined = refine(&db, &query, &candidates);
        assert!(refined.len() >= 2);
    }

    #[test]
    fn coverage_fold_is_bit_identical_to_plain_cmc() {
        // The module-level exactness argument, checked on a real filter run:
        // refining the partition clusters with the coverage fold produces the
        // raw convoy sequence of full CMC — order included.
        use crate::cuts::filter::filter;
        use crate::cuts::{CutsConfig, CutsVariant};
        use crate::engine::CmcEngine;

        let db = db();
        let query = ConvoyQuery::new(2, 5, 1.5);
        for variant in CutsVariant::ALL {
            let output = filter(&db, &query, &CutsConfig::new(variant));
            let (refined, fold_stats) = refine_partitions(&db, &query, &output.partitions);
            let (reference, reference_stats) = CmcEngine::Swept.run_with_stats(&db, &query);
            assert_eq!(refined, reference, "{variant} coverage fold diverged");
            // Every tick of the domain is folded, so the counters match the
            // unrestricted run too.
            assert_eq!(fold_stats.ticks_ingested, reference_stats.ticks_ingested);
            assert_eq!(fold_stats.convoys_closed, reference_stats.convoys_closed);
        }
    }

    #[test]
    fn coverage_fold_handles_empty_and_single_tick_inputs() {
        let query = ConvoyQuery::new(2, 1, 1.5);
        let empty_db = TrajectoryDatabase::new();
        let (convoys, stats) = refine_partitions(&empty_db, &query, &[]);
        assert!(convoys.is_empty());
        assert_eq!(stats, crate::engine::CmcStats::default());

        // A single-tick domain: the sole partition's start and end coincide;
        // the fold must ingest that tick exactly once.
        let mut db = TrajectoryDatabase::new();
        for i in 0..2u64 {
            db.insert(
                ObjectId(i),
                Trajectory::from_tuples([(i as f64 * 0.5, 0.0, 5)]).unwrap(),
            );
        }
        let partitions = vec![crate::cuts::partition::PartitionClusters {
            window: trajectory::TimeInterval::instant(5),
            clusters: vec![cluster(&[0, 1])],
        }];
        let (convoys, stats) = refine_partitions(&db, &query, &partitions);
        assert_eq!(stats.ticks_ingested, 1);
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].interval(), trajectory::TimeInterval::instant(5));
    }

    #[test]
    fn restrict_snapshot_keeps_only_covered_objects() {
        use std::collections::BTreeSet;
        let db = db();
        let snapshot = db.snapshot(0, trajectory::SnapshotPolicy::Interpolate);
        assert_eq!(snapshot.len(), 3);
        let coverage: BTreeSet<ObjectId> = [ObjectId(0), ObjectId(2)].into_iter().collect();
        let restricted = restrict_snapshot(snapshot, &coverage);
        let ids: Vec<ObjectId> = restricted.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(2)]);
        assert_eq!(restricted.time, 0);
    }
}
