//! The CuTS refinement step (Algorithm 3 of the paper).
//!
//! For every candidate convoy produced by the filter, the refinement runs the
//! exact CMC algorithm restricted to the candidate's member objects and time
//! window, so the final result contains exactly the true convoys (no false
//! positives survive, and the filter guarantees no false dismissals).

use crate::candidate::CandidateConvoy;
use crate::cmc::cmc_windowed;
use crate::query::{Convoy, ConvoyQuery};
use trajectory::{TimeInterval, TrajectoryDatabase};

/// Refines one candidate: runs windowed CMC over the candidate's objects.
pub fn refine_candidate(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    candidate: &CandidateConvoy,
) -> Vec<Convoy> {
    let subset = db.subset(candidate.objects.iter());
    let window = TimeInterval::new(candidate.start, candidate.end);
    cmc_windowed(&subset, query, window)
}

/// Refines every candidate and concatenates the verified convoys.
///
/// The output may contain duplicate or dominated convoys when candidates
/// overlap; callers normalise with
/// [`crate::query::normalize_convoys`] (the [`crate::discovery`] façade does
/// this automatically).
pub fn refine(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    candidates: &[CandidateConvoy],
) -> Vec<Convoy> {
    let mut out = Vec::new();
    for candidate in candidates {
        out.extend(refine_candidate(db, query, candidate));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_cluster::Cluster;
    use trajectory::{ObjectId, Trajectory};

    fn db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        // Objects 0, 1 together for t ∈ [0, 19]; object 2 only nearby for t ∈ [0, 9].
        db.insert(
            ObjectId(0),
            Trajectory::from_tuples((0..20).map(|t| (t as f64, 0.0, t))).unwrap(),
        );
        db.insert(
            ObjectId(1),
            Trajectory::from_tuples((0..20).map(|t| (t as f64, 0.5, t))).unwrap(),
        );
        db.insert(
            ObjectId(2),
            Trajectory::from_tuples((0..20).map(|t| {
                let y = if t < 10 { 1.0 } else { 200.0 };
                (t as f64, y, t)
            }))
            .unwrap(),
        );
        db
    }

    fn cluster(ids: &[u64]) -> Cluster {
        Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect())
    }

    #[test]
    fn refinement_verifies_and_trims_a_candidate() {
        let db = db();
        let query = ConvoyQuery::new(2, 5, 1.5);
        // An over-approximate candidate containing all three objects over the
        // whole domain (what a coarse filter might emit).
        let candidate = CandidateConvoy::new(cluster(&[0, 1, 2]), 0, 19);
        let refined = refine_candidate(&db, &query, &candidate);
        // The refinement (windowed CMC) discovers the pair convoy over the
        // full window; the shrinking {0,1,2}→{0,1} candidate follows the
        // paper's Algorithm 1 semantics and is absorbed into it.
        assert!(refined
            .iter()
            .any(|c| c.objects.len() == 2 && c.start == 0 && c.end == 19));
        // Every refined convoy satisfies the query constraints.
        assert!(refined.iter().all(|c| c.satisfies(&query)));
    }

    #[test]
    fn refinement_rejects_a_false_candidate() {
        let db = db();
        let query = ConvoyQuery::new(2, 15, 1.5);
        // Objects 0 and 2 are never together for 15 consecutive ticks.
        let candidate = CandidateConvoy::new(cluster(&[0, 2]), 0, 19);
        assert!(refine_candidate(&db, &query, &candidate).is_empty());
    }

    #[test]
    fn refinement_is_windowed() {
        let db = db();
        let query = ConvoyQuery::new(2, 3, 1.5);
        let candidate = CandidateConvoy::new(cluster(&[0, 1]), 5, 9);
        let refined = refine_candidate(&db, &query, &candidate);
        assert_eq!(refined.len(), 1);
        assert_eq!(refined[0].start, 5);
        assert_eq!(refined[0].end, 9);
    }

    #[test]
    fn refine_concatenates_all_candidates() {
        let db = db();
        let query = ConvoyQuery::new(2, 3, 1.5);
        let candidates = vec![
            CandidateConvoy::new(cluster(&[0, 1]), 0, 9),
            CandidateConvoy::new(cluster(&[0, 1, 2]), 0, 9),
        ];
        let refined = refine(&db, &query, &candidates);
        assert!(refined.len() >= 2);
    }
}
