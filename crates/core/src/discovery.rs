//! The discovery façade: one entry point that runs either CMC or a CuTS
//! variant, times every stage, and returns a normalised result set together
//! with the statistics the benchmark harness consumes.

use crate::cuts::filter::{filter_simplified, simplify_database};
use crate::cuts::refine::refine_partitions_obs;
use crate::cuts::{CutsConfig, CutsVariant};
use crate::engine::CmcEngine;
use crate::metrics::{refinement_unit, DiscoveryStats, StageTimings};
use crate::params::auto_delta;
use crate::query::{normalize_convoys, Convoy, ConvoyQuery};
use convoy_obs::{Obs, SpanId};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use trajectory::{TimeInterval, TrajectoryDatabase, TrajectorySource};

/// Which discovery algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// The CMC baseline (Algorithm 1).
    Cmc,
    /// CuTS: DP simplification with `DLL` bounds.
    Cuts,
    /// CuTS+: DP+ simplification with `DLL` bounds.
    CutsPlus,
    /// CuTS*: DP* simplification with `D*` bounds.
    CutsStar,
}

impl Method {
    /// All methods in the order the paper's figures list them.
    pub const ALL: [Method; 4] = [
        Method::Cmc,
        Method::Cuts,
        Method::CutsPlus,
        Method::CutsStar,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Cmc => "CMC",
            Method::Cuts => "CuTS",
            Method::CutsPlus => "CuTS+",
            Method::CutsStar => "CuTS*",
        }
    }

    /// The CuTS variant corresponding to this method, when it is one.
    pub fn cuts_variant(&self) -> Option<CutsVariant> {
        match self {
            Method::Cmc => None,
            Method::Cuts => Some(CutsVariant::Cuts),
            Method::CutsPlus => Some(CutsVariant::CutsPlus),
            Method::CutsStar => Some(CutsVariant::CutsStar),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of one discovery run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryOutcome {
    /// The method that produced the result.
    pub method: Method,
    /// The normalised convoy result set.
    pub convoys: Vec<Convoy>,
    /// Wall-clock timings per stage.
    pub timings: StageTimings,
    /// Candidate / parameter statistics.
    pub stats: DiscoveryStats,
}

/// A configured convoy-discovery run.
#[derive(Debug, Clone)]
pub struct Discovery {
    method: Method,
    config: CutsConfig,
    cmc_engine: CmcEngine,
    obs: Obs,
}

impl Discovery {
    /// Creates a discovery run for `method` with automatic parameter
    /// selection. CMC runs on the swept streaming engine by default.
    pub fn new(method: Method) -> Self {
        let variant = method.cuts_variant().unwrap_or(CutsVariant::Cuts);
        Discovery {
            method,
            config: CutsConfig::new(variant),
            cmc_engine: CmcEngine::default(),
            obs: Obs::noop(),
        }
    }

    /// Attaches a metrics recorder: the run emits a `discover` root span
    /// with one child span per stage (`discover.simplify` / `discover.filter`
    /// / `discover.refine` for the CuTS family, the engine's span tree for
    /// CMC) plus the `cmc.*` / `cluster.*` metrics of whatever fold executes.
    /// The default is the no-op recorder.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Overrides the CuTS configuration (ignored for CMC).
    #[must_use]
    pub fn with_config(mut self, config: CutsConfig) -> Self {
        self.config = CutsConfig {
            variant: self.method.cuts_variant().unwrap_or(config.variant),
            ..config
        };
        self
    }

    /// Selects the CMC execution engine (per-tick baseline, swept streaming,
    /// time-partitioned parallel, or spatially sharded). Ignored by the CuTS
    /// methods, whose refinement windows are too short to benefit from
    /// partitioning.
    #[must_use]
    pub fn with_cmc_engine(mut self, engine: CmcEngine) -> Self {
        self.cmc_engine = engine;
        self
    }

    /// The method this run executes.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The CuTS configuration this run uses.
    pub fn config(&self) -> &CutsConfig {
        &self.config
    }

    /// The engine a CMC run uses.
    pub fn cmc_engine(&self) -> CmcEngine {
        self.cmc_engine
    }

    /// Loads a database from any [`TrajectorySource`] backend and executes
    /// the discovery on it. The result is byte-identical across backends:
    /// a source's only job is to materialise the same database the CSV
    /// reader would.
    pub fn run_source(
        &self,
        source: &mut dyn TrajectorySource,
        query: &ConvoyQuery,
    ) -> trajectory::Result<DiscoveryOutcome> {
        Ok(self.run(&source.load()?, query))
    }

    /// Like [`Discovery::run_source`], but restricted to the samples inside
    /// `window` — block-indexed backends read only the touched blocks. The
    /// windowed contract is sample-selecting (see
    /// [`TrajectorySource::load_window`]), so the outcome equals running on
    /// `load()?.restrict(window)` regardless of backend.
    pub fn run_source_window(
        &self,
        source: &mut dyn TrajectorySource,
        query: &ConvoyQuery,
        window: TimeInterval,
    ) -> trajectory::Result<DiscoveryOutcome> {
        Ok(self.run(&source.load_window(window)?, query))
    }

    /// Executes the discovery and returns the normalised result set together
    /// with timings and statistics.
    pub fn run(&self, db: &TrajectoryDatabase, query: &ConvoyQuery) -> DiscoveryOutcome {
        let root = self.obs.span_start("discover", SpanId::NONE);
        let outcome = self.run_under(db, query, root);
        self.obs.span_end(root);
        outcome
    }

    fn run_under(
        &self,
        db: &TrajectoryDatabase,
        query: &ConvoyQuery,
        root: SpanId,
    ) -> DiscoveryOutcome {
        match self.method {
            Method::Cmc => {
                let started = Instant::now();
                let (raw, fold) = self
                    .cmc_engine
                    .run_with_stats_obs(db, query, &self.obs, root);
                let filter_time = started.elapsed();
                let convoys = normalize_convoys(raw, query);
                DiscoveryOutcome {
                    method: self.method,
                    stats: DiscoveryStats {
                        num_convoys: convoys.len(),
                        fold,
                        ..DiscoveryStats::default()
                    },
                    convoys,
                    timings: StageTimings {
                        filter: filter_time,
                        ..StageTimings::default()
                    },
                }
            }
            Method::Cuts | Method::CutsPlus | Method::CutsStar => {
                // Stage 1: simplification.
                let delta = self.config.delta.unwrap_or_else(|| auto_delta(db, query.e));
                let simplify_span = self.obs.span_start("discover.simplify", root);
                let simplify_started = Instant::now();
                let simplified = simplify_database(db, &self.config, delta);
                let simplification = simplify_started.elapsed();
                self.obs.span_end(simplify_span);

                // Stage 2: filter (partitioned clustering of simplified
                // sub-trajectories).
                let filter_span = self.obs.span_start("discover.filter", root);
                let filter_started = Instant::now();
                let output = filter_simplified(&simplified, db, query, &self.config, delta);
                let filter_time = filter_started.elapsed();
                self.obs.span_end(filter_span);

                // Stage 3: refinement — the coverage-restricted CmcState
                // fold over the partition clusters (shared with the
                // streaming pipeline; see `cuts::refine` for the exactness
                // argument).
                let refine_span = self.obs.span_start("discover.refine", root);
                let refine_started = Instant::now();
                let (raw, fold) = refine_partitions_obs(db, query, &output.partitions, &self.obs);
                let refinement = refine_started.elapsed();
                self.obs.span_end(refine_span);

                let convoys = normalize_convoys(raw, query);
                DiscoveryOutcome {
                    method: self.method,
                    stats: DiscoveryStats {
                        num_candidates: output.candidates.len(),
                        refinement_units: refinement_unit(&output.candidates),
                        num_convoys: convoys.len(),
                        delta: output.delta,
                        lambda: output.lambda,
                        reduction_percent: output.reduction_percent(),
                        fold,
                    },
                    convoys,
                    timings: StageTimings {
                        simplification,
                        filter: filter_time,
                        refinement,
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::result_sets_equivalent;
    use trajectory::{ObjectId, Trajectory};

    /// Two convoys of different shapes plus background noise objects.
    fn scenario_db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        let mut next_id = 0u64;
        // Convoy A: 3 objects drifting north-east for the whole domain.
        for lane in 0..3 {
            let traj = Trajectory::from_tuples((0..40).map(|t| {
                (
                    t as f64 + (lane as f64) * 0.3,
                    t as f64 * 0.5 + lane as f64 * 0.4,
                    t,
                )
            }))
            .unwrap();
            db.insert(ObjectId(next_id), traj);
            next_id += 1;
        }
        // Convoy B: 4 objects circling a roundabout only during [10, 30].
        for lane in 0..4 {
            let traj = Trajectory::from_tuples((0..40).map(|t| {
                if (10..=30).contains(&t) {
                    let angle = t as f64 * 0.2;
                    (
                        200.0 + angle.cos() * 3.0 + lane as f64 * 0.3,
                        200.0 + angle.sin() * 3.0,
                        t,
                    )
                } else {
                    // Scattered before and after.
                    (
                        200.0 + lane as f64 * 50.0 + t as f64,
                        400.0 + lane as f64 * 30.0,
                        t,
                    )
                }
            }))
            .unwrap();
            db.insert(ObjectId(next_id), traj);
            next_id += 1;
        }
        // Noise: 5 independent wanderers.
        for w in 0..5i64 {
            let traj = Trajectory::from_tuples((0..40).map(|t| {
                (
                    -300.0 - (w as f64) * 40.0 + (t as f64) * ((w % 3) as f64 - 1.0),
                    -300.0 + (w as f64) * 35.0 + t as f64,
                    t,
                )
            }))
            .unwrap();
            db.insert(ObjectId(next_id + w as u64), traj);
        }
        db
    }

    #[test]
    fn all_methods_agree_on_the_result_set() {
        let db = scenario_db();
        let query = ConvoyQuery::new(3, 10, 2.0);
        let reference = Discovery::new(Method::Cmc).run(&db, &query);
        assert!(
            !reference.convoys.is_empty(),
            "the scenario must contain at least one convoy"
        );
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            let outcome = Discovery::new(method).run(&db, &query);
            assert!(
                result_sets_equivalent(&outcome.convoys, &reference.convoys),
                "{method} disagreed with CMC:\n  {:?}\nvs reference\n  {:?}",
                outcome.convoys,
                reference.convoys
            );
        }
    }

    #[test]
    fn cmc_engines_agree_through_the_facade() {
        let db = scenario_db();
        let query = ConvoyQuery::new(3, 10, 2.0);
        let reference = Discovery::new(Method::Cmc)
            .with_cmc_engine(CmcEngine::PerTick)
            .run(&db, &query);
        assert!(!reference.convoys.is_empty());
        for engine in [
            CmcEngine::Swept,
            CmcEngine::Parallel { threads: 2 },
            CmcEngine::Parallel { threads: 5 },
            CmcEngine::Sharded { shards: 4 },
            CmcEngine::Sharded { shards: 9 },
        ] {
            let outcome = Discovery::new(Method::Cmc)
                .with_cmc_engine(engine)
                .run(&db, &query);
            assert_eq!(
                outcome.convoys,
                reference.convoys,
                "{} engine disagreed with per-tick",
                engine.name()
            );
        }
        assert_eq!(
            Discovery::new(Method::Cmc).cmc_engine(),
            CmcEngine::Swept,
            "streaming sweep is the default engine"
        );
    }

    #[test]
    fn cuts_outcome_reports_stage_statistics() {
        let db = scenario_db();
        let query = ConvoyQuery::new(3, 10, 2.0);
        let outcome = Discovery::new(Method::CutsStar).run(&db, &query);
        assert!(outcome.stats.num_candidates > 0);
        assert!(outcome.stats.refinement_units > 0.0);
        assert!(outcome.stats.delta > 0.0);
        assert!(outcome.stats.lambda >= 2);
        assert_eq!(outcome.stats.num_convoys, outcome.convoys.len());
        assert!(outcome.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn cmc_outcome_has_no_filter_statistics() {
        let db = scenario_db();
        let query = ConvoyQuery::new(3, 10, 2.0);
        let outcome = Discovery::new(Method::Cmc).run(&db, &query);
        assert_eq!(outcome.stats.num_candidates, 0);
        assert_eq!(outcome.stats.refinement_units, 0.0);
        assert_eq!(outcome.timings.simplification, std::time::Duration::ZERO);
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::Cmc.name(), "CMC");
        assert_eq!(Method::CutsStar.to_string(), "CuTS*");
        assert_eq!(Method::Cmc.cuts_variant(), None);
        assert_eq!(Method::CutsPlus.cuts_variant(), Some(CutsVariant::CutsPlus));
        assert_eq!(Method::ALL.len(), 4);
    }

    #[test]
    fn with_config_keeps_the_method_variant() {
        let discovery = Discovery::new(Method::CutsStar)
            .with_config(CutsConfig::new(CutsVariant::Cuts).with_delta(1.0));
        assert_eq!(discovery.config().variant, CutsVariant::CutsStar);
        assert_eq!(discovery.config().delta, Some(1.0));
        assert_eq!(discovery.method(), Method::CutsStar);
    }
}
