//! The streaming + parallel convoy engine.
//!
//! Algorithm 1 (CMC) is both the exact baseline and the inner loop of CuTS
//! refinement, so this module factors it into composable pieces:
//!
//! * [`CmcState`] — the incremental core: ingest one snapshot (or one tick's
//!   clusters), emit the convoys that closed at that tick. `cmc_windowed`,
//!   the refinement step, the parallel driver and streaming ingest all fold
//!   through this one state machine, so there is a single implementation of
//!   the candidate bookkeeping (including the per-step candidate
//!   de-duplication).
//! * [`CmcEngine`] — the execution strategy: legacy per-tick snapshot
//!   extraction, the swept single-pass cursor, the time-partitioned
//!   parallel driver, or the spatially sharded driver
//!   ([`crate::shard`]).
//! * [`cmc_parallel_windowed`] — the parallel driver. The time domain is
//!   split into one contiguous partition per thread; each worker streams its
//!   partition with a [`SnapshotSweep`] and density-clusters every tick (the
//!   measured hot path of CMC). The per-tick clusters are then folded through
//!   a single [`CmcState`] in time order, which stitches candidate chains
//!   across partition boundaries: a chain open at the end of partition *z*
//!   simply keeps extending into the clusters of partition *z + 1*.
//!
//! Why the fold is sequential: Algorithm 1 starts a fresh candidate from a
//! cluster only when the cluster extended **no** existing candidate, so chain
//! creation depends on every candidate alive at that tick — including chains
//! begun in earlier partitions. Folding partitions independently and joining
//! their candidate sets afterwards can therefore both invent chains the
//! sequential algorithm never starts and miss convoys whose chains die midway
//! through a partition. Clustering carries no such coupling, which is exactly
//! why the expensive stage parallelises cleanly while the (cheap) fold keeps
//! the paper's semantics bit-for-bit.

use crate::candidate::CandidateConvoy;
use crate::query::{Convoy, ConvoyQuery};
use convoy_obs::{Obs, SpanId};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use traj_cluster::{Cluster, SnapshotClusterer};
use trajectory::{
    Snapshot, SnapshotPolicy, SnapshotSweep, TimeInterval, TimePoint, TrajectoryDatabase,
};

/// The incremental CMC state machine: ingest snapshots (or pre-clustered
/// ticks) in time order, collect the convoys whose candidate chains close.
///
/// This is Algorithm 1 with the loop turned inside out, which is what makes
/// it usable beyond the batch setting: an unbounded feed (a live position
/// stream) can push one snapshot at a time and drain closed convoys as they
/// are discovered, without the whole time domain ever being materialized.
///
/// Time points must be ingested in increasing order. A tick with no clusters
/// closes every open candidate, exactly like an empty snapshot in the batch
/// algorithm — and a *skipped* tick (a feed outage) is treated the same way,
/// so no convoy ever spans time points the state never observed.
///
/// ```
/// use convoy_core::{CmcState, ConvoyQuery};
/// use trajectory::{ObjectId, SnapshotPolicy, Trajectory, TrajectoryDatabase};
///
/// let mut db = TrajectoryDatabase::new();
/// for i in 0..3u64 {
///     let traj = Trajectory::from_tuples(
///         (0..8).map(|t| (t as f64, i as f64 * 0.5, t as i64))).unwrap();
///     db.insert(ObjectId(i), traj);
/// }
/// let mut state = CmcState::new(&ConvoyQuery::new(3, 4, 1.5));
/// for snapshot in db.sweep(SnapshotPolicy::Interpolate) {
///     state.ingest_snapshot(&snapshot);
/// }
/// let convoys = state.finish();
/// assert_eq!(convoys.len(), 1);
/// assert_eq!(convoys[0].lifetime(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct CmcState {
    query: ConvoyQuery,
    current: Vec<CandidateConvoy>,
    closed: Vec<Convoy>,
    peak_candidates: usize,
    last_tick: Option<TimePoint>,
    ticks_ingested: u64,
    gap_closures: u64,
    convoys_closed: u64,
    /// Reusable snapshot-clustering scratch: one grid index + DBSCAN state
    /// per fold, so [`CmcState::ingest_snapshot`] allocates nothing in
    /// steady state.
    clusterer: SnapshotClusterer,
    /// Double buffer for the per-tick candidate turnover (swapped with
    /// `current` at the end of every [`CmcState::ingest_clusters`]).
    next: Vec<CandidateConvoy>,
    /// Per-tick dedup index over `next`: hash of `(objects, start)` → first
    /// `next` index with that hash; `dedup_chain[i]` links further entries
    /// sharing the hash (`u32::MAX` terminates). Exact — a hash hit is
    /// always confirmed by full equality — but clone-free, unlike the old
    /// `HashSet<(Cluster, TimePoint)>` which cloned every candidate's
    /// object vector per tick.
    dedup_heads: HashMap<u64, u32>,
    dedup_chain: Vec<u32>,
    /// Per-tick "cluster extended some candidate" flags.
    assigned: Vec<bool>,
    /// Recorder for the `cmc.*` fold metrics (no-op by default; one branch
    /// per tick when disabled, so the hot-path contract holds either way).
    obs: Obs,
    /// Nanoseconds this state has spent density-clustering snapshots
    /// (accumulated only while the recorder is live; the engines re-lay it
    /// as the `cmc.cluster` stage span).
    cluster_ns: u64,
}

/// Counters describing a [`CmcState`]'s life so far — the observability
/// surface for long or unbounded feeds, where the interesting questions are
/// "how big did the working set get", "how much of the stream have we seen"
/// and "how often did feed outages cut chains short".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CmcStats {
    /// Largest number of simultaneously open candidate chains observed (a
    /// bound on the per-tick working set; see
    /// [`CmcState::peak_candidates`]).
    pub peak_candidates: usize,
    /// Number of ticks ingested via [`CmcState::ingest_snapshot`] /
    /// [`CmcState::ingest_clusters`].
    pub ticks_ingested: u64,
    /// Number of candidate chains force-closed because a tick was *skipped*
    /// (the feed-outage path): an unobserved tick closes every open chain,
    /// whether or not it qualified as a convoy.
    pub gap_closures: u64,
    /// Total convoys that satisfied the lifetime constraint and closed,
    /// including ones already taken by [`CmcState::drain_closed`].
    pub convoys_closed: u64,
}

/// A serializable view of a [`CmcState`]'s resumable state: the open
/// candidate chains, the not-yet-drained output, and the lifetime counters.
/// Per-tick scratch (the clusterer, the dedup index, the double buffer) is
/// deliberately absent — a restored state rebuilds it empty, which is
/// output-neutral.
#[derive(Debug, Clone, PartialEq)]
pub struct CmcStateSnapshot {
    /// Open candidate chains, in fold order.
    pub current: Vec<CandidateConvoy>,
    /// Convoys closed but not yet drained.
    pub closed: Vec<Convoy>,
    /// Largest number of simultaneously open chains observed.
    pub peak_candidates: usize,
    /// The last ingested tick.
    pub last_tick: Option<TimePoint>,
    /// Number of ticks ingested so far.
    pub ticks_ingested: u64,
    /// Chains force-closed by feed gaps.
    pub gap_closures: u64,
    /// Convoys closed over the state's lifetime.
    pub convoys_closed: u64,
}

impl CmcState {
    /// Creates an empty state for `query`.
    pub fn new(query: &ConvoyQuery) -> Self {
        CmcState {
            query: *query,
            current: Vec::new(),
            closed: Vec::new(),
            peak_candidates: 0,
            last_tick: None,
            ticks_ingested: 0,
            gap_closures: 0,
            convoys_closed: 0,
            clusterer: SnapshotClusterer::new(),
            next: Vec::new(),
            dedup_heads: HashMap::new(),
            dedup_chain: Vec::new(),
            assigned: Vec::new(),
            obs: Obs::noop(),
            cluster_ns: 0,
        }
    }

    /// Attaches a metrics recorder: per-tick `cmc.*` counters, gauges and
    /// histograms, plus the `cluster.*` metrics of the internal
    /// [`SnapshotClusterer`] (call/point/cluster totals, the per-call
    /// latency histogram, and the batched-kernel utilisation pair
    /// `cluster.kernel_batches` / `cluster.kernel_lanes`). The default is
    /// the no-op recorder, which keeps every instrumented path at a single
    /// branch.
    pub fn set_obs(&mut self, obs: Obs) {
        self.clusterer.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Nanoseconds spent density-clustering so far (0 unless a live recorder
    /// is attached). The engines subtract this from their fold total to
    /// split the `cmc.cluster` and `cmc.fold` stage spans.
    pub fn cluster_time_ns(&self) -> u64 {
        self.cluster_ns
    }

    /// Ingests the snapshot of one time point: density-clusters it and folds
    /// the clusters into the candidate chains. The clustering reuses the
    /// state's internal [`SnapshotClusterer`], so a long-lived fold stops
    /// allocating once its buffers reach the stream's working-set size.
    pub fn ingest_snapshot(&mut self, snapshot: &Snapshot) {
        if snapshot.len() < self.query.m {
            self.ingest_clusters(snapshot.time, &[]);
            return;
        }
        // Detach the clusterer so its borrowed output can be fed back into
        // `self` (a plain move of empty-capacity headers, no allocation).
        let mut clusterer = std::mem::take(&mut self.clusterer);
        let live = self.obs.enabled();
        let started_ns = if live { self.obs.now_ns() } else { 0 };
        let clusters = clusterer.cluster_into(snapshot, self.query.e, self.query.m);
        if live {
            self.cluster_ns = self
                .cluster_ns
                .saturating_add(self.obs.now_ns().saturating_sub(started_ns));
        }
        self.ingest_clusters(snapshot.time, clusters);
        self.clusterer = clusterer;
    }

    /// Folds one tick's clusters into the candidate chains (Algorithm 1,
    /// lines 5–11). Candidates that fail to extend and satisfy the lifetime
    /// constraint are moved to the closed set.
    ///
    /// Candidates are de-duplicated per step on `(objects, start)`: two
    /// chains that converge to the same member set and begin at the same
    /// tick are indistinguishable from that point on, so keeping both would
    /// multiply the candidate set every subsequent tick. Disjoint DBSCAN
    /// partitions never converge this way, but this entry point accepts
    /// *arbitrary* cluster lists (overlapping communities, merged partition
    /// clusters, hand-fed streams), where the blow-up is real.
    ///
    /// Ticks must arrive in strictly increasing order (debug-asserted). A
    /// **gap** — `t` more than one tick after the previous ingest, e.g. a
    /// live feed dropping ticks during an outage — closes every open
    /// candidate first: an unobserved tick has no clusters, and a convoy must
    /// be density-connected at *every* time point of its interval, so no
    /// chain may silently span ticks the state never saw.
    // lint: hot-path — the per-tick fold reuses its scratch buffers; steady state must not allocate
    pub fn ingest_clusters(&mut self, t: TimePoint, clusters: &[Cluster]) {
        if let Some(last) = self.last_tick {
            debug_assert!(last < t, "ticks must be ingested in increasing order");
            if t > last + 1 {
                self.gap_closures += self.current.len() as u64;
                self.close_all_candidates();
            }
        }
        self.last_tick = Some(t);
        self.ticks_ingested = self.ticks_ingested.saturating_add(1);

        self.next.clear();
        self.dedup_heads.clear();
        self.dedup_chain.clear();
        self.assigned.clear();
        self.assigned.resize(clusters.len(), false);
        let k = self.query.k as i64;
        let m = self.query.m;

        for candidate in self.current.drain(..) {
            let mut extended = false;
            for (ci, cluster) in clusters.iter().enumerate() {
                if let Some(grown) = candidate.extend_with(cluster, t, m) {
                    extended = true;
                    self.assigned[ci] = true;
                    if dedup_register(
                        &mut self.dedup_heads,
                        &mut self.dedup_chain,
                        &self.next,
                        &grown.objects,
                        grown.start,
                    ) {
                        self.next.push(grown);
                    }
                }
            }
            if !extended && candidate.lifetime() >= k {
                self.closed.push(candidate.into_convoy());
                self.convoys_closed += 1;
            }
        }

        for (ci, cluster) in clusters.iter().enumerate() {
            if !self.assigned[ci]
                && dedup_register(
                    &mut self.dedup_heads,
                    &mut self.dedup_chain,
                    &self.next,
                    cluster,
                    t,
                )
            {
                // The clone is the candidate's own member storage (the
                // dedup check above runs on the borrowed cluster, so
                // duplicates never allocate).
                // lint: allow(no-alloc-hot-path) — fresh candidates own their members; deduped ticks stay clean
                self.next.push(CandidateConvoy::new(cluster.clone(), t, t));
            }
        }

        std::mem::swap(&mut self.current, &mut self.next);
        self.peak_candidates = self.peak_candidates.max(self.current.len());

        if self.obs.enabled() {
            // All names are pre-registered after the first tick, so the
            // steady state of a live registry allocates nothing here.
            self.obs.counter_add("cmc.ticks_ingested", 1);
            self.obs
                .histogram_record("cmc.clusters_per_tick", clusters.len() as u64);
            self.obs
                .histogram_record("cmc.candidates_per_tick", self.current.len() as u64);
            let open = i64::try_from(self.current.len()).unwrap_or(i64::MAX);
            self.obs.gauge_set("cmc.candidates_open", open);
            self.obs.gauge_max("cmc.peak_candidates", open);
        }
    }

    /// Closes every open candidate (what an empty tick does), reporting the
    /// ones that satisfy the lifetime constraint.
    fn close_all_candidates(&mut self) {
        for candidate in std::mem::take(&mut self.current) {
            if candidate.lifetime() >= self.query.k as i64 {
                self.closed.push(candidate.into_convoy());
                self.convoys_closed += 1;
            }
        }
    }

    /// Number of candidate chains currently open.
    pub fn active_candidates(&self) -> usize {
        self.current.len()
    }

    /// The largest number of simultaneously open candidate chains observed so
    /// far (a bound on the per-tick working set).
    pub fn peak_candidates(&self) -> usize {
        self.peak_candidates
    }

    /// The state's lifetime counters: peak working-set size, ticks ingested,
    /// chains force-closed by feed gaps, and convoys closed so far. Cheap to
    /// call at any point of a stream (counters survive
    /// [`CmcState::drain_closed`]).
    pub fn stats(&self) -> CmcStats {
        CmcStats {
            peak_candidates: self.peak_candidates,
            ticks_ingested: self.ticks_ingested,
            gap_closures: self.gap_closures,
            convoys_closed: self.convoys_closed,
        }
    }

    /// Takes the convoys that have closed since the last drain, leaving the
    /// open candidates untouched. This is the streaming consumption path: an
    /// unbounded feed ingests ticks forever and drains results periodically.
    pub fn drain_closed(&mut self) -> Vec<Convoy> {
        std::mem::take(&mut self.closed)
    }

    /// Force-closes every open candidate whose lifetime has reached
    /// `max_lifetime` ticks, reporting the ones that satisfy `k`. Returns the
    /// number of candidates closed.
    ///
    /// This is the horizon half of windowed eviction on an unbounded feed:
    /// called *before* a tick extends the chains, it guarantees no open (and
    /// hence no reported) chain ever exceeds `max_lifetime` ticks, bounding
    /// both memory and result latency. A candidate at exactly the horizon is
    /// closed intact, not dropped.
    pub fn evict_longer_than(&mut self, max_lifetime: i64) -> usize {
        let k = self.query.k as i64;
        let current = std::mem::take(&mut self.current);
        let mut evicted = 0;
        for candidate in current {
            if candidate.lifetime() >= max_lifetime {
                evicted += 1;
                if candidate.lifetime() >= k {
                    self.closed.push(candidate.into_convoy());
                    self.convoys_closed += 1;
                }
            } else {
                self.current.push(candidate);
            }
        }
        evicted
    }

    /// Force-closes the oldest open candidates (smallest start, ties broken
    /// by insertion order) until at most `max_candidates` remain, reporting
    /// the ones that satisfy `k`. Returns the number closed.
    ///
    /// This is the backpressure half of windowed eviction: a burst of
    /// overlapping clusters cannot grow the working set beyond the
    /// configured bound.
    pub fn evict_to_capacity(&mut self, max_candidates: usize) -> usize {
        if self.current.len() <= max_candidates {
            return 0;
        }
        let excess = self.current.len() - max_candidates;
        // Indices of the `excess` oldest candidates, deterministic under ties.
        let mut by_age: Vec<usize> = (0..self.current.len()).collect();
        by_age.sort_by_key(|&i| (self.current[i].start, i));
        let mut doomed = vec![false; self.current.len()];
        for &i in by_age.iter().take(excess) {
            doomed[i] = true;
        }
        let k = self.query.k as i64;
        let current = std::mem::take(&mut self.current);
        for (i, candidate) in current.into_iter().enumerate() {
            if doomed[i] {
                if candidate.lifetime() >= k {
                    self.closed.push(candidate.into_convoy());
                    self.convoys_closed += 1;
                }
            } else {
                self.current.push(candidate);
            }
        }
        excess
    }

    /// Exports the resumable state for checkpointing. The inverse of
    /// [`CmcState::from_state`]: `from_state(q, s.export_state())` continues
    /// bit-identically to `s` under the same ingest sequence.
    pub fn export_state(&self) -> CmcStateSnapshot {
        CmcStateSnapshot {
            current: self.current.clone(),
            closed: self.closed.clone(),
            peak_candidates: self.peak_candidates,
            last_tick: self.last_tick,
            ticks_ingested: self.ticks_ingested,
            gap_closures: self.gap_closures,
            convoys_closed: self.convoys_closed,
        }
    }

    /// Rebuilds a state for `query` from an exported view, with fresh (empty)
    /// scratch buffers.
    pub fn from_state(query: &ConvoyQuery, snapshot: CmcStateSnapshot) -> Self {
        let mut state = CmcState::new(query);
        state.current = snapshot.current;
        state.closed = snapshot.closed;
        state.peak_candidates = snapshot.peak_candidates;
        state.last_tick = snapshot.last_tick;
        state.ticks_ingested = snapshot.ticks_ingested;
        state.gap_closures = snapshot.gap_closures;
        state.convoys_closed = snapshot.convoys_closed;
        state
    }

    /// Ends the stream: flushes candidates still open (the window boundary
    /// closes them) and returns every convoy not yet drained.
    pub fn finish(self) -> Vec<Convoy> {
        self.finish_with_stats().0
    }

    /// Like [`CmcState::finish`], but also returns the state's lifetime
    /// counters (which include the convoys closed by this final flush).
    pub fn finish_with_stats(mut self) -> (Vec<Convoy>, CmcStats) {
        self.close_all_candidates();
        let stats = self.stats();
        (self.closed, stats)
    }
}

/// Registers `(objects, start)` in a tick's candidate-dedup index. Returns
/// `true` when the pair was new — the caller must then push the candidate
/// onto `next` (the registration reserves exactly that index); `false`
/// means an equal candidate is already in `next`.
///
/// The index is a hash-head map plus an intra-`next` collision chain: a
/// hash hit is always confirmed by full `(objects, start)` equality against
/// the stored candidates, so the dedup is exact without ever cloning an
/// object vector into a set (the old `HashSet<(Cluster, TimePoint)>`
/// cloned every surviving candidate's members once per tick).
fn dedup_register(
    heads: &mut HashMap<u64, u32>,
    chain: &mut Vec<u32>,
    next: &[CandidateConvoy],
    objects: &Cluster,
    start: TimePoint,
) -> bool {
    debug_assert_eq!(chain.len(), next.len());
    let mut hasher = DefaultHasher::new();
    objects.members().hash(&mut hasher);
    start.hash(&mut hasher);
    // lint: allow(cast-audit) — candidate list length is bounded far below u32::MAX (object-count bound + eviction)
    let idx = next.len() as u32;
    match heads.entry(hasher.finish()) {
        Entry::Occupied(head) => {
            let mut i = *head.get();
            loop {
                let existing = &next[i as usize];
                if existing.start == start && existing.objects == *objects {
                    return false;
                }
                let link = chain[i as usize];
                if link == u32::MAX {
                    break;
                }
                i = link;
            }
            chain[i as usize] = idx;
            chain.push(u32::MAX);
            true
        }
        Entry::Vacant(slot) => {
            slot.insert(idx);
            chain.push(u32::MAX);
            true
        }
    }
}

/// How a CMC run extracts and processes snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CmcEngine {
    /// Re-extract every snapshot with a per-object binary search
    /// (`db.snapshot(t, …)` per tick). The paper-literal baseline, kept for
    /// benchmarking the engines against.
    PerTick,
    /// Stream snapshots from one sorted sweep over all samples
    /// ([`SnapshotSweep`]) and fold them incrementally. The default.
    #[default]
    Swept,
    /// Time-partitioned parallel clustering with stitched folding
    /// ([`cmc_parallel_windowed`]). `threads == 0` means "use all available
    /// cores".
    Parallel {
        /// Number of worker threads (0 = `std::thread::available_parallelism`).
        threads: usize,
    },
    /// Spatially sharded clustering with boundary-halo exchange and exact
    /// cluster merging ([`crate::shard::cmc_sharded_windowed`]). `shards == 0`
    /// means "one shard per available core".
    Sharded {
        /// Number of spatial shards (0 = one per core, clamped to
        /// [`crate::shard::MAX_SHARDS`]).
        shards: usize,
    },
}

/// Hard cap on worker threads spawned by the parallel driver. Partitioning
/// beyond this brings no speedup (the fold is sequential anyway) and an
/// unbounded user-supplied count would hit the OS thread limit and panic.
pub const MAX_PARALLEL_THREADS: usize = 64;

/// Resolves a requested thread count: `0` means every available core; the
/// result is always clamped to [`MAX_PARALLEL_THREADS`] (the hard cap
/// applies to the all-cores case too, matching the sharded driver). Shared
/// by the driver and by front ends that report the effective count.
fn resolve_threads(requested: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    requested.min(MAX_PARALLEL_THREADS)
}

impl CmcEngine {
    /// Display name used by reports and benchmarks.
    pub fn name(&self) -> &'static str {
        match self {
            CmcEngine::PerTick => "per-tick",
            CmcEngine::Swept => "swept",
            CmcEngine::Parallel { .. } => "parallel",
            CmcEngine::Sharded { .. } => "sharded",
        }
    }

    /// The number of worker threads this engine will actually use (before
    /// the data-dependent clamp to the window's tick count): 1 for the
    /// sequential engines, the resolved and capped count for the parallel
    /// drivers.
    pub fn resolved_threads(&self) -> usize {
        match *self {
            CmcEngine::Parallel { threads } => resolve_threads(threads),
            CmcEngine::Sharded { shards } => {
                crate::shard::resolved_shard_count(shards).min(MAX_PARALLEL_THREADS)
            }
            _ => 1,
        }
    }

    /// The number of spatial shards this engine will use: the resolved and
    /// capped count for the sharded driver, 1 for every other engine.
    pub fn resolved_shards(&self) -> usize {
        match *self {
            CmcEngine::Sharded { shards } => crate::shard::resolved_shard_count(shards),
            _ => 1,
        }
    }

    /// Runs CMC over `window` with this engine.
    pub fn run_windowed(
        &self,
        db: &TrajectoryDatabase,
        query: &ConvoyQuery,
        window: TimeInterval,
    ) -> Vec<Convoy> {
        self.run_windowed_with_stats(db, query, window).0
    }

    /// Like [`CmcEngine::run_windowed`], but also returns the counters of the
    /// [`CmcState`] fold that produced the result — every engine, the
    /// parallel and sharded drivers included, folds through exactly one
    /// state machine, so the counters are engine-independent.
    pub fn run_windowed_with_stats(
        &self,
        db: &TrajectoryDatabase,
        query: &ConvoyQuery,
        window: TimeInterval,
    ) -> (Vec<Convoy>, CmcStats) {
        self.run_windowed_with_stats_obs(db, query, window, &Obs::noop(), SpanId::NONE)
    }

    /// Like [`CmcEngine::run_windowed_with_stats`], recording into `obs`:
    /// one root span per engine (child of `parent`), `cmc.sweep` /
    /// `cmc.cluster` / `cmc.fold` stage spans beneath it (accumulated totals
    /// for the sequential engines, real per-partition / per-shard worker
    /// spans for the parallel drivers), and the per-tick `cmc.*` metrics of
    /// the fold. With the no-op recorder this is exactly
    /// [`CmcEngine::run_windowed_with_stats`] — the result is identical
    /// either way.
    pub fn run_windowed_with_stats_obs(
        &self,
        db: &TrajectoryDatabase,
        query: &ConvoyQuery,
        window: TimeInterval,
        obs: &Obs,
        parent: SpanId,
    ) -> (Vec<Convoy>, CmcStats) {
        match *self {
            CmcEngine::PerTick => {
                let engine_span = obs.span_start("cmc.per-tick", parent);
                let run_start_ns = obs.now_ns();
                let live = obs.enabled();
                let mut state = CmcState::new(query);
                state.set_obs(obs.clone());
                let mut sweep_ns = 0u64;
                let mut ingest_ns = 0u64;
                for t in window.iter() {
                    let sweep_from_ns = if live { obs.now_ns() } else { 0 };
                    let snapshot = db.snapshot(t, SnapshotPolicy::Interpolate);
                    let ingest_from_ns = if live { obs.now_ns() } else { 0 };
                    state.ingest_snapshot(&snapshot);
                    if live {
                        sweep_ns =
                            sweep_ns.saturating_add(ingest_from_ns.saturating_sub(sweep_from_ns));
                        ingest_ns =
                            ingest_ns.saturating_add(obs.now_ns().saturating_sub(ingest_from_ns));
                    }
                }
                let cluster_ns = state.cluster_time_ns();
                let out = state.finish_with_stats();
                emit_stage_spans(
                    obs,
                    engine_span,
                    run_start_ns,
                    sweep_ns,
                    cluster_ns,
                    ingest_ns,
                );
                obs.span_end(engine_span);
                out
            }
            CmcEngine::Swept => {
                let engine_span = obs.span_start("cmc.swept", parent);
                let run_start_ns = obs.now_ns();
                let live = obs.enabled();
                let mut state = CmcState::new(query);
                state.set_obs(obs.clone());
                let mut sweep_ns = 0u64;
                let mut ingest_ns = 0u64;
                let mut sweep = SnapshotSweep::new(db, window, SnapshotPolicy::Interpolate);
                loop {
                    let sweep_from_ns = if live { obs.now_ns() } else { 0 };
                    let Some(snapshot) = sweep.next() else { break };
                    let ingest_from_ns = if live { obs.now_ns() } else { 0 };
                    state.ingest_snapshot(&snapshot);
                    if live {
                        sweep_ns =
                            sweep_ns.saturating_add(ingest_from_ns.saturating_sub(sweep_from_ns));
                        ingest_ns =
                            ingest_ns.saturating_add(obs.now_ns().saturating_sub(ingest_from_ns));
                    }
                }
                let cluster_ns = state.cluster_time_ns();
                let out = state.finish_with_stats();
                emit_stage_spans(
                    obs,
                    engine_span,
                    run_start_ns,
                    sweep_ns,
                    cluster_ns,
                    ingest_ns,
                );
                obs.span_end(engine_span);
                out
            }
            CmcEngine::Parallel { threads } => {
                cmc_parallel_windowed_with_stats_obs(db, query, window, threads, obs, parent)
            }
            CmcEngine::Sharded { shards } => crate::shard::cmc_sharded_windowed_with_stats_obs(
                db, query, window, shards, obs, parent,
            ),
        }
    }

    /// Runs CMC over the whole time domain of `db` with this engine.
    pub fn run(&self, db: &TrajectoryDatabase, query: &ConvoyQuery) -> Vec<Convoy> {
        self.run_with_stats(db, query).0
    }

    /// Like [`CmcEngine::run`], but also returns the fold counters.
    pub fn run_with_stats(
        &self,
        db: &TrajectoryDatabase,
        query: &ConvoyQuery,
    ) -> (Vec<Convoy>, CmcStats) {
        self.run_with_stats_obs(db, query, &Obs::noop(), SpanId::NONE)
    }

    /// Whole-domain variant of [`CmcEngine::run_windowed_with_stats_obs`].
    pub fn run_with_stats_obs(
        &self,
        db: &TrajectoryDatabase,
        query: &ConvoyQuery,
        obs: &Obs,
        parent: SpanId,
    ) -> (Vec<Convoy>, CmcStats) {
        match db.time_domain() {
            Some(window) => self.run_windowed_with_stats_obs(db, query, window, obs, parent),
            None => (Vec::new(), CmcStats::default()),
        }
    }
}

/// Re-lays the accumulated sweep → cluster → fold totals of a sequential
/// engine run as three synthetic child spans under `engine_span`. The three
/// stages interleave per tick at runtime, so the spans carry stage *totals*
/// laid end to end from the run's start — the proportions are exact, the
/// wall-clock positions are not (see the crate docs of `convoy_obs`).
/// `ingest_ns` is the whole fold-side total; the clustering share is split
/// out of it.
fn emit_stage_spans(
    obs: &Obs,
    engine_span: SpanId,
    run_start_ns: u64,
    sweep_ns: u64,
    cluster_ns: u64,
    ingest_ns: u64,
) {
    if !obs.enabled() {
        return;
    }
    let fold_ns = ingest_ns.saturating_sub(cluster_ns);
    let mut cursor_ns = run_start_ns;
    for (name, dur_ns) in [
        ("cmc.sweep", sweep_ns),
        ("cmc.cluster", cluster_ns),
        ("cmc.fold", fold_ns),
    ] {
        obs.span_at(name, engine_span, cursor_ns, dur_ns);
        cursor_ns = cursor_ns.saturating_add(dur_ns);
    }
}

/// Splits `window` into `parts` contiguous, disjoint sub-windows whose sizes
/// differ by at most one tick.
fn split_window(window: TimeInterval, parts: usize) -> Vec<TimeInterval> {
    let total = window.num_points();
    let parts = (parts as i64).clamp(1, total);
    let base = total / parts;
    let remainder = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = window.start;
    for i in 0..parts {
        let len = base + i64::from(i < remainder);
        // Saturating keeps the endpoints ordered even for windows spanning
        // the full tick range (where `num_points` saturates).
        let end = start.saturating_add(len - 1).min(window.end);
        out.push(TimeInterval::new(start, end));
        start = end.saturating_add(1);
    }
    out
}

/// Runs CMC over `window` with time-partitioned parallel clustering.
///
/// Each worker thread sweeps one contiguous partition of the window and
/// density-clusters every tick — snapshot extraction plus DBSCAN, the part of
/// CMC that dominates its runtime and carries no cross-tick dependency. The
/// per-tick cluster lists are then folded through a single [`CmcState`] in
/// time order, carrying open candidate chains across partition boundaries,
/// so the result is identical to the sequential algorithm (see the module
/// docs for why the fold itself must stay ordered).
///
/// `threads == 0` selects `std::thread::available_parallelism()`; explicit
/// counts are clamped to [`MAX_PARALLEL_THREADS`]. With one thread (or a
/// one-tick window) this degrades to the swept sequential engine.
pub fn cmc_parallel_windowed(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    window: TimeInterval,
    threads: usize,
) -> Vec<Convoy> {
    cmc_parallel_windowed_with_stats(db, query, window, threads).0
}

/// Like [`cmc_parallel_windowed`], but also returns the stitching fold's
/// counters.
pub fn cmc_parallel_windowed_with_stats(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    window: TimeInterval,
    threads: usize,
) -> (Vec<Convoy>, CmcStats) {
    cmc_parallel_windowed_with_stats_obs(db, query, window, threads, &Obs::noop(), SpanId::NONE)
}

/// Like [`cmc_parallel_windowed_with_stats`], recording into `obs`: a
/// `cmc.parallel` root span, one *real* `cmc.partition` span per worker
/// thread (each worker density-clusters with its own recorder-attached
/// scratch, so `cluster.*` metrics accrue from all workers), and a real
/// `cmc.fold` span over the sequential stitch.
pub fn cmc_parallel_windowed_with_stats_obs(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    window: TimeInterval,
    threads: usize,
    obs: &Obs,
    parent: SpanId,
) -> (Vec<Convoy>, CmcStats) {
    let partitions = split_window(window, resolve_threads(threads));
    if partitions.len() <= 1 {
        return CmcEngine::Swept.run_windowed_with_stats_obs(db, query, window, obs, parent);
    }
    let engine_span = obs.span_start("cmc.parallel", parent);

    let clustered: Vec<Vec<(TimePoint, Vec<Cluster>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .map(|&partition| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let partition_span = obs.span_start("cmc.partition", engine_span);
                    // One clustering scratch per worker, reused across every
                    // tick of its partition; only the collected cluster
                    // lists themselves are materialized for the fold.
                    let mut clusterer = SnapshotClusterer::with_obs(obs.clone());
                    let out: Vec<(TimePoint, Vec<Cluster>)> =
                        SnapshotSweep::new(db, partition, SnapshotPolicy::Interpolate)
                            .map(|snapshot| {
                                let clusters = if snapshot.len() < query.m {
                                    Vec::new()
                                } else {
                                    clusterer.cluster_into(&snapshot, query.e, query.m).to_vec()
                                };
                                (snapshot.time, clusters)
                            })
                            .collect();
                    obs.span_end(partition_span);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(no-unwrap-in-lib) — re-raising a worker panic on the coordinating thread is the intent
            .map(|h| h.join().expect("snapshot-clustering worker panicked"))
            .collect()
    });

    // Stitch: one state machine consumes the partitions in time order, so a
    // candidate chain open at a partition boundary keeps extending into the
    // next partition's clusters.
    let fold_span = obs.span_start("cmc.fold", engine_span);
    let mut state = CmcState::new(query);
    state.set_obs(obs.clone());
    for partition in &clustered {
        for (t, clusters) in partition {
            state.ingest_clusters(*t, clusters);
        }
    }
    let out = state.finish_with_stats();
    obs.span_end(fold_span);
    obs.span_end(engine_span);
    out
}

/// Runs [`cmc_parallel_windowed`] over the whole time domain of `db`.
pub fn cmc_parallel(db: &TrajectoryDatabase, query: &ConvoyQuery, threads: usize) -> Vec<Convoy> {
    match db.time_domain() {
        Some(window) => cmc_parallel_windowed(db, query, window, threads),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::normalize_convoys;
    use trajectory::{ObjectId, Trajectory};

    fn cluster(ids: &[u64]) -> Cluster {
        Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect())
    }

    fn convoy_db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for lane in 0..3u64 {
            db.insert(
                ObjectId(lane),
                Trajectory::from_tuples((0..30).map(|t| (t as f64, lane as f64 * 0.5, t as i64)))
                    .unwrap(),
            );
        }
        db.insert(
            ObjectId(9),
            Trajectory::from_tuples((0..30).map(|t| (t as f64, 100.0, t as i64))).unwrap(),
        );
        db
    }

    #[test]
    fn every_engine_agrees_on_a_simple_convoy() {
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 5, 1.5);
        let reference = normalize_convoys(CmcEngine::PerTick.run(&db, &query), &query);
        assert_eq!(reference.len(), 1);
        for engine in [
            CmcEngine::Swept,
            CmcEngine::Parallel { threads: 2 },
            CmcEngine::Parallel { threads: 3 },
            CmcEngine::Parallel { threads: 0 },
            CmcEngine::Sharded { shards: 2 },
            CmcEngine::Sharded { shards: 6 },
            CmcEngine::Sharded { shards: 0 },
        ] {
            let got = normalize_convoys(engine.run(&db, &query), &query);
            assert_eq!(got, reference, "{} disagreed with per-tick", engine.name());
        }
    }

    #[test]
    fn parallel_engine_stitches_convoys_across_partition_boundaries() {
        // One convoy spanning the whole 30-tick domain, split across 7
        // partitions: the chain must survive every boundary.
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 25, 1.5);
        let convoys = normalize_convoys(cmc_parallel(&db, &query, 7), &query);
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].start, 0);
        assert_eq!(convoys[0].end, 29);
    }

    #[test]
    fn parallel_with_more_threads_than_ticks_degrades_gracefully() {
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 5, 1.5);
        let window = TimeInterval::new(10, 12);
        let sequential = CmcEngine::Swept.run_windowed(&db, &query, window);
        let parallel = cmc_parallel_windowed(&db, &query, window, 64);
        assert_eq!(
            normalize_convoys(parallel, &query),
            normalize_convoys(sequential, &query)
        );
    }

    #[test]
    fn parallel_on_empty_database_returns_nothing() {
        let db = TrajectoryDatabase::new();
        assert!(cmc_parallel(&db, &ConvoyQuery::new(2, 2, 1.0), 4).is_empty());
    }

    #[test]
    fn split_window_tiles_without_gaps_or_overlap() {
        for (len, parts) in [(10i64, 3usize), (7, 7), (5, 9), (1, 4), (100, 8)] {
            let window = TimeInterval::new(-3, -3 + len - 1);
            let chunks = split_window(window, parts);
            assert!(chunks.len() <= parts.max(1));
            assert_eq!(chunks.first().unwrap().start, window.start);
            assert_eq!(chunks.last().unwrap().end, window.end);
            for pair in chunks.windows(2) {
                assert_eq!(pair[0].end + 1, pair[1].start);
            }
            let covered: i64 = chunks.iter().map(TimeInterval::num_points).sum();
            assert_eq!(covered, window.num_points());
        }
    }

    #[test]
    fn streaming_drain_reports_convoys_as_they_close() {
        // Objects 0–2 convoy on [0, 9], then scatter; the closed convoy must
        // be drainable as soon as the chain breaks, mid-stream.
        let mut db = TrajectoryDatabase::new();
        for lane in 0..3u64 {
            db.insert(
                ObjectId(lane),
                Trajectory::from_tuples((0..20).map(|t| {
                    let y = if t < 10 {
                        lane as f64 * 0.5
                    } else {
                        lane as f64 * 300.0
                    };
                    (t as f64, y, t as i64)
                }))
                .unwrap(),
            );
        }
        let query = ConvoyQuery::new(3, 5, 1.5);
        let mut state = CmcState::new(&query);
        let mut closed_at: Option<TimePoint> = None;
        for snapshot in db.sweep(SnapshotPolicy::Interpolate) {
            let t = snapshot.time;
            state.ingest_snapshot(&snapshot);
            if closed_at.is_none() {
                let drained = state.drain_closed();
                if !drained.is_empty() {
                    assert_eq!(drained[0].end, 9);
                    closed_at = Some(t);
                }
            }
        }
        assert_eq!(
            closed_at,
            Some(10),
            "convoy must close when the chain breaks"
        );
        assert!(state.finish().is_empty(), "nothing left after the drain");
    }

    #[test]
    fn candidate_dedup_keeps_converging_chains_bounded() {
        // Regression for the duplicate-candidate blow-up: two overlapping
        // clusters at t=0 both converge to {1, 2} at t=1, and every later
        // tick offers two overlapping clusters that each extend {1, 2}.
        // Without per-step dedup the candidate count doubles every tick
        // (2^20 here); with it the working set stays constant.
        let query = ConvoyQuery::new(2, 3, 1.0);
        let mut state = CmcState::new(&query);
        state.ingest_clusters(0, &[cluster(&[1, 2, 3]), cluster(&[1, 2, 4])]);
        assert_eq!(state.active_candidates(), 2);
        for t in 1..=20 {
            state.ingest_clusters(t, &[cluster(&[1, 2, 5]), cluster(&[1, 2, 6])]);
            assert!(
                state.active_candidates() <= 4,
                "candidate set exploded at t={t}: {}",
                state.active_candidates()
            );
        }
        assert!(state.peak_candidates() <= 4);
        let convoys = normalize_convoys(state.finish(), &query);
        // The surviving chain is {1, 2} over the whole stream.
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].objects, cluster(&[1, 2]));
        assert_eq!(convoys[0].start, 0);
        assert_eq!(convoys[0].end, 20);
    }

    #[test]
    fn dedup_does_not_merge_chains_with_different_starts() {
        let query = ConvoyQuery::new(2, 2, 1.0);
        let mut state = CmcState::new(&query);
        state.ingest_clusters(0, &[cluster(&[1, 2])]);
        // At t=1 the fresh cluster {1, 2, 3} extends the open chain (objects
        // {1, 2}, start 0). The cluster is assigned, so no fresh chain with
        // start 1 appears — same semantics as the batch algorithm.
        state.ingest_clusters(1, &[cluster(&[1, 2, 3])]);
        assert_eq!(state.active_candidates(), 1);
        let convoys = state.finish();
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].start, 0);
    }

    #[test]
    fn dropped_ticks_close_candidates_instead_of_bridging_the_gap() {
        // A live feed loses ticks 3..=7: the chain alive at tick 2 must not
        // be silently extended across the unobserved interval.
        let query = ConvoyQuery::new(2, 2, 1.0);
        let mut state = CmcState::new(&query);
        for t in 0..=2 {
            state.ingest_clusters(t, &[cluster(&[1, 2])]);
        }
        state.ingest_clusters(8, &[cluster(&[1, 2])]);
        state.ingest_clusters(9, &[cluster(&[1, 2])]);
        let convoys = state.finish();
        assert_eq!(convoys.len(), 2);
        assert_eq!(convoys[0].interval(), TimeInterval::new(0, 2));
        assert_eq!(convoys[1].interval(), TimeInterval::new(8, 9));
    }

    #[test]
    fn absurd_thread_counts_are_capped_not_spawned() {
        assert_eq!(
            CmcEngine::Parallel { threads: 500_000 }.resolved_threads(),
            MAX_PARALLEL_THREADS
        );
        assert_eq!(CmcEngine::Swept.resolved_threads(), 1);
        assert!(CmcEngine::Parallel { threads: 0 }.resolved_threads() >= 1);
        // And the driver completes (clamped) rather than exhausting the OS.
        let db = convoy_db();
        let query = ConvoyQuery::new(3, 5, 1.5);
        let reference = normalize_convoys(CmcEngine::Swept.run(&db, &query), &query);
        let capped = normalize_convoys(cmc_parallel(&db, &query, 500_000), &query);
        assert_eq!(capped, reference);
    }

    #[test]
    fn gap_tick_closes_candidates() {
        let query = ConvoyQuery::new(2, 2, 1.0);
        let mut state = CmcState::new(&query);
        state.ingest_clusters(0, &[cluster(&[1, 2])]);
        state.ingest_clusters(1, &[cluster(&[1, 2])]);
        state.ingest_clusters(2, &[]);
        let closed = state.drain_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].interval(), TimeInterval::new(0, 1));
    }

    #[test]
    fn stats_track_ticks_peaks_and_closures() {
        let query = ConvoyQuery::new(2, 2, 1.0);
        let mut state = CmcState::new(&query);
        assert_eq!(state.stats(), CmcStats::default());

        // Two chains open for three ticks, then an empty tick closes both
        // (the normal, non-gap path).
        for t in 0..3 {
            state.ingest_clusters(t, &[cluster(&[1, 2]), cluster(&[8, 9])]);
        }
        state.ingest_clusters(3, &[]);
        let stats = state.stats();
        assert_eq!(stats.ticks_ingested, 4);
        assert_eq!(stats.peak_candidates, 2);
        assert_eq!(stats.gap_closures, 0, "an observed empty tick is not a gap");
        assert_eq!(stats.convoys_closed, 2);

        // Counters survive a drain.
        assert_eq!(state.drain_closed().len(), 2);
        assert_eq!(state.stats().convoys_closed, 2);
    }

    #[test]
    fn evict_longer_than_closes_aged_chains_before_they_extend() {
        let query = ConvoyQuery::new(2, 2, 1.0);
        let mut state = CmcState::new(&query);
        let horizon = 3i64;
        for t in 0..6 {
            assert_eq!(
                state.evict_longer_than(horizon),
                usize::from(t == horizon),
                "the chain reaches the horizon exactly at t=3 and restarts there"
            );
            state.ingest_clusters(t, &[cluster(&[1, 2])]);
        }
        let convoys = state.finish();
        // [0,2] closed by the horizon, [3,5] closed by the final flush:
        // no reported chain ever exceeds `horizon` ticks.
        assert_eq!(convoys.len(), 2);
        assert_eq!(convoys[0].interval(), TimeInterval::new(0, 2));
        assert_eq!(convoys[1].interval(), TimeInterval::new(3, 5));
        assert!(convoys.iter().all(|c| c.lifetime() <= horizon));
    }

    #[test]
    fn evict_longer_than_drops_short_chains_without_reporting() {
        // k = 5 but the horizon is 2: the chain is cut before qualifying.
        let query = ConvoyQuery::new(2, 5, 1.0);
        let mut state = CmcState::new(&query);
        for t in 0..4 {
            state.evict_longer_than(2);
            state.ingest_clusters(t, &[cluster(&[1, 2])]);
        }
        let (convoys, stats) = state.finish_with_stats();
        assert!(convoys.is_empty());
        assert_eq!(stats.convoys_closed, 0);
    }

    #[test]
    fn evict_to_capacity_closes_the_oldest_chains() {
        let query = ConvoyQuery::new(2, 1, 1.0);
        let mut state = CmcState::new(&query);
        state.ingest_clusters(0, &[cluster(&[1, 2])]);
        state.ingest_clusters(
            1,
            &[cluster(&[1, 2, 3]), cluster(&[4, 5]), cluster(&[6, 7])],
        );
        assert_eq!(state.active_candidates(), 3);
        assert_eq!(state.evict_to_capacity(3), 0, "already within capacity");
        assert_eq!(state.evict_to_capacity(1), 2);
        assert_eq!(state.active_candidates(), 1);
        let closed = state.drain_closed();
        // The start-0 chain is oldest; the tie between the two start-1
        // chains breaks by insertion order.
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].start, 0);
        assert_eq!(closed[0].objects, cluster(&[1, 2]));
        assert_eq!(closed[1].interval(), TimeInterval::new(1, 1));
        assert_eq!(closed[1].objects, cluster(&[4, 5]));
        // The survivor keeps extending.
        state.ingest_clusters(2, &[cluster(&[6, 7])]);
        let convoys = state.finish();
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].objects, cluster(&[6, 7]));
    }

    #[test]
    fn stats_count_gap_closures_from_dropped_feed_ticks() {
        // PR 2's gap-closing path: ticks 3..=7 are lost; both open chains
        // must be counted as gap closures even though only the qualifying
        // one is reported as a convoy.
        let query = ConvoyQuery::new(2, 3, 1.0);
        let mut state = CmcState::new(&query);
        for t in 0..3 {
            state.ingest_clusters(t, &[cluster(&[1, 2])]);
        }
        // A second, too-young chain opens just before the outage.
        state.ingest_clusters(3, &[cluster(&[1, 2, 3]), cluster(&[8, 9])]);
        state.ingest_clusters(9, &[cluster(&[1, 2])]);
        let stats = state.stats();
        assert_eq!(stats.gap_closures, 2, "both chains were cut by the gap");
        assert_eq!(
            stats.convoys_closed, 1,
            "only the k-satisfying chain became a convoy"
        );
        assert_eq!(stats.ticks_ingested, 5);
        let convoys = state.finish();
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].interval(), TimeInterval::new(0, 3));
    }
}
