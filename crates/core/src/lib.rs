//! # `convoy-core` — convoy discovery in trajectory databases
//!
//! This crate implements the contribution of *Discovery of Convoys in
//! Trajectory Databases* (Jeung, Yiu, Zhou, Jensen, Shen — VLDB 2008):
//!
//! * the **convoy query** itself ([`ConvoyQuery`], [`Convoy`]): given a
//!   trajectory database, a distance threshold `e`, a group size `m` and a
//!   lifetime `k`, find every maximal group of at least `m` objects that are
//!   density-connected with respect to `e` at each of at least `k`
//!   consecutive time points;
//! * **CMC** ([`cmc`]): the Coherent Moving Cluster baseline (Algorithm 1)
//!   that clusters every snapshot and intersects clusters over time;
//! * the **streaming + parallel engine** ([`engine`]): the incremental
//!   [`CmcState`] fold, the swept single-pass extraction and the
//!   time-partitioned parallel driver behind [`cmc`] — selectable per run via
//!   [`CmcEngine`];
//! * the **sharded driver** ([`shard`]): spatially sharded discovery — grid
//!   shards clustered on worker threads with boundary-halo exchange and an
//!   exact cluster merge, bit-identical to sequential [`cmc()`](cmc::cmc);
//! * the **CuTS family** ([`cuts`]): the filter–refinement algorithms built
//!   on trajectory simplification — CuTS (DP + `DLL` bounds), CuTS+ (DP+ +
//!   `DLL` bounds) and CuTS* (DP* + `D*` bounds);
//! * **MC2** ([`mc2`]): the moving-cluster baseline used in the paper's
//!   appendix to show that moving-cluster semantics cannot answer convoy
//!   queries exactly;
//! * parameter guidelines ([`params`]) and instrumentation
//!   ([`metrics`]) used by the benchmark harness to reproduce the paper's
//!   figures.
//!
//! ## Quick start
//!
//! ```
//! use convoy_core::{ConvoyQuery, Discovery, Method};
//! use trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
//!
//! // Three objects travelling together, one loner.
//! let mut db = TrajectoryDatabase::new();
//! for i in 0..3u64 {
//!     let traj = Trajectory::from_tuples(
//!         (0..10).map(|t| (t as f64, i as f64 * 0.5, t as i64))).unwrap();
//!     db.insert(ObjectId(i), traj);
//! }
//! db.insert(ObjectId(99), Trajectory::from_tuples(
//!     (0..10).map(|t| (t as f64, 500.0, t as i64))).unwrap());
//!
//! let query = ConvoyQuery { m: 3, k: 5, e: 1.5 };
//! let outcome = Discovery::new(Method::CutsStar).run(&db, &query);
//! assert_eq!(outcome.convoys.len(), 1);
//! assert_eq!(outcome.convoys[0].objects.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod candidate;
pub mod cmc;
pub mod cuts;
pub mod discovery;
pub mod engine;
pub mod mc2;
pub mod metrics;
pub mod params;
pub mod query;
pub mod shard;

pub use candidate::CandidateConvoy;
pub use cmc::{cmc, cmc_windowed};
pub use cuts::partition::{
    cluster_partition, CandidateChain, CandidateChainSnapshot, PartitionClusters,
};
pub use cuts::refine::{
    refine_partitions, restrict_snapshot, FoldOutcome, RefineFold, RefineFoldSnapshot,
};
pub use cuts::{CutsConfig, CutsVariant};
pub use discovery::{Discovery, DiscoveryOutcome, Method};
pub use engine::{
    cmc_parallel, cmc_parallel_windowed, CmcEngine, CmcState, CmcStateSnapshot, CmcStats,
};
pub use mc2::{mc2, Mc2Config};
pub use metrics::{
    duration_ns, fold_stats_from_snapshot, publish_discovery, publish_fold_stats,
    publish_stage_timings, refinement_unit, DiscoveryStats, StageTimings,
};
pub use params::{auto_delta, auto_lambda};
pub use query::{compare_result_sets, normalize_convoys, AccuracyReport, Convoy, ConvoyQuery};
pub use shard::{cmc_sharded, cmc_sharded_windowed, resolved_shard_count, MAX_SHARDS};
