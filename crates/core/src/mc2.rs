//! MC2 — the moving-cluster baseline (Kalnis et al., SSTD 2005), used by the
//! paper's Appendix B.1 to demonstrate that moving-cluster semantics cannot
//! answer convoy queries exactly.
//!
//! A moving cluster is a chain of snapshot clusters at consecutive time
//! points whose consecutive Jaccard overlap `|c_t ∩ c_{t+1}| / |c_t ∪ c_{t+1}|`
//! is at least a threshold θ. Unlike a convoy, a moving cluster has no
//! lifetime constraint and its membership may drift over time.

use crate::query::Convoy;
use serde::{Deserialize, Serialize};
use traj_cluster::{Cluster, SnapshotClusterer};
use trajectory::{SnapshotPolicy, TimePoint, TrajectoryDatabase};

/// Parameters of the MC2 baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mc2Config {
    /// Distance threshold for the snapshot clustering (the convoy query's `e`).
    pub e: f64,
    /// Density threshold for the snapshot clustering (the convoy query's `m`).
    pub m: usize,
    /// Minimum Jaccard overlap θ between consecutive snapshot clusters.
    pub theta: f64,
}

/// One moving cluster under construction.
#[derive(Debug, Clone)]
struct MovingCluster {
    /// Cluster at the chain's latest time point.
    head: Cluster,
    /// Intersection of every snapshot cluster in the chain — the objects that
    /// have been present throughout, which is what we report as the chain's
    /// "convoy interpretation".
    common: Cluster,
    start: TimePoint,
    end: TimePoint,
}

/// Runs the MC2 moving-cluster algorithm and reports each moving cluster in
/// convoy form: the objects common to the whole chain, over the chain's time
/// interval.
///
/// The output is deliberately *not* filtered by the convoy constraints `m`
/// and `k` on the chain level — reproducing the paper's point that MC2 both
/// over-reports (no lifetime constraint, drifting membership) and
/// under-reports (a high θ splits long convoys into fragments).
pub fn mc2(db: &TrajectoryDatabase, config: &Mc2Config) -> Vec<Convoy> {
    let Some(domain) = db.time_domain() else {
        return Vec::new();
    };
    let mut results: Vec<Convoy> = Vec::new();
    let mut current: Vec<MovingCluster> = Vec::new();
    // Snapshot-clustering scratch reused across the whole domain sweep.
    let mut clusterer = SnapshotClusterer::new();

    for t in domain.iter() {
        let snapshot = db.snapshot(t, SnapshotPolicy::Interpolate);
        let clusters: Vec<Cluster> = if snapshot.len() < config.m {
            Vec::new()
        } else {
            clusterer
                .cluster_into(&snapshot, config.e, config.m)
                .to_vec()
        };

        let mut next: Vec<MovingCluster> = Vec::new();
        let mut cluster_used = vec![false; clusters.len()];

        for mc in &current {
            let mut extended = false;
            for (ci, cluster) in clusters.iter().enumerate() {
                if mc.head.jaccard(cluster) >= config.theta {
                    extended = true;
                    cluster_used[ci] = true;
                    next.push(MovingCluster {
                        head: cluster.clone(),
                        common: mc.common.intersection(cluster),
                        start: mc.start,
                        end: t,
                    });
                }
            }
            if !extended {
                results.push(Convoy::new(mc.common.clone(), mc.start, mc.end));
            }
        }

        for (ci, cluster) in clusters.into_iter().enumerate() {
            if !cluster_used[ci] {
                next.push(MovingCluster {
                    common: cluster.clone(),
                    head: cluster,
                    start: t,
                    end: t,
                });
            }
        }
        current = next;
    }

    for mc in current {
        results.push(Convoy::new(mc.common, mc.start, mc.end));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmc::cmc;
    use crate::query::{compare_result_sets, normalize_convoys, ConvoyQuery};
    use trajectory::{ObjectId, Trajectory};

    fn db_from(rows: Vec<Vec<(f64, f64, i64)>>) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (i, samples) in rows.into_iter().enumerate() {
            db.insert(
                ObjectId(i as u64),
                Trajectory::from_tuples(samples).unwrap(),
            );
        }
        db
    }

    /// Two objects together the whole time, a third drifting in and out.
    fn drift_db() -> TrajectoryDatabase {
        db_from(vec![
            (0..12).map(|t| (t as f64, 0.0, t as i64)).collect(),
            (0..12).map(|t| (t as f64, 0.5, t as i64)).collect(),
            (0..12)
                .map(|t| {
                    let y = if (4..=7).contains(&t) { 1.0 } else { 30.0 };
                    (t as f64, y, t as i64)
                })
                .collect(),
        ])
    }

    #[test]
    fn mc2_reports_chains_without_lifetime_constraint() {
        let db = drift_db();
        let config = Mc2Config {
            e: 1.5,
            m: 2,
            theta: 0.5,
        };
        let result = mc2(&db, &config);
        assert!(!result.is_empty());
        // At least one reported chain spans the whole domain (objects 0 and 1).
        assert!(result.iter().any(|c| c.lifetime() == 12));
    }

    #[test]
    fn theta_one_requires_identical_clusters() {
        let db = drift_db();
        let strict = Mc2Config {
            e: 1.5,
            m: 2,
            theta: 1.0,
        };
        let loose = Mc2Config {
            e: 1.5,
            m: 2,
            theta: 0.4,
        };
        // With θ = 1 the chain breaks every time object 2 joins or leaves, so
        // MC2 reports more, shorter chains than with a low θ.
        let strict_result = mc2(&db, &strict);
        let loose_result = mc2(&db, &loose);
        let strict_max = strict_result.iter().map(|c| c.lifetime()).max().unwrap();
        let loose_max = loose_result.iter().map(|c| c.lifetime()).max().unwrap();
        assert!(strict_max <= loose_max);
        assert!(strict_result.len() >= loose_result.len());
    }

    #[test]
    fn mc2_misses_convoys_that_cmc_finds_with_high_theta() {
        // The lossy behaviour of Figure 19(b): a convoy of two objects with a
        // third object repeatedly joining/leaving the cluster. With θ = 1 the
        // moving-cluster chain keeps breaking, so no reported chain covers the
        // convoy's full interval.
        let db = db_from(vec![
            (0..12).map(|t| (t as f64, 0.0, t as i64)).collect(),
            (0..12).map(|t| (t as f64, 0.5, t as i64)).collect(),
            (0..12)
                .map(|t| {
                    let y = if t % 2 == 0 { 1.0 } else { 40.0 };
                    (t as f64, y, t as i64)
                })
                .collect(),
        ]);
        let query = ConvoyQuery::new(2, 12, 1.5);
        let reference = normalize_convoys(cmc(&db, &query), &query);
        assert_eq!(reference.len(), 1, "CMC finds the 12-tick convoy");
        let reported = mc2(
            &db,
            &Mc2Config {
                e: 1.5,
                m: 2,
                theta: 1.0,
            },
        );
        let report = compare_result_sets(&reported, &reference, &query);
        assert!(
            report.false_negatives > 0,
            "θ=1 must miss the convoy that CMC finds"
        );
        assert!(report.false_positive_percent() > 0.0);
    }

    #[test]
    fn empty_database() {
        let config = Mc2Config {
            e: 1.0,
            m: 2,
            theta: 0.5,
        };
        assert!(mc2(&TrajectoryDatabase::new(), &config).is_empty());
    }
}
