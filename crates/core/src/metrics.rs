//! Instrumentation: stage timings, candidate statistics and the
//! *refinement unit* cost model used by the paper's Figures 16 and 17.

use crate::candidate::CandidateConvoy;
use crate::engine::CmcStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Wall-clock timings of the three stages of a CuTS run (Figure 13). For CMC
/// the whole run is accounted to the `filter` stage (it has no
/// simplification or refinement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StageTimings {
    /// Time spent simplifying trajectories.
    pub simplification: Duration,
    /// Time spent in the filter step (partitioned clustering), or the whole
    /// algorithm for CMC.
    pub filter: Duration,
    /// Time spent refining candidates.
    pub refinement: Duration,
}

impl StageTimings {
    /// Total elapsed time across the three stages.
    pub fn total(&self) -> Duration {
        self.simplification + self.filter + self.refinement
    }
}

/// Summary statistics of one discovery run, consumed by the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DiscoveryStats {
    /// Number of candidate convoys the filter produced (0 for CMC).
    pub num_candidates: usize,
    /// The refinement-unit cost of those candidates (0 for CMC).
    pub refinement_units: f64,
    /// Number of convoys reported after normalisation.
    pub num_convoys: usize,
    /// The simplification tolerance δ used (0 for CMC).
    pub delta: f64,
    /// The time-partition length λ used (0 for CMC).
    pub lambda: usize,
    /// Vertex reduction of the simplification step in percent (0 for CMC).
    pub reduction_percent: f64,
    /// Counters of the [`crate::engine::CmcState`] fold that produced the
    /// result: the whole run for CMC, the coverage-restricted refinement
    /// fold for the CuTS family.
    pub fold: CmcStats,
}

/// The *refinement unit* of a set of candidates (Section 7.3): for each
/// candidate, the clustering cost of its objects — counted as `|objects|²`,
/// i.e. clustering without index support, exactly as the paper chooses —
/// multiplied by the candidate's lifetime, summed over all candidates.
///
/// The paper's example: a candidate with 3 objects and lifetime 2 contributes
/// `3² × 2 = 18` units.
pub fn refinement_unit(candidates: &[CandidateConvoy]) -> f64 {
    candidates
        .iter()
        .map(|c| {
            let n = c.objects.len() as f64;
            // lint: allow(checked-time-arithmetic) — f64 cost-model arithmetic, wrap-free
            n * n * c.lifetime() as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_cluster::Cluster;
    use trajectory::ObjectId;

    fn candidate(ids: &[u64], start: i64, end: i64) -> CandidateConvoy {
        CandidateConvoy::new(
            Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect()),
            start,
            end,
        )
    }

    #[test]
    fn refinement_unit_matches_paper_example() {
        // 3 objects, lifetime 2 → 18 units.
        let c = candidate(&[1, 2, 3], 0, 1);
        assert_eq!(refinement_unit(&[c]), 18.0);
    }

    #[test]
    fn refinement_unit_sums_over_candidates() {
        let a = candidate(&[1, 2], 0, 4); // 4 × 5 = 20
        let b = candidate(&[1, 2, 3, 4], 0, 0); // 16 × 1 = 16
        assert_eq!(refinement_unit(&[a, b]), 36.0);
        assert_eq!(refinement_unit(&[]), 0.0);
    }

    #[test]
    fn stage_timings_total() {
        let t = StageTimings {
            simplification: Duration::from_millis(5),
            filter: Duration::from_millis(10),
            refinement: Duration::from_millis(20),
        };
        assert_eq!(t.total(), Duration::from_millis(35));
        assert_eq!(StageTimings::default().total(), Duration::ZERO);
    }
}
