//! Instrumentation: stage timings, candidate statistics and the
//! *refinement unit* cost model used by the paper's Figures 16 and 17.

use crate::candidate::CandidateConvoy;
use crate::discovery::DiscoveryOutcome;
use crate::engine::CmcStats;
use convoy_obs::{MetricsSnapshot, Recorder, Registry};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Wall-clock timings of the three stages of a CuTS run (Figure 13). For CMC
/// the whole run is accounted to the `filter` stage (it has no
/// simplification or refinement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StageTimings {
    /// Time spent simplifying trajectories.
    pub simplification: Duration,
    /// Time spent in the filter step (partitioned clustering), or the whole
    /// algorithm for CMC.
    pub filter: Duration,
    /// Time spent refining candidates.
    pub refinement: Duration,
}

impl StageTimings {
    /// Total elapsed time across the three stages. Saturating: three
    /// near-`Duration::MAX` stages clamp instead of panicking (deserialized
    /// timings are attacker-shaped bytes, not trusted clock readings).
    pub fn total(&self) -> Duration {
        self.simplification
            .saturating_add(self.filter)
            .saturating_add(self.refinement)
    }
}

/// Summary statistics of one discovery run, consumed by the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DiscoveryStats {
    /// Number of candidate convoys the filter produced (0 for CMC).
    pub num_candidates: usize,
    /// The refinement-unit cost of those candidates (0 for CMC).
    pub refinement_units: f64,
    /// Number of convoys reported after normalisation.
    pub num_convoys: usize,
    /// The simplification tolerance δ used (0 for CMC).
    pub delta: f64,
    /// The time-partition length λ used (0 for CMC).
    pub lambda: usize,
    /// Vertex reduction of the simplification step in percent (0 for CMC).
    pub reduction_percent: f64,
    /// Counters of the [`crate::engine::CmcState`] fold that produced the
    /// result: the whole run for CMC, the coverage-restricted refinement
    /// fold for the CuTS family.
    pub fold: CmcStats,
}

/// The *refinement unit* of a set of candidates (Section 7.3): for each
/// candidate, the clustering cost of its objects — counted as `|objects|²`,
/// i.e. clustering without index support, exactly as the paper chooses —
/// multiplied by the candidate's lifetime, summed over all candidates.
///
/// The paper's example: a candidate with 3 objects and lifetime 2 contributes
/// `3² × 2 = 18` units.
pub fn refinement_unit(candidates: &[CandidateConvoy]) -> f64 {
    candidates
        .iter()
        .map(|c| {
            let n = c.objects.len() as f64;
            // lint: allow(checked-time-arithmetic) — f64 cost-model arithmetic, wrap-free
            n * n * c.lifetime() as f64
        })
        .sum()
}

/// A [`Duration`] as saturating whole nanoseconds (the unit every `*_ns`
/// metric in the registry uses).
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Publishes a [`CmcStats`] into `registry` under the canonical `cmc.*`
/// names — the typed-view half of the `--stats` rendering path.
///
/// Store semantics, not add: the struct is the authoritative lifetime view
/// (it survives checkpoints, which live per-tick counters do not), so it
/// *overwrites* whatever the live recorder accumulated. On an uninterrupted
/// run the two agree and the overwrite is idempotent.
pub fn publish_fold_stats(registry: &Registry, fold: &CmcStats) {
    registry.counter_store("cmc.ticks_ingested", fold.ticks_ingested);
    registry.counter_store("cmc.gap_closures", fold.gap_closures);
    registry.counter_store("cmc.convoys_closed", fold.convoys_closed);
    registry.gauge_set(
        "cmc.peak_candidates",
        i64::try_from(fold.peak_candidates).unwrap_or(i64::MAX),
    );
}

/// Reads the `cmc.*` fold counters back out of a snapshot — the inverse of
/// [`publish_fold_stats`], used by tests and by consumers that want the
/// typed struct rather than the raw name/value map.
pub fn fold_stats_from_snapshot(snapshot: &MetricsSnapshot) -> CmcStats {
    CmcStats {
        peak_candidates: usize::try_from(snapshot.gauge("cmc.peak_candidates")).unwrap_or(0),
        ticks_ingested: snapshot.counter("cmc.ticks_ingested"),
        gap_closures: snapshot.counter("cmc.gap_closures"),
        convoys_closed: snapshot.counter("cmc.convoys_closed"),
    }
}

/// Publishes a [`DiscoveryOutcome`]'s *deterministic* statistics (fold
/// counters, candidate counts, parameters) under the `cmc.*` / `discover.*`
/// names. Wall-clock timings are deliberately not included — publish those
/// separately with [`publish_stage_timings`] into recorders whose output may
/// vary run to run (the metrics-JSON/trace export), never into the registry
/// that renders `--stats` (whose text must be byte-stable for equivalence
/// checks).
pub fn publish_discovery(registry: &Registry, outcome: &DiscoveryOutcome) {
    publish_fold_stats(registry, &outcome.stats.fold);
    registry.counter_store("discover.candidates", outcome.stats.num_candidates as u64);
    registry.counter_store("discover.convoys", outcome.stats.num_convoys as u64);
    // The paper's Fig. 17 cost model is a f64; whole units are enough for
    // the counter view (saturating `as` keeps absurd models finite).
    registry.counter_store(
        "discover.refinement_units",
        outcome.stats.refinement_units as u64,
    );
    registry.counter_store("discover.lambda", outcome.stats.lambda as u64);
}

/// Publishes the wall-clock stage timings (Figure 13) as `discover.*_ns`
/// counters. Non-deterministic by nature; see [`publish_discovery`] for why
/// this is a separate call.
pub fn publish_stage_timings(registry: &Registry, timings: &StageTimings) {
    registry.counter_store("discover.simplify_ns", duration_ns(timings.simplification));
    registry.counter_store("discover.filter_ns", duration_ns(timings.filter));
    registry.counter_store("discover.refine_ns", duration_ns(timings.refinement));
    registry.counter_store("discover.total_ns", duration_ns(timings.total()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_cluster::Cluster;
    use trajectory::ObjectId;

    fn candidate(ids: &[u64], start: i64, end: i64) -> CandidateConvoy {
        CandidateConvoy::new(
            Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect()),
            start,
            end,
        )
    }

    #[test]
    fn refinement_unit_matches_paper_example() {
        // 3 objects, lifetime 2 → 18 units.
        let c = candidate(&[1, 2, 3], 0, 1);
        assert_eq!(refinement_unit(&[c]), 18.0);
    }

    #[test]
    fn refinement_unit_sums_over_candidates() {
        let a = candidate(&[1, 2], 0, 4); // 4 × 5 = 20
        let b = candidate(&[1, 2, 3, 4], 0, 0); // 16 × 1 = 16
        assert_eq!(refinement_unit(&[a, b]), 36.0);
        assert_eq!(refinement_unit(&[]), 0.0);
    }

    #[test]
    fn stage_timings_total() {
        let t = StageTimings {
            simplification: Duration::from_millis(5),
            filter: Duration::from_millis(10),
            refinement: Duration::from_millis(20),
        };
        assert_eq!(t.total(), Duration::from_millis(35));
        assert_eq!(StageTimings::default().total(), Duration::ZERO);
    }
}
