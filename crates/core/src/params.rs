//! Automatic selection of the CuTS internal parameters δ and λ
//! (Section 7.4 of the paper), re-exported at the convoy level.

use traj_simplify::{select_delta_for_database, select_lambda, SimplifiedTrajectory};
use trajectory::TrajectoryDatabase;

/// Fraction of the database's trajectories sampled by the δ guideline
/// (the paper suggests "a sufficient time (e.g. 10 % of N)").
pub const DELTA_SAMPLE_FRACTION: f64 = 0.1;

/// Selects the simplification tolerance δ for a database and a neighbourhood
/// range `e`, following the Section 7.4 guideline: run DP with δ = 0 on a
/// sample of trajectories, look for the largest gap between adjacent recorded
/// tolerances below `e`, and average the per-trajectory selections.
pub fn auto_delta(db: &TrajectoryDatabase, e: f64) -> f64 {
    select_delta_for_database(db, e, DELTA_SAMPLE_FRACTION)
}

/// Selects the time-partition length λ from the simplified trajectories and
/// the convoy lifetime `k`, following the Section 7.4 guideline (see
/// [`traj_simplify::select_lambda`] for the exact formulation used).
pub fn auto_lambda<'a, I>(simplified: I, k: usize) -> usize
where
    I: IntoIterator<Item = &'a SimplifiedTrajectory>,
{
    select_lambda(simplified, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_simplify::{DouglasPeucker, Simplifier};
    use trajectory::{ObjectId, TrajPoint, Trajectory};

    fn wiggly(n: i64, amplitude: f64) -> Trajectory {
        Trajectory::from_points(
            (0..n)
                .map(|t| {
                    let y = if t % 2 == 0 { amplitude } else { -amplitude };
                    TrajPoint::new(t as f64, y, t)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn auto_delta_is_positive_and_below_e() {
        let mut db = TrajectoryDatabase::new();
        for i in 0..20u64 {
            db.insert(ObjectId(i), wiggly(50, 0.3 + i as f64 * 0.01));
        }
        let e = 5.0;
        let delta = auto_delta(&db, e);
        assert!(delta > 0.0);
        assert!(delta < e);
    }

    #[test]
    fn auto_lambda_respects_k() {
        let traj = wiggly(100, 0.1);
        let simplified = DouglasPeucker.simplify(&traj, 1.0);
        let lambda = auto_lambda([&simplified], 10);
        assert!((2..=10).contains(&lambda));
    }
}
