//! The convoy query, convoy results, and result-set comparison utilities.

use serde::{Deserialize, Serialize};
use traj_cluster::Cluster;
use trajectory::{TimeInterval, TimePoint};

/// The parameters of a convoy query (Definition 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvoyQuery {
    /// Minimum number of objects in a convoy (`m`).
    pub m: usize,
    /// Minimum number of consecutive time points the objects must stay
    /// density-connected (`k`, the lifetime).
    pub k: usize,
    /// Distance threshold for density connection (`e`).
    pub e: f64,
}

impl ConvoyQuery {
    /// Creates a query, clamping `m` and `k` to at least 1.
    pub fn new(m: usize, k: usize, e: f64) -> Self {
        ConvoyQuery {
            m: m.max(1),
            k: k.max(1),
            e,
        }
    }
}

/// One convoy in a query result: a group of objects together with the time
/// interval during which they travelled together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Convoy {
    /// The member objects.
    pub objects: Cluster,
    /// Start of the interval during which the members are density-connected.
    pub start: TimePoint,
    /// End of that interval (inclusive).
    pub end: TimePoint,
}

impl Convoy {
    /// Creates a convoy.
    pub fn new(objects: Cluster, start: TimePoint, end: TimePoint) -> Self {
        Convoy {
            objects,
            start: start.min(end),
            end: start.max(end),
        }
    }

    /// The convoy's time interval.
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.start, self.end)
    }

    /// Number of consecutive time points covered (the convoy's lifetime),
    /// saturating at `i64::MAX` for convoys spanning the full tick range.
    pub fn lifetime(&self) -> i64 {
        self.end.saturating_sub(self.start).saturating_add(1)
    }

    /// Returns `true` when the convoy satisfies the size and lifetime
    /// constraints of `query` (the density-connection requirement is the
    /// responsibility of the algorithm that produced it).
    pub fn satisfies(&self, query: &ConvoyQuery) -> bool {
        self.objects.len() >= query.m && self.lifetime() >= query.k as i64
    }

    /// Returns `true` when `other` *dominates* this convoy: `other` has at
    /// least the same members and at least the same time extent. A dominated
    /// convoy carries no extra information in a result set.
    pub fn is_dominated_by(&self, other: &Convoy) -> bool {
        self.objects.is_subset_of(&other.objects)
            && other.start <= self.start
            && self.end <= other.end
    }
}

impl std::fmt::Display for Convoy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "⟨{{{}}}, [{}, {}]⟩",
            self.objects
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.start,
            self.end
        )
    }
}

/// Normalises a convoy result set:
///
/// 1. convoys violating the query's `m`/`k` constraints are dropped;
/// 2. exact duplicates are dropped;
/// 3. convoys dominated by another convoy in the set (same or larger member
///    set over a containing interval) are dropped.
///
/// Both CMC and the CuTS refinement can emit dominated fragments of the same
/// underlying convoy (e.g. a sub-interval discovered from an overlapping
/// candidate); normalisation makes result sets canonically comparable.
pub fn normalize_convoys(convoys: Vec<Convoy>, query: &ConvoyQuery) -> Vec<Convoy> {
    let mut kept: Vec<Convoy> = Vec::with_capacity(convoys.len());
    let mut satisfying: Vec<Convoy> = convoys.into_iter().filter(|c| c.satisfies(query)).collect();
    // Sort by (interval length desc, member count desc) so dominating convoys
    // are considered before the fragments they dominate.
    satisfying.sort_by(|a, b| {
        (
            b.lifetime(),
            b.objects.len(),
            a.start,
            a.objects.members().to_vec(),
        )
            .cmp(&(
                a.lifetime(),
                a.objects.len(),
                b.start,
                b.objects.members().to_vec(),
            ))
    });
    for convoy in satisfying {
        if kept
            .iter()
            .any(|existing| convoy == *existing || convoy.is_dominated_by(existing))
        {
            continue;
        }
        kept.push(convoy);
    }
    // Deterministic output order: by start time, then members.
    kept.sort_by(|a, b| {
        (a.start, a.end, a.objects.members().to_vec()).cmp(&(
            b.start,
            b.end,
            b.objects.members().to_vec(),
        ))
    });
    kept
}

/// Accuracy of a candidate result set against a reference result set, in the
/// shape of the paper's Figure 19 (percentages of false positives and false
/// negatives).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AccuracyReport {
    /// Number of reported convoys.
    pub reported: usize,
    /// Number of reference convoys.
    pub reference: usize,
    /// Reported convoys that do not correspond to any reference convoy.
    pub false_positives: usize,
    /// Reference convoys not covered by any reported convoy.
    pub false_negatives: usize,
}

impl AccuracyReport {
    /// False positives as a percentage of reported convoys (0 when nothing
    /// was reported).
    pub fn false_positive_percent(&self) -> f64 {
        if self.reported == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.reported as f64 * 100.0
        }
    }

    /// False negatives as a percentage of reference convoys (0 when the
    /// reference is empty).
    pub fn false_negative_percent(&self) -> f64 {
        if self.reference == 0 {
            0.0
        } else {
            self.false_negatives as f64 / self.reference as f64 * 100.0
        }
    }
}

/// Compares a reported result set against a reference result set (normally
/// the CMC output, which the paper treats as ground truth).
///
/// A reported convoy is counted as **correct** when it itself satisfies the
/// query constraints *and* some reference convoy dominates it (its members
/// and interval are contained in the reference convoy). A reference convoy is
/// counted as **found** when some reported convoy dominates it.
pub fn compare_result_sets(
    reported: &[Convoy],
    reference: &[Convoy],
    query: &ConvoyQuery,
) -> AccuracyReport {
    let false_positives = reported
        .iter()
        .filter(|r| !r.satisfies(query) || !reference.iter().any(|c| r.is_dominated_by(c)))
        .count();
    let false_negatives = reference
        .iter()
        .filter(|c| !reported.iter().any(|r| c.is_dominated_by(r)))
        .count();
    AccuracyReport {
        reported: reported.len(),
        reference: reference.len(),
        false_positives,
        false_negatives,
    }
}

/// Returns `true` when two *normalised* result sets are equivalent: every
/// convoy of one set is dominated by some convoy of the other and vice versa.
pub fn result_sets_equivalent(a: &[Convoy], b: &[Convoy]) -> bool {
    a.iter().all(|x| b.iter().any(|y| x.is_dominated_by(y)))
        && b.iter().all(|x| a.iter().any(|y| x.is_dominated_by(y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::ObjectId;

    fn cluster(ids: &[u64]) -> Cluster {
        Cluster::new(ids.iter().map(|i| ObjectId(*i)).collect())
    }

    fn convoy(ids: &[u64], start: i64, end: i64) -> Convoy {
        Convoy::new(cluster(ids), start, end)
    }

    #[test]
    fn convoy_basic_properties() {
        let c = convoy(&[1, 2, 3], 5, 9);
        assert_eq!(c.lifetime(), 5);
        assert_eq!(c.interval(), TimeInterval::new(5, 9));
        assert!(c.satisfies(&ConvoyQuery::new(3, 5, 1.0)));
        assert!(!c.satisfies(&ConvoyQuery::new(4, 5, 1.0)));
        assert!(!c.satisfies(&ConvoyQuery::new(3, 6, 1.0)));
        // Construction normalises a reversed interval.
        assert_eq!(Convoy::new(cluster(&[1]), 9, 5).start, 5);
        let text = c.to_string();
        assert!(text.contains("o1") && text.contains("[5, 9]"));
    }

    #[test]
    fn domination() {
        let big = convoy(&[1, 2, 3, 4], 0, 10);
        let small = convoy(&[1, 2], 2, 8);
        assert!(small.is_dominated_by(&big));
        assert!(!big.is_dominated_by(&small));
        // A convoy always dominates itself.
        assert!(big.is_dominated_by(&big));
        // Same members but a longer interval is not dominated.
        let longer = convoy(&[1, 2], 0, 20);
        assert!(!longer.is_dominated_by(&big));
    }

    #[test]
    fn normalization_removes_duplicates_and_dominated_fragments() {
        let query = ConvoyQuery::new(2, 3, 1.0);
        let convoys = vec![
            convoy(&[1, 2, 3], 0, 9),
            convoy(&[1, 2, 3], 0, 9), // exact duplicate
            convoy(&[1, 2], 2, 6),    // dominated fragment
            convoy(&[1, 2], 0, 20),   // NOT dominated (longer interval)
            convoy(&[7], 0, 9),       // violates m
            convoy(&[8, 9], 0, 1),    // violates k
        ];
        let normalized = normalize_convoys(convoys, &query);
        assert_eq!(normalized.len(), 2);
        assert!(normalized.contains(&convoy(&[1, 2, 3], 0, 9)));
        assert!(normalized.contains(&convoy(&[1, 2], 0, 20)));
    }

    #[test]
    fn normalization_output_is_deterministic() {
        let query = ConvoyQuery::new(2, 2, 1.0);
        let a = normalize_convoys(vec![convoy(&[1, 2], 0, 5), convoy(&[3, 4], 2, 9)], &query);
        let b = normalize_convoys(vec![convoy(&[3, 4], 2, 9), convoy(&[1, 2], 0, 5)], &query);
        assert_eq!(a, b);
    }

    #[test]
    fn comparison_counts_false_positives_and_negatives() {
        let query = ConvoyQuery::new(2, 3, 1.0);
        let reference = vec![convoy(&[1, 2, 3], 0, 9), convoy(&[4, 5], 5, 12)];
        let reported = vec![
            convoy(&[1, 2, 3], 0, 9), // exact match
            convoy(&[6, 7], 0, 9),    // false positive (not in reference)
            convoy(&[4, 5], 5, 8),    // fragment: correct but does not cover the reference convoy
        ];
        let report = compare_result_sets(&reported, &reference, &query);
        assert_eq!(report.reported, 3);
        assert_eq!(report.reference, 2);
        assert_eq!(report.false_positives, 1);
        assert_eq!(report.false_negatives, 1); // convoy {4,5} [5,12] not fully covered
        assert!((report.false_positive_percent() - 100.0 / 3.0).abs() < 1e-9);
        assert!((report.false_negative_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn comparison_empty_sets() {
        let query = ConvoyQuery::new(2, 3, 1.0);
        let report = compare_result_sets(&[], &[], &query);
        assert_eq!(report.false_positive_percent(), 0.0);
        assert_eq!(report.false_negative_percent(), 0.0);
        let report = compare_result_sets(&[convoy(&[1, 2], 0, 9)], &[], &query);
        assert_eq!(report.false_positives, 1);
    }

    #[test]
    fn equivalence_up_to_domination() {
        let a = vec![convoy(&[1, 2, 3], 0, 9)];
        let b = vec![convoy(&[1, 2, 3], 0, 9), convoy(&[1, 2], 3, 7)];
        assert!(result_sets_equivalent(&a, &b));
        let c = vec![convoy(&[1, 2, 3], 0, 9), convoy(&[8, 9], 0, 9)];
        assert!(!result_sets_equivalent(&a, &c));
    }
}
