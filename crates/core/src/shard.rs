//! The spatially sharded convoy discovery driver.
//!
//! Where [`cmc_parallel_windowed`](crate::engine::cmc_parallel_windowed)
//! partitions *time*, this driver partitions *space*: the world bounding box
//! is grid-sharded into `S` rectangles ([`ShardGrid`]), worker threads sweep
//! the window and density-cluster each shard's objects (plus a `2e` boundary
//! halo) independently, and a coordinator merges the shard-local clusters of
//! every tick back into exactly the global clustering before folding them
//! through one [`CmcState`]. The result is bit-identical to sequential
//! [`cmc()`](crate::cmc::cmc) — same convoys, same order — because both the merge
//! (see [`traj_cluster::shard`]) and the fold reproduce the sequential
//! algorithm's semantics exactly.
//!
//! ```text
//!   shard 0 ──sweep──▶ DBSCAN(owned ∪ halo) ──┐ local clusters + cores
//!   shard 1 ──sweep──▶ DBSCAN(owned ∪ halo) ──┤     + border links
//!      ⋮                                      ├──▶ merge (union-find over
//!   shard S ──sweep──▶ DBSCAN(owned ∪ halo) ──┘     shared core objects)
//!                                                        │ per-tick clusters
//!                                                        ▼
//!                                              CmcState fold ──▶ convoys
//! ```
//!
//! This mirrors a multi-node deployment: the only data that crosses the
//! shard boundary is the per-tick cluster lists, core sets and border
//! adjacency — never raw positions of foreign shards — which is exactly the
//! seam the `CmcState::ingest_clusters` API was built for. Within one
//! process the driver composes with the time-partitioned engine conceptually
//! (shards × time partitions); the fold stays a single ordered pass for the
//! same reason it does in the parallel driver (Algorithm 1's fresh-candidate
//! rule couples chain creation across ticks).

use crate::engine::{CmcEngine, CmcState, MAX_PARALLEL_THREADS};
use crate::query::{Convoy, ConvoyQuery};
use convoy_obs::{Obs, SpanId};
use traj_cluster::shard::{
    merge_shard_clusters, shard_clusters_with, ShardClusters, ShardGrid, ShardScratch,
};
use trajectory::geometry::BoundingBox;
use trajectory::{Snapshot, SnapshotPolicy, SnapshotSweep, TimeInterval, TrajectoryDatabase};

/// Hard cap on the shard count. Shards beyond this add per-tick filtering
/// and merge overhead without any additional parallelism (worker threads are
/// separately capped at [`MAX_PARALLEL_THREADS`]).
pub const MAX_SHARDS: usize = 256;

/// Resolves a requested shard count: `0` means one shard per available core,
/// explicit counts are clamped to [`MAX_SHARDS`].
pub fn resolved_shard_count(requested: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    requested.min(MAX_SHARDS)
}

/// The world bounding box of every sample in the database. Interpolated
/// snapshot positions are convex combinations of samples, so they can never
/// leave this box — which makes it a valid spatial domain for the whole
/// window.
fn world_bounds(db: &TrajectoryDatabase) -> Option<BoundingBox> {
    BoundingBox::from_points(
        db.iter()
            .flat_map(|(_, traj)| traj.points().iter().map(|p| p.position())),
    )
}

/// Runs CMC over `window` with spatially sharded clustering.
///
/// The window is swept **once** ([`SnapshotSweep`]) and the extracted
/// snapshots are shared read-only with the worker threads (one per shard,
/// capped at [`MAX_PARALLEL_THREADS`], shards distributed round-robin), each
/// of which runs the shard-local pass of [`traj_cluster::shard`] for its
/// shards at every tick — in a multi-node deployment the sweep would happen
/// on each node over its own data instead. The per-tick partials are then
/// merged into the exact global clustering and folded through a single
/// [`CmcState`] in time order.
///
/// `shards == 0` selects one shard per available core; counts are clamped to
/// [`MAX_SHARDS`]. With one shard (or an empty database) this degrades to
/// the swept sequential engine.
pub fn cmc_sharded_windowed(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    window: TimeInterval,
    shards: usize,
) -> Vec<Convoy> {
    cmc_sharded_windowed_with_stats(db, query, window, shards).0
}

/// Like [`cmc_sharded_windowed`], but also returns the coordinator fold's
/// counters.
pub fn cmc_sharded_windowed_with_stats(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    window: TimeInterval,
    shards: usize,
) -> (Vec<Convoy>, crate::engine::CmcStats) {
    cmc_sharded_windowed_with_stats_obs(db, query, window, shards, &Obs::noop(), SpanId::NONE)
}

/// Like [`cmc_sharded_windowed_with_stats`], recording into `obs`: a
/// `cmc.sharded` root span with a real `cmc.sweep` span over the shared
/// snapshot extraction, one real `cmc.shard` span per worker thread (each
/// worker covers the shards assigned to it round-robin), and a real
/// `cmc.fold` span over the merge-and-stitch pass.
pub fn cmc_sharded_windowed_with_stats_obs(
    db: &TrajectoryDatabase,
    query: &ConvoyQuery,
    window: TimeInterval,
    shards: usize,
    obs: &Obs,
    parent: SpanId,
) -> (Vec<Convoy>, crate::engine::CmcStats) {
    let shard_count = resolved_shard_count(shards);
    let bounds = match world_bounds(db) {
        Some(bounds) if shard_count > 1 => bounds,
        _ => return CmcEngine::Swept.run_windowed_with_stats_obs(db, query, window, obs, parent),
    };
    let grid = ShardGrid::new(bounds, shard_count);
    let shard_count = grid.num_shards();
    let threads = shard_count.min(MAX_PARALLEL_THREADS);
    let engine_span = obs.span_start("cmc.sharded", parent);

    // One sweep for everyone: extraction and interpolation cost is paid
    // once, not once per worker.
    let sweep_span = obs.span_start("cmc.sweep", engine_span);
    let snapshots: Vec<Snapshot> =
        SnapshotSweep::new(db, window, SnapshotPolicy::Interpolate).collect();
    obs.span_end(sweep_span);

    let per_worker: Vec<Vec<Vec<ShardClusters>>> = std::thread::scope(|scope| {
        let grid = &grid;
        let snapshots = &snapshots;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let shard_span = obs.span_start("cmc.shard", engine_span);
                    let mine: Vec<usize> = (w..shard_count).step_by(threads).collect();
                    // One shard-clustering scratch per worker, reused across
                    // every tick and every shard the worker owns.
                    let mut scratch = ShardScratch::new();
                    let out: Vec<Vec<ShardClusters>> = snapshots
                        .iter()
                        .map(|snapshot| {
                            // Mirror the sequential < m guard: such a tick
                            // can produce no cluster, so skip the local runs.
                            if snapshot.len() < query.m {
                                Vec::new()
                            } else {
                                mine.iter()
                                    .map(|&s| {
                                        shard_clusters_with(
                                            &mut scratch,
                                            snapshot,
                                            grid,
                                            s,
                                            query.e,
                                            query.m,
                                        )
                                    })
                                    .collect()
                            }
                        })
                        .collect();
                    obs.span_end(shard_span);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(no-unwrap-in-lib) — re-raising a worker panic on the coordinating thread is the intent
            .map(|h| h.join().expect("shard-clustering worker panicked"))
            .collect()
    });

    // Coordinator: merge every tick's shard partials into the exact global
    // clustering and fold in time order, stitching candidate chains across
    // both shard edges (via the merge) and tick boundaries (via the state).
    let fold_span = obs.span_start("cmc.fold", engine_span);
    let mut state = CmcState::new(query);
    state.set_obs(obs.clone());
    for (i, snapshot) in snapshots.iter().enumerate() {
        let clusters = merge_shard_clusters(per_worker.iter().flat_map(|worker| worker[i].iter()));
        state.ingest_clusters(snapshot.time, &clusters);
    }
    let out = state.finish_with_stats();
    obs.span_end(fold_span);
    obs.span_end(engine_span);
    out
}

/// Runs [`cmc_sharded_windowed`] over the whole time domain of `db`.
pub fn cmc_sharded(db: &TrajectoryDatabase, query: &ConvoyQuery, shards: usize) -> Vec<Convoy> {
    match db.time_domain() {
        Some(window) => cmc_sharded_windowed(db, query, window, shards),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::normalize_convoys;
    use trajectory::{ObjectId, Trajectory};

    /// Three objects convoying along x with a diagonal spread of ~1.4 in x,
    /// so with one-unit-wide shard strips the cluster straddles an internal
    /// edge at every tick. A distant loner adds noise without making the
    /// bounding box taller than wide (the grid then splits x, not y).
    fn marching_db(ticks: i64) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for lane in 0..3u64 {
            db.insert(
                ObjectId(lane),
                Trajectory::from_tuples(
                    (0..ticks).map(|t| (t as f64 + lane as f64 * 0.7, lane as f64 * 0.3, t)),
                )
                .unwrap(),
            );
        }
        db.insert(
            ObjectId(9),
            Trajectory::from_tuples((0..ticks).map(|t| (t as f64, 20.0, t))).unwrap(),
        );
        db
    }

    #[test]
    fn sharded_output_is_bit_identical_to_sequential() {
        let db = marching_db(30);
        let query = ConvoyQuery::new(3, 5, 1.5);
        let reference = CmcEngine::Swept.run(&db, &query);
        assert!(!reference.is_empty());
        for shards in [2, 3, 5, 16] {
            // Raw (un-normalized) equality: same convoys in the same order.
            assert_eq!(
                cmc_sharded(&db, &query, shards),
                reference,
                "{shards} shards diverged from sequential"
            );
        }
    }

    #[test]
    fn convoy_crossing_a_shard_edge_every_tick_survives() {
        // The convoy spans x ∈ [t, t+2] at tick t while strips are ~1 wide:
        // its cluster straddles an internal edge at every single tick.
        let db = marching_db(32);
        let query = ConvoyQuery::new(3, 30, 1.5);
        let convoys = normalize_convoys(cmc_sharded(&db, &query, 31), &query);
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].start, 0);
        assert_eq!(convoys[0].end, 31);
        assert_eq!(convoys[0].objects.len(), 3);
    }

    #[test]
    fn one_shard_and_empty_database_degrade_gracefully() {
        let db = marching_db(10);
        let query = ConvoyQuery::new(3, 5, 1.5);
        assert_eq!(
            cmc_sharded(&db, &query, 1),
            CmcEngine::Swept.run(&db, &query)
        );
        assert!(cmc_sharded(&TrajectoryDatabase::new(), &query, 4).is_empty());
    }

    #[test]
    fn windowed_sharding_respects_the_window() {
        let db = marching_db(30);
        let query = ConvoyQuery::new(3, 3, 1.5);
        let window = TimeInterval::new(5, 14);
        assert_eq!(
            cmc_sharded_windowed(&db, &query, window, 6),
            CmcEngine::Swept.run_windowed(&db, &query, window)
        );
    }

    #[test]
    fn absurd_shard_counts_are_clamped() {
        assert_eq!(resolved_shard_count(1_000_000), MAX_SHARDS);
        assert!(resolved_shard_count(0) >= 1);
        let db = marching_db(8);
        let query = ConvoyQuery::new(3, 4, 1.5);
        assert_eq!(
            cmc_sharded(&db, &query, 1_000_000),
            CmcEngine::Swept.run(&db, &query)
        );
    }
}
