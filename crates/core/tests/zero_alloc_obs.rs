//! Allocation regression harness for the *instrumented* CMC hot path.
//!
//! `crates/clustering/tests/zero_alloc.rs` proves a warmed
//! [`SnapshotClusterer`] allocates nothing per tick with the default no-op
//! recorder. This binary proves the same promise survives instrumentation:
//! with a live [`Registry`] attached, steady-state updates of
//! already-registered counters, gauges and histograms perform no heap
//! allocation (the registry's documented contract — map nodes exist,
//! histogram buckets are fixed arrays), so turning recording on cannot
//! reintroduce per-tick allocation into `// lint: hot-path` regions.
//!
//! Three angles:
//! 1. a warmed clusterer with a live registry still does **0** allocations
//!    per `cluster_into` call;
//! 2. a warmed [`CmcState`]'s per-tick fold — including its `cmc.*` obs
//!    block — does **0** allocations once the candidate set has drained
//!    (quiescent ticks: the fold itself has no allocating work left, so any
//!    count > 0 is the recorder's fault);
//! 3. over a *full* workload (clusters extending, closing and spawning
//!    candidates every tick, which inherently allocates — candidate
//!    intersection and creation own their member storage), a live registry
//!    adds **exactly zero** allocations over the no-op recorder.
//!
//! The counting allocator is process-global, which is why this lives in its
//! own integration-test binary.

// The counting allocator is one of the two sanctioned `unsafe` exceptions in
// the workspace (see the workspace Cargo.toml's lints comment): implementing
// `GlobalAlloc` requires it by definition. `unsafe_code = "deny"` is relaxed
// here only.
#![allow(unsafe_code)]

use convoy_core::{CmcState, ConvoyQuery};
use convoy_obs::{Obs, Registry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use traj_cluster::SnapshotClusterer;
use trajectory::database::SnapshotEntry;
use trajectory::geometry::Point;
use trajectory::{ObjectId, Snapshot};

/// Forwards to the system allocator, counting every allocation call
/// (`alloc`, `realloc` growth included — a `Vec` growing its capacity is an
/// allocation the steady state must not perform).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counter is process-global but the test harness runs tests on
/// parallel threads; every test takes this lock so no other test's
/// allocations leak into a measured window. A failing sibling only poisons
/// the lock, it does not invalidate the serialization, so poisoning is
/// ignored rather than cascading one failure into three.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Deterministic xorshift64* stream, so the snapshots are reproducible
/// without pulling a RNG dependency into the measured binary.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn coord(&mut self) -> f64 {
        (self.next() % 10_000) as f64 * 0.01
    }
}

/// A "tick": `n` objects scattered over a 100×100 world, id-ordered like
/// database snapshots are.
fn snapshot(rng: &mut XorShift, time: i64, n: usize) -> Snapshot {
    Snapshot {
        time,
        entries: (0..n)
            .map(|i| SnapshotEntry {
                id: ObjectId(i as u64),
                position: Point::new(rng.coord(), rng.coord()),
                interpolated: false,
            })
            .collect(),
    }
}

/// A tick of five-object groups travelling together: each group jitters
/// within ±1 of a drifting anchor (well inside `e = 3`, anchors 25 apart),
/// except on its churn tick — every 15 ticks, staggered by group index —
/// when its members scatter far away, breaking the candidate chain so
/// convoys actually close during the run.
fn convoy_snapshot(rng: &mut XorShift, time: i64, groups: usize) -> Snapshot {
    const PER_GROUP: usize = 5;
    let mut entries = Vec::with_capacity(groups * PER_GROUP);
    for g in 0..groups {
        let scattered = (time + g as i64) % 15 == 0;
        let anchor_x = (g % 8) as f64 * 25.0 + time as f64 * 0.2;
        let anchor_y = (g / 8) as f64 * 25.0;
        for i in 0..PER_GROUP {
            let position = if scattered {
                Point::new(rng.coord() + 500.0, rng.coord() + 500.0)
            } else {
                let jitter_x = (rng.next() % 200) as f64 * 0.01 - 1.0;
                let jitter_y = (rng.next() % 200) as f64 * 0.01 - 1.0;
                Point::new(anchor_x + jitter_x, anchor_y + jitter_y)
            };
            entries.push(SnapshotEntry {
                id: ObjectId((g * PER_GROUP + i) as u64),
                position,
                interpolated: false,
            });
        }
    }
    Snapshot { time, entries }
}

#[test]
fn warmed_clusterer_with_live_registry_performs_zero_allocations() {
    let _guard = serial();
    let registry = Arc::new(Registry::new());
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    let ticks: Vec<Snapshot> = (0..40).map(|t| snapshot(&mut rng, t, 300)).collect();

    let mut clusterer = SnapshotClusterer::with_obs(Obs::registry(registry.clone()));
    // Warm-up: two passes grow every scratch buffer to the working-set
    // fixpoint and register every `cluster.*` metric name in the registry.
    for _ in 0..2 {
        for snap in &ticks {
            clusterer.cluster_into(snap, 3.0, 3);
        }
    }

    let before = allocations();
    let mut total_clusters = 0usize;
    for snap in &ticks {
        total_clusters += clusterer.cluster_into(snap, 3.0, 3).len();
    }
    let after = allocations();
    assert!(total_clusters > 0, "steady state produced no clusters");
    assert_eq!(
        after - before,
        0,
        "a warmed clusterer with a live Registry must not allocate in \
         steady state ({} allocations over {} instrumented ticks)",
        after - before,
        ticks.len()
    );
    // The instrumentation actually ran: 3 passes × 40 ticks of calls.
    assert_eq!(registry.counter("cluster.calls"), 120);
    // The batched-kernel utilisation counters accrued through the same
    // zero-allocation path: every DBSCAN neighbourhood query scans at least
    // the queried point itself, and full batches can never account for more
    // lanes than were scanned in total.
    let lanes = registry.counter("cluster.kernel_lanes");
    let batches = registry.counter("cluster.kernel_batches");
    assert!(lanes > 0, "kernel scans recorded no candidate lanes");
    assert!(
        batches * (traj_cluster::kernel::LANE_WIDTH as u64) <= lanes,
        "kernel batch accounting inconsistent: {batches} batches vs {lanes} lanes"
    );
}

#[test]
fn quiescent_cmc_fold_with_live_registry_performs_zero_allocations() {
    let _guard = serial();
    let registry = Arc::new(Registry::new());
    let mut rng = XorShift(0x2545f4914f6cdd1d);

    let mut state = CmcState::new(&ConvoyQuery::new(3, 3, 3.0));
    state.set_obs(Obs::registry(registry.clone()));
    // Warm-up: real ticks register every `cluster.*` and `cmc.*` metric name
    // and grow the fold's scratch buffers.
    for t in 0..30 {
        state.ingest_snapshot(&snapshot(&mut rng, t, 300));
    }
    // Quiesce: an empty tick closes every open candidate; draining the
    // closed set leaves nothing for later ticks to push into.
    state.ingest_clusters(30, &[]);
    drop(state.drain_closed());
    assert_eq!(state.active_candidates(), 0);

    // Measured: empty ticks exercise the whole per-tick obs block (counter,
    // two histograms, two gauges against a live registry) with no fold work
    // left, so every allocation counted here is the recorder's.
    let before = allocations();
    for t in 31..81 {
        state.ingest_clusters(t, &[]);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state metric updates must not allocate ({} allocations \
         over 50 quiescent instrumented ticks)",
        after - before
    );
    assert_eq!(registry.counter("cmc.ticks_ingested"), 81);
}

#[test]
fn live_registry_adds_zero_allocations_to_a_full_cmc_workload() {
    let _guard = serial();
    // Candidate extension and creation own their member storage, so a busy
    // fold allocates by design; the obs guarantee is that recording adds
    // *nothing on top*. Run the identical warmed workload twice — no-op
    // recorder vs live registry — and require equal allocation counts.
    let measured = |obs: Obs| -> (u64, u64) {
        let mut rng = XorShift(0xdeadbeefcafef00d);
        let ticks: Vec<Snapshot> = (0..120).map(|t| convoy_snapshot(&mut rng, t, 40)).collect();
        let mut state = CmcState::new(&ConvoyQuery::new(3, 3, 3.0));
        state.set_obs(obs);
        for snap in &ticks[..60] {
            state.ingest_snapshot(snap);
        }
        let before = allocations();
        for snap in &ticks[60..] {
            state.ingest_snapshot(snap);
        }
        (allocations() - before, state.stats().convoys_closed)
    };

    // The exact-equality comparison is sensitive to ambient allocations from
    // the test harness thread (it prints sibling results while this body
    // runs), so take the minimum over three attempts per recorder: rare
    // one-off noise is filtered, while a real recording cost would show up
    // in every attempt.
    let mut noop_allocs = u64::MAX;
    let mut noop_closed = 0;
    for _ in 0..3 {
        let (allocs, closed) = measured(Obs::noop());
        noop_allocs = noop_allocs.min(allocs);
        noop_closed = closed;
    }
    let mut live_allocs = u64::MAX;
    let mut live_closed = 0;
    let mut recorded_ticks = 0;
    for _ in 0..3 {
        let registry = Arc::new(Registry::new());
        let (allocs, closed) = measured(Obs::registry(registry.clone()));
        live_allocs = live_allocs.min(allocs);
        live_closed = closed;
        recorded_ticks = registry.counter("cmc.ticks_ingested");
        assert_eq!(registry.counter("cluster.calls"), 120);
    }

    assert_eq!(
        noop_closed, live_closed,
        "recording must not change results"
    );
    assert!(noop_closed > 0, "workload closed no convoys");
    assert_eq!(recorded_ticks, 120, "live run was not instrumented");
    assert_eq!(
        live_allocs, noop_allocs,
        "a live Registry must add zero allocations over the no-op recorder \
         on an identical workload (no-op {noop_allocs}, live {live_allocs})"
    );
}
