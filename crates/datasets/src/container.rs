//! The `.convoy` binary columnar trajectory container.
//!
//! CSV parsing dominates cold-start: every sample costs an integer/float
//! parse, and nothing in the file says where a time range lives. This module
//! defines a read-optimized binary layout — time-blocked, column-major,
//! indexed — so a full load is a straight `memcpy`-shaped column decode and
//! a windowed load touches only the blocks whose time range intersects the
//! window.
//!
//! ## File format (version 1)
//!
//! ```text
//! magic    8 bytes   b"CONVOYTR"
//! version  u32 LE    1
//! blocks   u64 LE    number of data blocks
//! then per block, back to back:
//!   header  56 bytes
//!     records u64 LE   samples in this block (>= 1)
//!     t_min   i64 LE   smallest timestamp in the block
//!     t_max   i64 LE   largest timestamp in the block
//!     bbox    4×f64 LE min_x, min_y, max_x, max_y over the block's samples
//!   payload, column-major (records × 32 bytes total)
//!     ids     records × u64 LE
//!     ts      records × i64 LE
//!     xs      records × f64 LE  (IEEE-754 bit patterns — round trips exactly)
//!     ys      records × f64 LE
//!   crc32   u32 LE    IEEE CRC-32 of this block's header + payload
//! ```
//!
//! Records are sorted by `(t, object)` across the whole file, so block time
//! ranges are non-decreasing and a window `[from, to]` maps to a contiguous
//! run of blocks. The per-block CRC (same [`crc32`] the stream checkpoint
//! uses) means a windowed read verifies only the bytes it actually decodes.
//!
//! Decoding follows the checkpoint discipline: strict total decode, typed
//! [`ContainerError`]s, never a panic — a truncated, bit-flipped, foreign or
//! future-version file is rejected, not partially loaded. Writes are atomic
//! (temp file + fsync + rename), so a crash mid-convert never leaves a torn
//! container behind.

// This module faces arbitrary bytes; every abort path is a bug. Enforced by
// convoy-lint's no-panic-decode rule, the corruption suite
// (`crates/datasets/tests/container_corruption.rs`) and clippy:
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use trajectory::{ObjectId, TimeInterval, TrajectoryBuilder, TrajectoryDatabase};

/// The container file's magic bytes (≠ the checkpoint's `CONVOYCK`).
pub const MAGIC: [u8; 8] = *b"CONVOYTR";

/// The current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Default number of records per block: large enough that the per-block
/// header + CRC is noise, small enough that windowed queries skip real work.
pub const DEFAULT_BLOCK_RECORDS: usize = 4096;

/// File header length: magic + version + block count.
const FILE_HEADER_LEN: u64 = 8 + 4 + 8;

/// Per-block header length: record count, t_min, t_max, bbox.
const BLOCK_HEADER_LEN: u64 = 8 + 8 + 8 + 32;

/// Bytes one record occupies in a block payload (id + t + x + y).
const RECORD_LEN: u64 = 32;

/// Per-block CRC trailer length.
const BLOCK_TRAILER_LEN: u64 = 4;

/// Why a `.convoy` container could not be written or read.
#[derive(Debug)]
pub enum ContainerError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the container magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the encoded structure does (torn write).
    Truncated,
    /// A block's trailing CRC-32 does not match its contents.
    ChecksumMismatch {
        /// 0-based index of the corrupt block.
        block: usize,
    },
    /// The structure decoded but violates a format invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Io(e) => write!(f, "container I/O error: {e}"),
            ContainerError::BadMagic => write!(f, "not a .convoy container (bad magic)"),
            ContainerError::UnsupportedVersion(v) => {
                write!(f, "unsupported container format version {v}")
            }
            ContainerError::Truncated => write!(f, "container is truncated"),
            ContainerError::ChecksumMismatch { block } => {
                write!(f, "container block {block} checksum mismatch")
            }
            ContainerError::Malformed(what) => write!(f, "malformed container: {what}"),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ContainerError {
    fn from(e: std::io::Error) -> Self {
        ContainerError::Io(e)
    }
}

/// A short read against a length the index promised is a torn file, not a
/// generic I/O failure.
fn map_eof_to_truncated(e: std::io::Error) -> ContainerError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ContainerError::Truncated
    } else {
        ContainerError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, same polynomial and table construction as the stream
// checkpoint — kept local so `traj-datasets` does not depend on
// `convoy-stream`).

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c; // lint: allow(no-panic-decode) — const loop, i < 256 == table.len()
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum each block trailer stores).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // lint: allow(no-panic-decode) — index masked to 0..=255, table length 256
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Writer

/// Serializes `db` as a `.convoy` container with at most `block_records`
/// samples per block (see the module docs for the layout). Records are
/// written sorted by `(t, object)`; the per-block index is derived from the
/// data, so the same database always serializes to the same bytes.
pub fn write_container<W: Write>(
    db: &TrajectoryDatabase,
    mut writer: W,
    block_records: usize,
) -> Result<(), ContainerError> {
    let block_records = block_records.max(1);
    let mut samples = db.all_samples();
    samples.sort_unstable_by_key(|(id, p)| (p.t, id.0));

    let blocks = samples.len().div_ceil(block_records);
    let mut head = Vec::with_capacity(FILE_HEADER_LEN as usize);
    head.extend_from_slice(&MAGIC);
    head.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    head.extend_from_slice(&(blocks as u64).to_le_bytes());
    writer.write_all(&head)?;

    let mut block: Vec<u8> = Vec::new();
    for chunk in samples.chunks(block_records) {
        let (Some((_, first)), Some((_, last))) = (chunk.first(), chunk.last()) else {
            continue; // chunks() never yields an empty chunk
        };
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for (_, p) in chunk {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }

        block.clear();
        block.extend_from_slice(&(chunk.len() as u64).to_le_bytes());
        block.extend_from_slice(&first.t.to_le_bytes());
        block.extend_from_slice(&last.t.to_le_bytes());
        for v in [min_x, min_y, max_x, max_y] {
            block.extend_from_slice(&v.to_le_bytes());
        }
        for (id, _) in chunk {
            block.extend_from_slice(&id.0.to_le_bytes());
        }
        for (_, p) in chunk {
            block.extend_from_slice(&p.t.to_le_bytes());
        }
        for (_, p) in chunk {
            block.extend_from_slice(&p.x.to_le_bytes());
        }
        for (_, p) in chunk {
            block.extend_from_slice(&p.y.to_le_bytes());
        }
        let crc = crc32(&block);
        block.extend_from_slice(&crc.to_le_bytes());
        writer.write_all(&block)?;
    }
    Ok(())
}

/// Writes a container to `path` atomically: bytes go to a sibling
/// `<path>.tmp`, are synced, and are renamed over `path` in one step — a
/// crash mid-write never leaves a torn container at `path`.
pub fn write_container_file<P: AsRef<Path>>(
    db: &TrajectoryDatabase,
    path: P,
    block_records: usize,
) -> Result<(), ContainerError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let file = File::create(&tmp)?;
        let mut buffered = std::io::BufWriter::new(file);
        write_container(db, &mut buffered, block_records)?;
        let file = buffered
            .into_inner()
            .map_err(|e| ContainerError::Io(e.into_error()))?;
        file.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader

/// One entry of the reader's in-memory block index, built at open time from
/// the per-block headers alone (payloads are skipped over).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMeta {
    /// Byte offset of the block header within the file.
    pub offset: u64,
    /// Number of records in the block (>= 1).
    pub records: u64,
    /// Smallest timestamp in the block.
    pub t_min: i64,
    /// Largest timestamp in the block.
    pub t_max: i64,
    /// Spatial bounds over the block's samples: `min_x, min_y, max_x, max_y`.
    pub bbox: [f64; 4],
}

impl BlockMeta {
    /// Whether the block's time range intersects `window`.
    pub fn intersects(&self, window: TimeInterval) -> bool {
        self.t_max >= window.start && self.t_min <= window.end
    }

    /// Total on-disk size of the block (header + payload + CRC trailer).
    fn len(&self) -> u64 {
        BLOCK_HEADER_LEN
            .saturating_add(self.records.saturating_mul(RECORD_LEN))
            .saturating_add(BLOCK_TRAILER_LEN)
    }
}

/// What a [`ContainerReader`] load actually touched, alongside the database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Blocks read and decoded (== the index length for a full load).
    pub blocks_read: usize,
    /// Records decoded from those blocks, including any a windowed load
    /// then filtered out at the window's boundary blocks.
    pub records_read: u64,
}

impl ReadStats {
    /// On-disk bytes this load actually read and verified: the headers,
    /// payloads and CRC trailers of the touched blocks (pruned blocks are
    /// seeked over, their bytes never enter memory).
    pub fn bytes_scanned(&self) -> u64 {
        (self.blocks_read as u64)
            .saturating_mul(BLOCK_HEADER_LEN.saturating_add(BLOCK_TRAILER_LEN))
            .saturating_add(self.records_read.saturating_mul(RECORD_LEN))
    }
}

/// Bounded decoder over one block's bytes — the checkpoint `Dec` idiom:
/// every read is bounds-checked, corrupt input surfaces as an error, never
/// a panic.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ContainerError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(ContainerError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(ContainerError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }
    /// Reads exactly `N` bytes into a fixed-size array. The copy is bounded
    /// by both sides of the `zip`, so no length mismatch can panic.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], ContainerError> {
        let src = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, byte) in out.iter_mut().zip(src) {
            *dst = *byte;
        }
        Ok(out)
    }
    fn u64(&mut self) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }
    fn i64(&mut self) -> Result<i64, ContainerError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }
    fn f64(&mut self) -> Result<f64, ContainerError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }
}

/// Parses and sanity-checks one 56-byte block header at `offset`.
fn decode_block_header(header: &[u8], offset: u64) -> Result<BlockMeta, ContainerError> {
    let mut d = Dec {
        bytes: header,
        pos: 0,
    };
    let records = d.u64()?;
    let t_min = d.i64()?;
    let t_max = d.i64()?;
    let mut bbox = [0.0f64; 4];
    for v in bbox.iter_mut() {
        *v = d.f64()?;
    }
    if records == 0 {
        return Err(ContainerError::Malformed("empty block"));
    }
    if t_min > t_max {
        return Err(ContainerError::Malformed("block time range inverted"));
    }
    let [min_x, min_y, max_x, max_y] = bbox;
    if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite()) {
        return Err(ContainerError::Malformed("block bbox not finite"));
    }
    if min_x > max_x || min_y > max_y {
        return Err(ContainerError::Malformed("block bbox inverted"));
    }
    Ok(BlockMeta {
        offset,
        records,
        t_min,
        t_max,
        bbox,
    })
}

/// A block-indexed `.convoy` reader.
///
/// Opening validates the file header and walks the per-block headers
/// (seeking over payloads) into an in-memory index; nothing else is read
/// until a load asks for it. Loads decode touched blocks through **reused**
/// scratch buffers — one byte buffer, four column buffers — so a warmed
/// reader performs no per-point allocation on the decode path.
pub struct ContainerReader<R: Read + Seek> {
    reader: R,
    index: Vec<BlockMeta>,
    /// Reused raw-byte buffer, sized to the largest block read so far.
    block_buf: Vec<u8>,
    /// Reused column buffers for one block's decoded payload.
    ids: Vec<u64>,
    ts: Vec<i64>,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl ContainerReader<std::io::BufReader<File>> {
    /// Opens the container file at `path`.
    pub fn open_file<P: AsRef<Path>>(path: P) -> Result<Self, ContainerError> {
        ContainerReader::open(std::io::BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> ContainerReader<R> {
    /// Opens a container over any seekable byte stream, validating the file
    /// header and building the block index. Strict: short files, foreign
    /// magic, future versions, impossible record counts, non-monotone block
    /// time ranges and trailing bytes are all rejected here.
    pub fn open(mut reader: R) -> Result<Self, ContainerError> {
        let file_len = reader.seek(SeekFrom::End(0))?;
        reader.seek(SeekFrom::Start(0))?;
        if file_len < FILE_HEADER_LEN {
            // Distinguish a torn header from a foreign file by whatever
            // prefix is present.
            let mut head = Vec::new();
            reader.take(FILE_HEADER_LEN).read_to_end(&mut head)?;
            return Err(if MAGIC.starts_with(&head) || head.starts_with(&MAGIC) {
                ContainerError::Truncated
            } else {
                ContainerError::BadMagic
            });
        }
        let mut head = [0u8; FILE_HEADER_LEN as usize];
        reader.read_exact(&mut head)?;
        let mut d = Dec {
            bytes: &head,
            pos: 0,
        };
        if d.take(MAGIC.len())? != MAGIC.as_slice() {
            return Err(ContainerError::BadMagic);
        }
        let version = u32::from_le_bytes(d.take_array()?);
        if version != FORMAT_VERSION {
            return Err(ContainerError::UnsupportedVersion(version));
        }
        let blocks = d.u64()?;
        // Bound the count by the bytes actually present (a block is at least
        // one record), so a corrupt count cannot drive an absurd allocation.
        let min_block = BLOCK_HEADER_LEN + RECORD_LEN + BLOCK_TRAILER_LEN;
        if blocks > (file_len - FILE_HEADER_LEN) / min_block {
            return Err(ContainerError::Truncated);
        }

        let mut index: Vec<BlockMeta> = Vec::with_capacity(blocks as usize);
        let mut offset = FILE_HEADER_LEN;
        let mut header = [0u8; BLOCK_HEADER_LEN as usize];
        for _ in 0..blocks {
            reader.seek(SeekFrom::Start(offset))?;
            reader
                .read_exact(&mut header)
                .map_err(map_eof_to_truncated)?;
            let meta = decode_block_header(&header, offset)?;
            if let Some(prev) = index.last() {
                if meta.t_min < prev.t_max {
                    return Err(ContainerError::Malformed("block time ranges not ascending"));
                }
            }
            let end = offset
                .checked_add(meta.len())
                .ok_or(ContainerError::Truncated)?;
            if end > file_len {
                return Err(ContainerError::Truncated);
            }
            index.push(meta);
            offset = end;
        }
        if offset != file_len {
            return Err(ContainerError::Malformed("trailing bytes after blocks"));
        }
        Ok(ContainerReader {
            reader,
            index,
            block_buf: Vec::new(),
            ids: Vec::new(),
            ts: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
        })
    }

    /// The block index (time-ascending).
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.index
    }

    /// Total records across all blocks, per the index.
    pub fn total_records(&self) -> u64 {
        self.index
            .iter()
            .fold(0u64, |acc, b| acc.saturating_add(b.records))
    }

    /// Loads the whole container into a database.
    pub fn load(&mut self) -> Result<(TrajectoryDatabase, ReadStats), ContainerError> {
        self.load_impl(None)
    }

    /// Loads only the samples with `window.start <= t <= window.end`,
    /// reading just the blocks whose time range intersects the window (the
    /// [`trajectory::TrajectorySource::load_window`] contract: identical to
    /// a full load restricted to the window).
    pub fn load_window(
        &mut self,
        window: TimeInterval,
    ) -> Result<(TrajectoryDatabase, ReadStats), ContainerError> {
        self.load_impl(Some(window))
    }

    fn load_impl(
        &mut self,
        window: Option<TimeInterval>,
    ) -> Result<(TrajectoryDatabase, ReadStats), ContainerError> {
        let mut builders: BTreeMap<ObjectId, TrajectoryBuilder> = BTreeMap::new();
        let mut stats = ReadStats::default();
        // `(t, id)` of the last decoded record, across blocks: the file is
        // globally sorted, so any subset of blocks must decode strictly
        // increasing — a duplicate `(object, t)` pair is a format violation,
        // not something to silently collapse.
        let mut prev: Option<(i64, u64)> = None;
        for bi in 0..self.index.len() {
            let Some(meta) = self.index.get(bi).copied() else {
                break;
            };
            if let Some(w) = window {
                if !meta.intersects(w) {
                    continue;
                }
            }
            self.read_block(bi, &meta)?;
            stats.blocks_read = stats.blocks_read.saturating_add(1);
            stats.records_read = stats.records_read.saturating_add(meta.records);
            let [min_x, min_y, max_x, max_y] = meta.bbox;
            for (((&id, &t), &x), &y) in self
                .ids
                .iter()
                .zip(self.ts.iter())
                .zip(self.xs.iter())
                .zip(self.ys.iter())
            {
                if t < meta.t_min || t > meta.t_max {
                    return Err(ContainerError::Malformed("record outside block time range"));
                }
                if !(x.is_finite() && y.is_finite()) {
                    return Err(ContainerError::Malformed("non-finite coordinate"));
                }
                if x < min_x || x > max_x || y < min_y || y > max_y {
                    return Err(ContainerError::Malformed("record outside block bbox"));
                }
                if prev.is_some_and(|p| p >= (t, id)) {
                    return Err(ContainerError::Malformed(
                        "records not strictly (t, object)-ascending",
                    ));
                }
                prev = Some((t, id));
                if window.is_some_and(|w| t < w.start || t > w.end) {
                    continue;
                }
                builders.entry(ObjectId(id)).or_default().add(x, y, t);
            }
        }
        let mut db = TrajectoryDatabase::new();
        for (id, builder) in builders {
            // Records are strictly `(t, object)`-ascending, so per-object
            // timestamps are strictly increasing and `build` cannot fail on
            // them; map any residual error instead of unwrapping.
            let traj = builder
                .build()
                .map_err(|_| ContainerError::Malformed("block records do not form a trajectory"))?;
            db.insert(id, traj);
        }
        Ok((db, stats))
    }

    /// Reads and CRC-checks block `bi` into the reused column buffers.
    fn read_block(&mut self, bi: usize, meta: &BlockMeta) -> Result<(), ContainerError> {
        let total = meta.len();
        self.reader.seek(SeekFrom::Start(meta.offset))?;
        self.block_buf.clear();
        self.block_buf.resize(total as usize, 0);
        self.reader
            .read_exact(&mut self.block_buf)
            .map_err(map_eof_to_truncated)?;

        let body_len = (total - BLOCK_TRAILER_LEN) as usize;
        let (body, trailer) = self.block_buf.split_at(body_len);
        let mut stored = [0u8; BLOCK_TRAILER_LEN as usize];
        for (dst, byte) in stored.iter_mut().zip(trailer) {
            *dst = *byte;
        }
        if crc32(body) != u32::from_le_bytes(stored) {
            return Err(ContainerError::ChecksumMismatch { block: bi });
        }

        let mut d = Dec {
            bytes: body,
            pos: 0,
        };
        // Re-decode the header out of the checksummed bytes and require it
        // to match the index built at open time.
        if decode_block_header(d.take(BLOCK_HEADER_LEN as usize)?, meta.offset)? != *meta {
            return Err(ContainerError::Malformed("block header changed since open"));
        }
        let n = meta.records as usize;
        self.ids.clear();
        self.ts.clear();
        self.xs.clear();
        self.ys.clear();
        self.ids.reserve(n);
        self.ts.reserve(n);
        self.xs.reserve(n);
        self.ys.reserve(n);
        for _ in 0..n {
            self.ids.push(d.u64()?);
        }
        for _ in 0..n {
            self.ts.push(d.i64()?);
        }
        for _ in 0..n {
            self.xs.push(d.f64()?);
        }
        for _ in 0..n {
            self.ys.push(d.f64()?);
        }
        if d.pos != body.len() {
            return Err(ContainerError::Malformed("trailing bytes in block"));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic on bad fixtures
mod tests {
    use super::*;
    use crate::{generate, DatasetProfile};
    use std::io::Cursor;

    fn encode(db: &TrajectoryDatabase, block_records: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_container(db, &mut bytes, block_records).unwrap();
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_is_bit_identical_across_block_sizes() {
        let dataset = generate(&DatasetProfile::truck().scaled(0.02), 5);
        for block_records in [1, 7, 64, DEFAULT_BLOCK_RECORDS] {
            let bytes = encode(&dataset.database, block_records);
            let mut reader = ContainerReader::open(Cursor::new(&bytes)).unwrap();
            let (db, stats) = reader.load().unwrap();
            assert_eq!(db, dataset.database, "block_records={block_records}");
            assert_eq!(stats.blocks_read, reader.blocks().len());
            assert_eq!(stats.records_read, dataset.database.total_points() as u64);
        }
    }

    #[test]
    fn empty_database_round_trips_as_zero_blocks() {
        let bytes = encode(&TrajectoryDatabase::new(), 16);
        assert_eq!(bytes.len() as u64, FILE_HEADER_LEN);
        let mut reader = ContainerReader::open(Cursor::new(&bytes)).unwrap();
        assert!(reader.blocks().is_empty());
        let (db, stats) = reader.load().unwrap();
        assert!(db.is_empty());
        assert_eq!(stats, ReadStats::default());
    }

    #[test]
    fn windowed_load_prunes_blocks_and_equals_restrict() {
        let dataset = generate(&DatasetProfile::cattle().scaled(0.05), 11);
        let bytes = encode(&dataset.database, 32);
        let mut reader = ContainerReader::open(Cursor::new(&bytes)).unwrap();
        assert!(reader.blocks().len() > 3, "need multiple blocks to prune");
        let domain = dataset.database.time_domain().unwrap();
        let mid = domain.start + (domain.end - domain.start) / 2;
        let window = TimeInterval::new(domain.start, mid);
        let (windowed, stats) = reader.load_window(window).unwrap();
        assert_eq!(windowed, dataset.database.restrict(window));
        assert!(
            stats.blocks_read < reader.blocks().len(),
            "windowed load must skip blocks: read {} of {}",
            stats.blocks_read,
            reader.blocks().len()
        );
        // A window touching nothing reads nothing.
        let far = TimeInterval::new(domain.end + 1_000, domain.end + 2_000);
        let (empty, stats) = reader.load_window(far).unwrap();
        assert!(empty.is_empty());
        assert_eq!(stats.blocks_read, 0);
    }

    #[test]
    fn reader_buffers_are_reused_across_loads() {
        let dataset = generate(&DatasetProfile::truck().scaled(0.01), 3);
        let bytes = encode(&dataset.database, 16);
        let mut reader = ContainerReader::open(Cursor::new(&bytes)).unwrap();
        let (first, _) = reader.load().unwrap();
        let cap = (reader.block_buf.capacity(), reader.ids.capacity());
        let (second, _) = reader.load().unwrap();
        assert_eq!(first, second);
        assert_eq!(
            (reader.block_buf.capacity(), reader.ids.capacity()),
            cap,
            "warm loads must not regrow the scratch buffers"
        );
    }

    #[test]
    fn foreign_and_future_files_are_rejected() {
        assert!(matches!(
            ContainerReader::open(Cursor::new(b"PNG\r\n\x1a\n_not_a_container____".to_vec())),
            Err(ContainerError::BadMagic)
        ));
        // Future version: magic intact, version bumped.
        let db = generate(&DatasetProfile::truck().scaled(0.01), 3).database;
        let mut bytes = encode(&db, 16);
        bytes[8] = 9;
        assert!(matches!(
            ContainerReader::open(Cursor::new(bytes)),
            Err(ContainerError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let db = generate(&DatasetProfile::truck().scaled(0.01), 3).database;
        let bytes = encode(&db, 16);
        for len in 0..bytes.len() {
            let err = ContainerReader::open(Cursor::new(bytes[..len].to_vec()))
                .and_then(|mut r| r.load())
                .expect_err("truncated container must not open+load");
            assert!(
                matches!(
                    err,
                    ContainerError::BadMagic
                        | ContainerError::Truncated
                        | ContainerError::Malformed(_)
                        | ContainerError::ChecksumMismatch { .. }
                ),
                "len={len}: {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let db = generate(&DatasetProfile::truck().scaled(0.01), 3).database;
        let mut bytes = encode(&db, 16);
        bytes.push(0);
        assert!(matches!(
            ContainerReader::open(Cursor::new(bytes)),
            Err(ContainerError::Truncated) | Err(ContainerError::Malformed(_))
        ));
    }
}
