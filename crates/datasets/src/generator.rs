//! The synthetic trajectory generator: independent background movers plus
//! planted convoy groups, with irregular sampling and partial presence.

use crate::ground_truth::PlantedConvoy;
use crate::profile::DatasetProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajectory::{ObjectId, TimePoint, TrajPoint, Trajectory, TrajectoryDatabase};

/// A generated dataset: the trajectory database plus the ground truth of the
/// convoys that were planted into it.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The synthetic trajectory database.
    pub database: TrajectoryDatabase,
    /// The convoys the generator planted (for accuracy checks).
    pub ground_truth: Vec<PlantedConvoy>,
    /// The profile the dataset was generated from.
    pub profile: DatasetProfile,
}

/// Convenience wrapper: generates a dataset from a profile and a seed.
pub fn generate(profile: &DatasetProfile, seed: u64) -> GeneratedDataset {
    DatasetGenerator::new(*profile, seed).generate()
}

/// The generator itself. Construction is cheap; [`DatasetGenerator::generate`]
/// does the work.
#[derive(Debug, Clone)]
pub struct DatasetGenerator {
    profile: DatasetProfile,
    seed: u64,
}

/// A correlated random walk: smooth heading changes, reflecting at the world
/// boundary, optionally drawn towards a hotspot. This is the movement model
/// for both group leaders and independent background objects.
struct Walker {
    x: f64,
    y: f64,
    heading: f64,
    speed: f64,
    /// The hotspot currently steered towards, if any.
    target: Option<(f64, f64)>,
}

impl Walker {
    fn new(rng: &mut StdRng, world: f64, mean_speed: f64) -> Self {
        Walker {
            x: rng.gen_range(0.0..world),
            y: rng.gen_range(0.0..world),
            heading: rng.gen_range(0.0..std::f64::consts::TAU),
            speed: mean_speed * rng.gen_range(0.6..1.4),
            target: None,
        }
    }

    fn step(&mut self, rng: &mut StdRng, world: f64, turn_sigma: f64, attraction: f64) {
        // Approximate a normal turn with the sum of uniform samples (Irwin–Hall),
        // which avoids pulling in a distributions crate.
        let turn: f64 = (0..4).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 2.0 * turn_sigma;
        self.heading += turn;
        let mut dx = self.heading.cos() * self.speed;
        let mut dy = self.heading.sin() * self.speed;
        // Blend the random-walk step with a step towards the current hotspot.
        if let Some((tx, ty)) = self.target {
            let to_x = tx - self.x;
            let to_y = ty - self.y;
            let dist = (to_x * to_x + to_y * to_y).sqrt();
            if dist > self.speed {
                dx = dx * (1.0 - attraction) + to_x / dist * self.speed * attraction;
                dy = dy * (1.0 - attraction) + to_y / dist * self.speed * attraction;
            }
        }
        self.x += dx;
        self.y += dy;
        // Reflect at the boundary.
        if self.x < 0.0 {
            self.x = -self.x;
            self.heading = std::f64::consts::PI - self.heading;
        } else if self.x > world {
            self.x = 2.0 * world - self.x;
            self.heading = std::f64::consts::PI - self.heading;
        }
        if self.y < 0.0 {
            self.y = -self.y;
            self.heading = -self.heading;
        } else if self.y > world {
            self.y = 2.0 * world - self.y;
            self.heading = -self.heading;
        }
        self.x = self.x.clamp(0.0, world);
        self.y = self.y.clamp(0.0, world);
    }
}

impl DatasetGenerator {
    /// Creates a generator for `profile` with a deterministic `seed`.
    pub fn new(profile: DatasetProfile, seed: u64) -> Self {
        DatasetGenerator { profile, seed }
    }

    /// Generates the dataset. Deterministic for a fixed (profile, seed) pair.
    pub fn generate(&self) -> GeneratedDataset {
        let p = &self.profile;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut database = TrajectoryDatabase::new();
        let mut ground_truth = Vec::new();

        // Shared hotspots (depots, intersections, water points) that
        // independent objects gravitate towards, creating the incidental
        // co-location real GPS data exhibits.
        let hotspots: Vec<(f64, f64)> = (0..p.movement.num_hotspots)
            .map(|_| {
                (
                    rng.gen_range(0.0..p.movement.world_size),
                    rng.gen_range(0.0..p.movement.world_size),
                )
            })
            .collect();

        let convoy_member_total = p.num_convoys * p.convoy_size;
        let mut next_id = 0u64;

        // --- Planted convoy groups -------------------------------------------------
        for _ in 0..p.num_convoys {
            let members: Vec<ObjectId> = (0..p.convoy_size)
                .map(|i| ObjectId(next_id + i as u64))
                .collect();
            next_id += p.convoy_size as u64;

            // The group's shared lifetime inside the time domain.
            let lifetime = p.convoy_lifetime.min(p.time_domain);
            let latest_start = (p.time_domain - lifetime).max(0);
            let start: TimePoint = if latest_start == 0 {
                0
            } else {
                rng.gen_range(0..=latest_start)
            };
            let end = start + lifetime - 1;

            // A leader walk shared by the group; members follow with a fixed
            // per-member offset plus small jitter bounded by e × member_jitter,
            // which keeps every member within e of the leader (and therefore
            // the group density-connected) at every tick of the interval.
            let mut leader = Walker::new(&mut rng, p.movement.world_size, p.movement.mean_speed);
            let max_offset = p.e * p.movement.member_jitter;
            let offsets: Vec<(f64, f64)> = members
                .iter()
                .map(|_| {
                    (
                        rng.gen_range(-max_offset..max_offset),
                        rng.gen_range(-max_offset..max_offset),
                    )
                })
                .collect();

            let mut tracks: Vec<Vec<TrajPoint>> = vec![Vec::new(); members.len()];
            for t in start..=end {
                leader.step(&mut rng, p.movement.world_size, p.movement.turn_sigma, 0.0);
                for (mi, (ox, oy)) in offsets.iter().enumerate() {
                    let jitter = max_offset * 0.2;
                    let jx = rng.gen_range(-jitter..jitter);
                    let jy = rng.gen_range(-jitter..jitter);
                    tracks[mi].push(TrajPoint::new(leader.x + ox + jx, leader.y + oy + jy, t));
                }
            }

            // Convoy members are sampled *regularly* during the planted
            // interval so that the ground truth is airtight; irregular
            // sampling is applied to the background objects instead.
            for (member, track) in members.iter().zip(tracks) {
                if let Ok(traj) = Trajectory::from_points(track) {
                    database.insert(*member, traj);
                }
            }
            ground_truth.push(PlantedConvoy {
                members,
                start,
                end,
            });
        }

        // --- Independent background objects ----------------------------------------
        let background = p.num_objects.saturating_sub(convoy_member_total);
        for _ in 0..background {
            let id = ObjectId(next_id);
            next_id += 1;

            // Presence window.
            let length = ((p.time_domain as f64 * p.presence_fraction).round() as i64)
                .clamp(2, p.time_domain);
            let latest_start = (p.time_domain - length).max(0);
            let start: TimePoint = if latest_start == 0 {
                0
            } else {
                rng.gen_range(0..=latest_start)
            };
            let end = start + length - 1;

            let mut walker = Walker::new(&mut rng, p.movement.world_size, p.movement.mean_speed);
            let mut points = Vec::with_capacity(length as usize);
            for t in start..=end {
                // Periodically (re)pick a hotspot to head towards; between
                // switches the walker blends its random walk with the pull.
                if !hotspots.is_empty() && (walker.target.is_none() || rng.gen::<f64>() < 0.01) {
                    walker.target = Some(hotspots[rng.gen_range(0..hotspots.len())]);
                }
                walker.step(
                    &mut rng,
                    p.movement.world_size,
                    p.movement.turn_sigma,
                    p.movement.hotspot_attraction,
                );
                // Irregular sampling: drop interior samples with the profile's
                // probability, always keeping the first and last so the
                // presence window is honoured.
                let is_boundary = t == start || t == end;
                if is_boundary || rng.gen::<f64>() >= p.missing_probability {
                    points.push(TrajPoint::new(walker.x, walker.y, t));
                }
            }
            if let Ok(traj) = Trajectory::from_points(points) {
                database.insert(id, traj);
            }
        }

        GeneratedDataset {
            database,
            ground_truth,
            profile: *p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DatasetProfile, ProfileName};
    use trajectory::SnapshotPolicy;

    fn small_profile() -> DatasetProfile {
        DatasetProfile {
            num_objects: 20,
            time_domain: 120,
            convoy_lifetime: 60,
            num_convoys: 2,
            convoy_size: 3,
            k: 30,
            ..DatasetProfile::truck()
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let profile = small_profile();
        let a = generate(&profile, 7);
        let b = generate(&profile, 7);
        assert_eq!(a.database, b.database);
        assert_eq!(a.ground_truth, b.ground_truth);
        // A different seed gives a different dataset.
        let c = generate(&profile, 8);
        assert_ne!(a.database, c.database);
    }

    #[test]
    fn generated_sizes_match_the_profile() {
        let profile = small_profile();
        let data = generate(&profile, 1);
        assert_eq!(data.database.len(), profile.num_objects);
        assert_eq!(data.ground_truth.len(), profile.num_convoys);
        let domain = data.database.time_domain().unwrap();
        assert!(domain.num_points() <= profile.time_domain);
        // Every planted convoy has the requested size and lifetime.
        for planted in &data.ground_truth {
            assert_eq!(planted.members.len(), profile.convoy_size);
            assert_eq!(planted.lifetime(), profile.convoy_lifetime);
        }
    }

    #[test]
    fn planted_convoy_members_stay_within_e_of_each_other_pairwise_chain() {
        let profile = small_profile();
        let data = generate(&profile, 3);
        for planted in &data.ground_truth {
            for t in planted.interval().iter() {
                let snap = data.database.snapshot(t, SnapshotPolicy::Interpolate);
                // Every member must be within e of at least one other member
                // (they all sit within e·member_jitter·2 of the leader track,
                // so in fact all pairs are close; we check the weaker chain
                // property that density connection needs).
                for a in &planted.members {
                    let pa = snap.position_of(*a).expect("member present");
                    let close_to_other = planted.members.iter().any(|b| {
                        b != a
                            && snap
                                .position_of(*b)
                                .map(|pb| pa.distance(&pb) <= profile.e)
                                .unwrap_or(false)
                    });
                    assert!(
                        close_to_other,
                        "member {a} strayed from its convoy at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn background_objects_respect_missing_probability() {
        let mut profile = small_profile();
        profile.missing_probability = 0.4;
        profile.presence_fraction = 1.0;
        profile.num_convoys = 0;
        let data = generate(&profile, 11);
        let stats = data.database.stats();
        // With 40 % of interior samples dropped the average trajectory length
        // must be clearly below the full domain length.
        assert!(
            stats.average_trajectory_length < profile.time_domain as f64 * 0.8,
            "avg length {} does not reflect missing samples",
            stats.average_trajectory_length
        );
    }

    #[test]
    fn all_named_profiles_generate_scaled_datasets() {
        for name in ProfileName::ALL {
            let profile = DatasetProfile::named(name).scaled(0.01);
            let data = generate(&profile, 5);
            assert!(
                !data.database.is_empty(),
                "{name} generated an empty database"
            );
            assert!(data.database.total_points() > 0);
        }
    }

    #[test]
    fn world_boundary_is_respected() {
        let profile = small_profile();
        let data = generate(&profile, 13);
        let world = profile.movement.world_size;
        for (_, traj) in data.database.iter() {
            for p in traj.points() {
                assert!(
                    p.x >= -1e-6 && p.x <= world + 1e-6,
                    "x={} out of world",
                    p.x
                );
                assert!(
                    p.y >= -1e-6 && p.y <= world + 1e-6,
                    "y={} out of world",
                    p.y
                );
            }
        }
    }
}
