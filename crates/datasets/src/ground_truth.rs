//! Ground-truth records of the convoys planted by the generator.

use serde::{Deserialize, Serialize};
use trajectory::{ObjectId, TimeInterval, TimePoint};

/// One convoy planted into a generated dataset: the generator steered these
/// objects to stay within the profile's `e` of their group leader throughout
/// the interval, so a correct convoy algorithm queried with (m ≤ members,
/// k ≤ lifetime, e) must report a convoy containing them over (at least) this
/// interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedConvoy {
    /// The member objects.
    pub members: Vec<ObjectId>,
    /// First tick of the planted co-movement.
    pub start: TimePoint,
    /// Last tick of the planted co-movement (inclusive).
    pub end: TimePoint,
}

impl PlantedConvoy {
    /// The planted convoy's time interval.
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.start, self.end)
    }

    /// The planted convoy's lifetime in ticks.
    pub fn lifetime(&self) -> i64 {
        self.end - self.start + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_and_lifetime() {
        let planted = PlantedConvoy {
            members: vec![ObjectId(1), ObjectId(2), ObjectId(3)],
            start: 10,
            end: 30,
        };
        assert_eq!(planted.interval(), TimeInterval::new(10, 30));
        assert_eq!(planted.lifetime(), 21);
    }
}
