//! Plain-CSV import and export of trajectory databases.
//!
//! The format is one sample per line, `object_id,t,x,y`, with an optional
//! header line. This is deliberately minimal: it is the least-common-
//! denominator shape of the GPS logs the paper's datasets come from (object
//! identifier, timestamp, longitude/latitude or projected coordinates), so a
//! user with access to the real Truck/Cattle/Car/Taxi data can drop it in
//! without format gymnastics.

// Malformed input must surface as `TrajectoryError`, never a panic: this
// module ingests untrusted files and live stdin feeds.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use trajectory::{ObjectId, Result, TrajectoryBuilder, TrajectoryDatabase, TrajectoryError};

/// Writes a database to CSV (`object_id,t,x,y`, with a header line).
pub fn write_csv<W: Write>(db: &TrajectoryDatabase, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "object_id,t,x,y")?;
    for (id, traj) in db.iter() {
        for p in traj.points() {
            writeln!(writer, "{},{},{},{}", id.0, p.t, p.x, p.y)?;
        }
    }
    Ok(())
}

/// Writes a database to a CSV file at `path`.
pub fn write_csv_file<P: AsRef<Path>>(db: &TrajectoryDatabase, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(db, std::io::BufWriter::new(file))
}

/// Parses one CSV line into an `(object_id, t, x, y)` sample.
///
/// Returns `Ok(None)` for skippable lines: blanks, `#` comments, and a
/// header on line 1 (recognized only when *no* field parses numerically, so
/// a malformed first data row is an error rather than a silent skip). Lines
/// may end in CRLF. The fields are split without allocating — this runs once
/// per sample on the live-feed ingest path. Exposed so line-at-a-time
/// consumers — the CLI's stdin streaming mode — share the exact grammar of
/// [`read_csv`].
pub fn parse_csv_line(line: &str, line_no: usize) -> Result<Option<(ObjectId, i64, f64, f64)>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut fields = trimmed.split(',').map(str::trim);
    let (Some(id_field), Some(t_field), Some(x_field), Some(y_field), None) = (
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
    ) else {
        return Err(TrajectoryError::Parse {
            line: line_no,
            message: format!("expected 4 fields, found {}", trimmed.split(',').count()),
        });
    };
    // Header detection: only line 1 qualifies, and only when every field is
    // non-numeric. A first data row with one bad field (say, a mistyped
    // timestamp next to a valid object id) falls through to the per-field
    // errors below instead of vanishing as a pretend header.
    if line_no == 1
        && [id_field, t_field, x_field, y_field]
            .iter()
            .all(|f| f.parse::<f64>().is_err())
    {
        return Ok(None);
    }
    let parse_err = |what: &str| TrajectoryError::Parse {
        line: line_no,
        message: format!("cannot parse {what}"),
    };
    let id: u64 = id_field.parse().map_err(|_| parse_err("object_id"))?;
    let t: i64 = t_field.parse().map_err(|_| parse_err("t"))?;
    let x: f64 = x_field.parse().map_err(|_| parse_err("x"))?;
    let y: f64 = y_field.parse().map_err(|_| parse_err("y"))?;
    Ok(Some((ObjectId(id), t, x, y)))
}

/// Reads a database from CSV (`object_id,t,x,y`). A header on line 1 (no
/// field numeric) is skipped; CRLF line endings are accepted. Samples may
/// appear in any order.
///
/// **Duplicate `(object, t)` samples keep the last occurrence** ("later fix
/// wins", see [`TrajectoryBuilder::build`]). This deliberately differs from
/// the streaming path: a live [`trajectory::FeedValidator`] *rejects* a
/// duplicate timestamp, because by the time the duplicate arrives the first
/// sample may already have been consumed downstream and cannot be retracted.
/// Batch ingest sees the whole file before building, so it can honor the
/// later correction. `convoy convert` reports how many samples a file lost
/// to this collapsing so the divergence is visible.
pub fn read_csv<R: Read>(reader: R) -> Result<TrajectoryDatabase> {
    Ok(read_csv_counting(reader)?.0)
}

/// [`read_csv`] plus the number of data samples parsed *before* duplicate
/// `(object, t)` collapsing — the count backing
/// [`crate::source::CsvSource`]'s scan statistics.
pub(crate) fn read_csv_counting<R: Read>(reader: R) -> Result<(TrajectoryDatabase, u64)> {
    let mut reader = BufReader::new(reader);
    let mut builders: BTreeMap<ObjectId, TrajectoryBuilder> = BTreeMap::new();

    // One reused line buffer: `BufReader::lines()` would allocate a fresh
    // `String` per line, and this loop runs once per sample at 100M-point
    // conversion scale.
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut records = 0u64;
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| TrajectoryError::Io {
                path: String::new(),
                message: e.to_string(),
            })?;
        if read == 0 {
            break;
        }
        line_no = line_no.saturating_add(1);
        if let Some((id, t, x, y)) = parse_csv_line(&line, line_no)? {
            records = records.saturating_add(1);
            builders.entry(id).or_default().add(x, y, t);
        }
    }

    let mut db = TrajectoryDatabase::new();
    for (id, builder) in builders {
        db.insert(id, builder.build()?);
    }
    Ok((db, records))
}

/// Reads a database from a CSV file at `path`. A missing or unreadable file
/// is a [`TrajectoryError::Io`], not a parse error — there is no line to
/// point at.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<TrajectoryDatabase> {
    let file = std::fs::File::open(&path).map_err(|e| TrajectoryError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    })?;
    read_csv(file)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic on bad fixtures
mod tests {
    use super::*;
    use crate::{generate, DatasetProfile};

    #[test]
    fn round_trip_preserves_the_database() {
        let dataset = generate(&DatasetProfile::truck().scaled(0.01), 3);
        let mut buffer = Vec::new();
        write_csv(&dataset.database, &mut buffer).unwrap();
        let restored = read_csv(buffer.as_slice()).unwrap();
        assert_eq!(restored, dataset.database);
    }

    #[test]
    fn header_comments_and_blank_lines_are_skipped() {
        let csv = "object_id,t,x,y\n# comment\n\n1,0,0.5,1.5\n1,1,1.0,2.0\n2,0,9.0,9.0\n";
        let db = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(ObjectId(1)).unwrap().len(), 2);
        assert_eq!(db.get(ObjectId(2)).unwrap().len(), 1);
    }

    #[test]
    fn out_of_order_and_duplicate_samples_are_normalised() {
        let csv = "1,5,5.0,0.0\n1,1,1.0,0.0\n1,5,6.0,0.0\n";
        let db = read_csv(csv.as_bytes()).unwrap();
        let traj = db.get(ObjectId(1)).unwrap();
        assert_eq!(traj.len(), 2);
        assert_eq!(traj.start_time(), 1);
        // Last occurrence of the duplicate timestamp wins.
        assert_eq!(traj.sample_at(5).unwrap().x, 6.0);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = read_csv("1,0,0.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TrajectoryError::Parse { line: 1, .. }));
        let err = read_csv("1,0,0.0,1.0\n1,zap,0.0,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TrajectoryError::Parse { line: 2, .. }));
        let err = read_csv("1,0,NOPE,1.0\n".as_bytes()).unwrap_err();
        match err {
            TrajectoryError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains('x'));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dataset = generate(&DatasetProfile::taxi().scaled(0.02), 9);
        let dir = std::env::temp_dir().join("convoy-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("taxi.csv");
        write_csv_file(&dataset.database, &path).unwrap();
        let restored = read_csv_file(&path).unwrap();
        assert_eq!(restored, dataset.database);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_parse_error() {
        // Historically this *was* reported as `Parse { line: 0 }` — a parse
        // error at a line that does not exist. It is an I/O error, and the
        // message must name the path, not a pretend line number.
        let err = read_csv_file("/nonexistent/convoy.csv").unwrap_err();
        match &err {
            TrajectoryError::Io { path, message } => {
                assert_eq!(path, "/nonexistent/convoy.csv");
                assert!(!message.is_empty());
            }
            other => panic!("expected an Io error, got {other:?}"),
        }
        let text = err.to_string();
        assert!(
            text.contains("cannot read /nonexistent/convoy.csv"),
            "{text}"
        );
        assert!(!text.contains("line"), "{text}");
    }

    #[test]
    fn batch_and_streaming_ingest_diverge_on_duplicates_as_documented() {
        // The same file, both ingest paths. Batch `read_csv` collapses the
        // duplicate `(object, t)` sample keeping the LAST occurrence; the
        // streaming `FeedValidator` REJECTS the duplicate, keeping the FIRST.
        // Both behaviors are intended (see the docs on `read_csv` and
        // `FeedError::DuplicateTimestamp`); this test pins the divergence so
        // a change on either side is a conscious one.
        use trajectory::{FeedError, FeedValidator};
        let csv = "1,0,1.0,0.0\n1,1,2.0,0.0\n1,1,9.0,0.0\n2,1,5.0,5.0\n";

        let db = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(db.total_points(), 3);
        // Batch: the later fix wins.
        assert_eq!(db.get(ObjectId(1)).unwrap().sample_at(1).unwrap().x, 9.0);

        let mut feed = FeedValidator::new();
        let mut admitted: Vec<(ObjectId, i64, f64, f64)> = Vec::new();
        let mut rejected = 0usize;
        for (line_no, line) in csv.lines().enumerate() {
            let (id, t, x, y) = parse_csv_line(line, line_no + 1).unwrap().unwrap();
            match feed.admit(id, t, x, y) {
                Ok(()) => admitted.push((id, t, x, y)),
                Err(FeedError::DuplicateTimestamp { object, t }) => {
                    assert_eq!((object, t), (ObjectId(1), 1));
                    rejected += 1;
                }
                Err(other) => panic!("unexpected feed rejection {other:?}"),
            }
        }
        // Streaming: the first sample stands, the duplicate is refused.
        assert_eq!(rejected, 1);
        assert_eq!(admitted.len(), 3);
        assert!(admitted.contains(&(ObjectId(1), 1, 2.0, 0.0)));
        assert!(!admitted.contains(&(ObjectId(1), 1, 9.0, 0.0)));

        // And the pre-dedup count that `convoy convert` reports: 4 parsed,
        // 3 survive, 1 duplicate.
        let (counted_db, records) = read_csv_counting(csv.as_bytes()).unwrap();
        assert_eq!(records, 4);
        assert_eq!(counted_db.total_points(), 3);
    }

    #[test]
    fn parse_csv_line_handles_all_line_shapes() {
        assert_eq!(
            parse_csv_line("3, 7, 1.5, -2.5", 4).unwrap(),
            Some((ObjectId(3), 7, 1.5, -2.5))
        );
        assert_eq!(parse_csv_line("", 2).unwrap(), None);
        assert_eq!(parse_csv_line("# comment", 2).unwrap(), None);
        // A header skips only on line 1.
        assert_eq!(parse_csv_line("object_id,t,x,y", 1).unwrap(), None);
        assert!(parse_csv_line("object_id,t,x,y", 2).is_err());
        assert!(parse_csv_line("1,2,3", 5).is_err());
        assert!(parse_csv_line("1,2,3.0,4.0,5", 5).is_err());
    }

    #[test]
    fn malformed_first_data_row_is_an_error_not_a_header() {
        // One numeric field is enough to rule out a header: a first data row
        // with a mistyped timestamp must be reported, not swallowed.
        let err = parse_csv_line("1,09:15:00,2.0,3.0", 1).unwrap_err();
        match err {
            TrajectoryError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert_eq!(message, "cannot parse t");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A real header — no numeric field anywhere — still skips.
        assert_eq!(parse_csv_line("id,timestamp,lon,lat", 1).unwrap(), None);
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        assert_eq!(
            parse_csv_line("3,7,1.5,-2.5\r", 4).unwrap(),
            Some((ObjectId(3), 7, 1.5, -2.5))
        );
        assert_eq!(parse_csv_line("object_id,t,x,y\r", 1).unwrap(), None);
        let csv = "object_id,t,x,y\r\n1,0,0.5,1.5\r\n1,1,1.0,2.0\r\n2,0,9.0,9.0\r\n";
        let db = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(ObjectId(1)).unwrap().len(), 2);
        assert_eq!(db.get(ObjectId(2)).unwrap().len(), 1);
    }
}
