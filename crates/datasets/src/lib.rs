//! # `traj-datasets` — synthetic trajectory datasets and I/O
//!
//! The paper evaluates on four real GPS datasets (Truck, Cattle, Car, Taxi)
//! that are not redistributable. This crate generates synthetic datasets whose
//! *statistical shape* matches the published Table 3 characteristics — number
//! of objects, time-domain length, average trajectory length, sampling
//! regularity — and whose movement structure (groups travelling together on a
//! background of independent movers) exercises exactly the code paths the
//! convoy algorithms care about.
//!
//! * [`DatasetProfile`]: the four named profiles plus fully custom profiles.
//!   Each profile can be scaled down (`scaled`) so that unit tests and CI run
//!   in seconds while the benchmark harness can run closer to paper scale.
//! * [`generate`] / [`DatasetGenerator`]: the group-structured random-walk
//!   generator with planted ground-truth convoys and irregular sampling.
//! * [`io`]: plain-CSV import/export so real datasets can be dropped in.
//! * [`container`]: the binary `.convoy` columnar container — time-blocked,
//!   CRC-guarded, block-index-pruned windowed reads.
//! * [`source`]: [`trajectory::TrajectorySource`] backends over both formats
//!   plus the extension/magic sniffing factory [`open_source`].
//!
//! ## Example
//!
//! ```
//! use traj_datasets::{DatasetProfile, generate};
//!
//! let dataset = generate(&DatasetProfile::truck().scaled(0.05), 42);
//! assert!(dataset.database.len() > 0);
//! assert!(!dataset.ground_truth.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod container;
pub mod generator;
pub mod ground_truth;
pub mod io;
pub mod noise;
pub mod profile;
pub mod source;

pub use container::{write_container, write_container_file, ContainerError, ContainerReader};
pub use generator::{generate, DatasetGenerator, GeneratedDataset};
pub use ground_truth::PlantedConvoy;
pub use io::{read_csv, write_csv};
pub use noise::{add_gps_noise, downsample, stride_sample};
pub use profile::{DatasetProfile, MovementModel, ProfileName};
pub use source::{open_source, sniff_format, ContainerSource, CsvSource, InputFormat};
