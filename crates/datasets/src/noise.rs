//! Perturbation utilities: GPS noise, down-sampling and presence clipping.
//!
//! Real GPS feeds differ from clean synthetic traces in three ways the paper's
//! datasets exhibit: positional noise (metres of jitter per fix), irregular
//! reporting intervals (the Taxi dataset reports "once in several minutes"),
//! and devices that switch off for parts of the day. These helpers apply such
//! perturbations to an existing [`TrajectoryDatabase`], which is how the
//! robustness tests and the ablation benches stress the discovery algorithms
//! without changing the generator itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajectory::{TrajPoint, Trajectory, TrajectoryDatabase};

/// Adds isotropic positional noise of at most `magnitude` (uniform in each
/// coordinate) to every sample. Deterministic for a given `seed`.
///
/// Noise of magnitude `σ` changes inter-object distances by at most `2σ√2`,
/// so a convoy planted with headroom `e/2` survives noise up to roughly
/// `e/(4√2)`; tests use this bound.
pub fn add_gps_noise(db: &TrajectoryDatabase, magnitude: f64, seed: u64) -> TrajectoryDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = TrajectoryDatabase::new();
    for (id, traj) in db.iter() {
        let points: Vec<TrajPoint> = traj
            .points()
            .iter()
            .map(|p| {
                TrajPoint::new(
                    p.x + rng.gen_range(-magnitude..=magnitude),
                    p.y + rng.gen_range(-magnitude..=magnitude),
                    p.t,
                )
            })
            .collect();
        out.insert(
            id,
            // lint: allow(no-unwrap-in-lib) — jitter preserves the (validated) input's point count
            Trajectory::from_points(points).expect("same shape as input"),
        );
    }
    out
}

/// Randomly drops interior samples with probability `probability` (the first
/// and last sample of every trajectory are always kept). Deterministic for a
/// given `seed`.
pub fn downsample(db: &TrajectoryDatabase, probability: f64, seed: u64) -> TrajectoryDatabase {
    let probability = probability.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = TrajectoryDatabase::new();
    for (id, traj) in db.iter() {
        let n = traj.len();
        let points: Vec<TrajPoint> = traj
            .points()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i == 0 || *i == n - 1 || rng.gen::<f64>() >= probability)
            .map(|(_, p)| *p)
            .collect();
        // lint: allow(no-unwrap-in-lib) — the filter always keeps indices 0 and n-1, so points is non-empty
        out.insert(id, Trajectory::from_points(points).expect("endpoints kept"));
    }
    out
}

/// Keeps only every `stride`-th sample of every trajectory (plus the last
/// sample), emulating a device with a fixed, coarser reporting interval.
pub fn stride_sample(db: &TrajectoryDatabase, stride: usize) -> TrajectoryDatabase {
    let stride = stride.max(1);
    let mut out = TrajectoryDatabase::new();
    for (id, traj) in db.iter() {
        let n = traj.len();
        let points: Vec<TrajPoint> = traj
            .points()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0 || *i == n - 1)
            .map(|(_, p)| *p)
            .collect();
        // lint: allow(no-unwrap-in-lib) — index 0 always passes the stride filter, so points is non-empty
        out.insert(id, Trajectory::from_points(points).expect("non-empty"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetProfile};
    use proptest::prelude::*;

    fn fixture() -> TrajectoryDatabase {
        generate(&DatasetProfile::truck().scaled(0.02), 17).database
    }

    #[test]
    fn gps_noise_preserves_shape_and_timestamps() {
        let db = fixture();
        let noisy = add_gps_noise(&db, 1.5, 3);
        assert_eq!(noisy.len(), db.len());
        assert_eq!(noisy.total_points(), db.total_points());
        for (id, traj) in db.iter() {
            let noisy_traj = noisy.get(id).unwrap();
            for (a, b) in traj.points().iter().zip(noisy_traj.points()) {
                assert_eq!(a.t, b.t);
                assert!((a.x - b.x).abs() <= 1.5 + 1e-12);
                assert!((a.y - b.y).abs() <= 1.5 + 1e-12);
            }
        }
        // Deterministic for the same seed, different for another seed.
        assert_eq!(add_gps_noise(&db, 1.5, 3), noisy);
        assert_ne!(add_gps_noise(&db, 1.5, 4), noisy);
    }

    #[test]
    fn zero_noise_is_identity() {
        let db = fixture();
        assert_eq!(add_gps_noise(&db, 0.0, 9), db);
    }

    #[test]
    fn downsample_keeps_endpoints_and_reduces_points() {
        let db = fixture();
        let thinned = downsample(&db, 0.5, 11);
        assert_eq!(thinned.len(), db.len());
        assert!(thinned.total_points() < db.total_points());
        for (id, traj) in db.iter() {
            let t = thinned.get(id).unwrap();
            assert_eq!(t.start_time(), traj.start_time());
            assert_eq!(t.end_time(), traj.end_time());
        }
        // probability 0 keeps everything; probability 1 keeps only endpoints.
        assert_eq!(downsample(&db, 0.0, 1).total_points(), db.total_points());
        let only_ends = downsample(&db, 1.0, 1);
        for (_, traj) in only_ends.iter() {
            assert!(traj.len() <= 2);
        }
    }

    #[test]
    fn stride_sampling_thins_regularly() {
        let db = fixture();
        let strided = stride_sample(&db, 4);
        for (id, traj) in db.iter() {
            let s = strided.get(id).unwrap();
            assert!(s.len() <= traj.len() / 4 + 2);
            assert_eq!(s.end_time(), traj.end_time());
            assert_eq!(s.start_time(), traj.start_time());
        }
        // Stride 1 (and the 0 → clamped-to-1 case) is the identity.
        assert_eq!(stride_sample(&db, 1), db);
        assert_eq!(stride_sample(&db, 0), db);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn perturbations_never_invalidate_trajectories(
            magnitude in 0.0f64..10.0, probability in 0.0f64..1.0, seed in 0u64..100) {
            let db = fixture();
            let perturbed = downsample(&add_gps_noise(&db, magnitude, seed), probability, seed);
            // Every trajectory still parses (strictly increasing timestamps,
            // finite coordinates) simply by virtue of constructing
            // successfully, and object count is preserved.
            prop_assert_eq!(perturbed.len(), db.len());
            prop_assert!(perturbed.total_points() <= db.total_points());
        }
    }
}
