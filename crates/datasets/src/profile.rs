//! Dataset profiles mirroring the paper's Table 3.

use serde::{Deserialize, Serialize};

/// The four named dataset profiles of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfileName {
    /// Athens concrete trucks: medium N, long T, regular sampling.
    Truck,
    /// CSIRO virtual-fencing cattle: tiny N, very long and dense T.
    Cattle,
    /// Copenhagen private cars: medium N, very different trajectory lengths.
    Car,
    /// Beijing taxis: large N, short T, heavily irregular sampling.
    Taxi,
}

impl ProfileName {
    /// All four profiles, in Table 3 order.
    pub const ALL: [ProfileName; 4] = [
        ProfileName::Truck,
        ProfileName::Cattle,
        ProfileName::Car,
        ProfileName::Taxi,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProfileName::Truck => "Truck",
            ProfileName::Cattle => "Cattle",
            ProfileName::Car => "Car",
            ProfileName::Taxi => "Taxi",
        }
    }
}

impl std::fmt::Display for ProfileName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How objects move in the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovementModel {
    /// Side length of the square world the objects roam in.
    pub world_size: f64,
    /// Mean speed (distance per time tick) of an object.
    pub mean_speed: f64,
    /// Standard deviation of per-tick heading change (radians); small values
    /// give road-like smooth trajectories, large values give grazing-animal
    /// wander.
    pub turn_sigma: f64,
    /// Spatial jitter of convoy members around their group leader, as a
    /// fraction of the profile's `e` (≤ 0.5 keeps members density-connected).
    pub member_jitter: f64,
    /// Number of shared *hotspots* (depots, construction sites, busy
    /// intersections, water points) that independent objects gravitate
    /// towards. Hotspots create the incidental, short-lived co-location that
    /// real GPS data exhibits — the workload component that stresses the
    /// snapshot clustering of CMC and the filter selectivity of CuTS.
    /// Zero disables the attraction.
    pub num_hotspots: usize,
    /// Strength of the pull towards the current hotspot, as the fraction of
    /// each step directed at the hotspot (0 = pure random walk, 1 = straight
    /// to the hotspot).
    pub hotspot_attraction: f64,
}

/// A complete description of a synthetic dataset: size, sampling behaviour,
/// movement model, planted convoy structure, and the convoy-query parameters
/// the paper's Table 3 lists for the corresponding real dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Which named profile this derives from.
    pub name: ProfileName,
    /// Number of objects `N`.
    pub num_objects: usize,
    /// Length of the time domain `T` (number of discrete ticks).
    pub time_domain: i64,
    /// Probability that an object's sample at a covered tick is *missing*
    /// (irregular sampling). 0 reproduces the Cattle-style every-second feed.
    pub missing_probability: f64,
    /// Fraction of the time domain an average object is present for (objects
    /// appear/disappear at arbitrary times, Section 3's database model).
    pub presence_fraction: f64,
    /// Number of convoy groups planted in the data.
    pub num_convoys: usize,
    /// Number of objects per planted convoy (at least `m`).
    pub convoy_size: usize,
    /// Lifetime of each planted convoy, in ticks (at least `k`).
    pub convoy_lifetime: i64,
    /// Movement model parameters.
    pub movement: MovementModel,
    /// The query's group-size parameter `m` (Table 3).
    pub m: usize,
    /// The query's lifetime parameter `k` (Table 3), scaled with the domain.
    pub k: usize,
    /// The query's neighbourhood range `e` (Table 3).
    pub e: f64,
    /// The paper's chosen simplification tolerance δ for this dataset.
    pub delta: f64,
    /// The paper's chosen time-partition length λ for this dataset.
    pub lambda: usize,
}

impl DatasetProfile {
    /// The Truck profile: 267 objects, T = 10 586, regular but sparse
    /// presence, road-like movement (Table 3: m=3, k=180, e=8, δ=5.9, λ=4).
    pub fn truck() -> Self {
        DatasetProfile {
            name: ProfileName::Truck,
            num_objects: 267,
            time_domain: 10_586,
            missing_probability: 0.05,
            presence_fraction: 0.021, // avg trajectory length 224 of 10586
            num_convoys: 12,
            convoy_size: 4,
            convoy_lifetime: 400,
            movement: MovementModel {
                world_size: 2_000.0,
                mean_speed: 6.0,
                turn_sigma: 0.15,
                member_jitter: 0.25,
                num_hotspots: 6,
                hotspot_attraction: 0.35,
            },
            m: 3,
            k: 180,
            e: 8.0,
            delta: 5.9,
            lambda: 4,
        }
    }

    /// The Cattle profile: 13 objects, a very long densely sampled time
    /// domain (Table 3: m=2, k=180, e=300, δ=274.2, λ=36).
    pub fn cattle() -> Self {
        DatasetProfile {
            name: ProfileName::Cattle,
            num_objects: 13,
            time_domain: 175_636,
            missing_probability: 0.0,
            presence_fraction: 1.0,
            num_convoys: 3,
            convoy_size: 3,
            convoy_lifetime: 2_000,
            movement: MovementModel {
                world_size: 5_000.0,
                mean_speed: 1.0,
                turn_sigma: 0.8,
                member_jitter: 0.25,
                num_hotspots: 0,
                hotspot_attraction: 0.0,
            },
            m: 2,
            k: 180,
            e: 300.0,
            delta: 274.2,
            lambda: 36,
        }
    }

    /// The Car profile: 183 objects with very different trajectory lengths
    /// (Table 3: m=3, k=180, e=80, δ=63.4, λ=24).
    pub fn car() -> Self {
        DatasetProfile {
            name: ProfileName::Car,
            num_objects: 183,
            time_domain: 8_757,
            missing_probability: 0.15,
            presence_fraction: 0.0515, // avg trajectory length 451 of 8757
            num_convoys: 6,
            convoy_size: 4,
            convoy_lifetime: 500,
            movement: MovementModel {
                world_size: 10_000.0,
                mean_speed: 15.0,
                turn_sigma: 0.2,
                member_jitter: 0.25,
                num_hotspots: 8,
                hotspot_attraction: 0.3,
            },
            m: 3,
            k: 180,
            e: 80.0,
            delta: 63.4,
            lambda: 24,
        }
    }

    /// The Taxi profile: 500 objects, a short time domain, heavily irregular
    /// sampling (Table 3: m=3, k=180, e=40, δ=31.5, λ=4).
    pub fn taxi() -> Self {
        DatasetProfile {
            name: ProfileName::Taxi,
            num_objects: 500,
            time_domain: 965,
            missing_probability: 0.5,
            presence_fraction: 0.17, // avg trajectory length 82 of 965
            num_convoys: 4,
            convoy_size: 4,
            convoy_lifetime: 300,
            movement: MovementModel {
                world_size: 20_000.0,
                mean_speed: 30.0,
                turn_sigma: 0.25,
                member_jitter: 0.25,
                num_hotspots: 10,
                hotspot_attraction: 0.4,
            },
            m: 3,
            k: 180,
            e: 40.0,
            delta: 31.5,
            lambda: 4,
        }
    }

    /// The profile for a [`ProfileName`].
    pub fn named(name: ProfileName) -> Self {
        match name {
            ProfileName::Truck => Self::truck(),
            ProfileName::Cattle => Self::cattle(),
            ProfileName::Car => Self::car(),
            ProfileName::Taxi => Self::taxi(),
        }
    }

    /// Returns a copy of the profile scaled down (or up) by `fraction`.
    ///
    /// The time domain, object count, planted-convoy lifetime and the query
    /// lifetime `k` scale with `fraction`; the spatial parameters are left
    /// untouched so the geometry of the problem — and hence the relative
    /// behaviour of the algorithms — is preserved. Lower bounds keep the
    /// scaled profile non-degenerate (at least `m + 1` objects, a time domain
    /// of at least 50 ticks, a lifetime of at least 10).
    #[must_use]
    pub fn scaled(&self, fraction: f64) -> Self {
        let fraction = fraction.max(1e-4);
        let scale_usize = |v: usize, lo: usize| ((v as f64 * fraction).round() as usize).max(lo);
        let scale_i64 = |v: i64, lo: i64| ((v as f64 * fraction).round() as i64).max(lo);
        DatasetProfile {
            name: self.name,
            num_objects: scale_usize(self.num_objects, self.m + 1),
            time_domain: scale_i64(self.time_domain, 50),
            convoy_lifetime: scale_i64(self.convoy_lifetime, 10),
            num_convoys: self.num_convoys.min(scale_usize(self.num_convoys, 1)),
            k: scale_usize(self.k, 5),
            ..*self
        }
    }

    /// Average trajectory length implied by the profile (`presence_fraction ×
    /// time_domain × (1 − missing_probability)`).
    pub fn expected_trajectory_length(&self) -> f64 {
        self.presence_fraction * self.time_domain as f64 * (1.0 - self.missing_probability)
    }

    /// Expected total number of samples in a generated dataset.
    pub fn expected_total_points(&self) -> f64 {
        self.expected_trajectory_length() * self.num_objects as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_match_table3_parameters() {
        let truck = DatasetProfile::truck();
        assert_eq!(truck.num_objects, 267);
        assert_eq!(truck.time_domain, 10_586);
        assert_eq!((truck.m, truck.k), (3, 180));
        assert_eq!(truck.e, 8.0);

        let cattle = DatasetProfile::cattle();
        assert_eq!(cattle.num_objects, 13);
        assert_eq!(cattle.m, 2);
        assert_eq!(cattle.missing_probability, 0.0);

        let car = DatasetProfile::car();
        assert_eq!(car.num_objects, 183);
        assert_eq!(car.e, 80.0);

        let taxi = DatasetProfile::taxi();
        assert_eq!(taxi.num_objects, 500);
        assert_eq!(taxi.time_domain, 965);
        assert!(taxi.missing_probability > 0.3);

        for name in ProfileName::ALL {
            assert_eq!(DatasetProfile::named(name).name, name);
        }
    }

    #[test]
    fn scaling_preserves_spatial_parameters_and_floors() {
        let truck = DatasetProfile::truck();
        let small = truck.scaled(0.01);
        assert_eq!(small.e, truck.e);
        assert_eq!(small.movement, truck.movement);
        assert!(small.num_objects > truck.m);
        assert!(small.time_domain >= 50);
        assert!(small.k >= 5);
        assert!(small.num_objects < truck.num_objects);
        // Extreme downscaling never panics or becomes degenerate.
        let tiny = truck.scaled(0.0);
        assert!(tiny.time_domain >= 50);
    }

    #[test]
    fn expected_sizes_are_consistent() {
        let truck = DatasetProfile::truck();
        let expected = truck.expected_trajectory_length();
        // Table 3 lists an average trajectory length of 224; the profile's
        // expectation must be in the same ballpark.
        assert!((150.0..300.0).contains(&expected), "got {expected}");
        assert!(truck.expected_total_points() > 40_000.0);
    }

    #[test]
    fn profile_names_display() {
        assert_eq!(ProfileName::Truck.to_string(), "Truck");
        assert_eq!(ProfileName::ALL.len(), 4);
    }
}
