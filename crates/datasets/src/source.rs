//! [`TrajectorySource`] backends and the format-sniffing factory.
//!
//! Two on-disk formats implement the trait from `crates/trajectory`:
//! [`CsvSource`] over the plain-CSV reader ([`crate::io`]) and
//! [`ContainerSource`] over the binary `.convoy` container
//! ([`crate::container`]). [`open_source`] picks the backend the way the
//! versatiles container layer does — by filename extension when it is
//! unambiguous, by magic bytes otherwise — so every CLI subcommand accepts
//! either format without flags.

use crate::container::{ContainerError, ContainerReader};
use crate::io::read_csv_counting;
use convoy_obs::{Obs, SpanId};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use trajectory::{
    Result, ScanStats, TimeInterval, TrajectoryDatabase, TrajectoryError, TrajectorySource,
};

/// A trajectory input format [`sniff_format`] can identify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// Plain CSV, `object_id,t,x,y` per line.
    Csv,
    /// The binary `.convoy` columnar container.
    Convoy,
}

impl InputFormat {
    /// The canonical filename extension for the format.
    pub fn extension(self) -> &'static str {
        match self {
            InputFormat::Csv => "csv",
            InputFormat::Convoy => "convoy",
        }
    }
}

fn io_error<P: AsRef<Path>>(path: P, e: &std::io::Error) -> TrajectoryError {
    TrajectoryError::Io {
        path: path.as_ref().display().to_string(),
        message: e.to_string(),
    }
}

fn container_error<P: AsRef<Path>>(path: P, e: ContainerError) -> TrajectoryError {
    match e {
        ContainerError::Io(io) => io_error(path, &io),
        other => TrajectoryError::Format {
            path: path.as_ref().display().to_string(),
            message: other.to_string(),
        },
    }
}

/// Decides the format of the file at `path`: a `.convoy` / `.csv` extension
/// is trusted outright; anything else is sniffed by magic bytes (container
/// magic → [`InputFormat::Convoy`], otherwise CSV, the formatless default).
/// Only the sniffing fallback touches the file.
pub fn sniff_format<P: AsRef<Path>>(path: P) -> Result<InputFormat> {
    let path = path.as_ref();
    match path.extension().and_then(|e| e.to_str()) {
        Some(ext) if ext.eq_ignore_ascii_case("convoy") => return Ok(InputFormat::Convoy),
        Some(ext) if ext.eq_ignore_ascii_case("csv") => return Ok(InputFormat::Csv),
        _ => {}
    }
    let mut file = File::open(path).map_err(|e| io_error(path, &e))?;
    let mut head = [0u8; crate::container::MAGIC.len()];
    let mut filled = 0usize;
    while filled < head.len() {
        let read = match head.get_mut(filled..) {
            Some(rest) => file.read(rest).map_err(|e| io_error(path, &e))?,
            None => 0,
        };
        if read == 0 {
            break;
        }
        filled = filled.saturating_add(read);
    }
    Ok(if filled == head.len() && head == crate::container::MAGIC {
        InputFormat::Convoy
    } else {
        InputFormat::Csv
    })
}

/// Opens the file at `path` as whichever backend [`sniff_format`] decides.
/// Container files are opened (header validated, block index built) eagerly,
/// so an unreadable or corrupt input fails here rather than at first load.
pub fn open_source<P: AsRef<Path>>(path: P) -> Result<Box<dyn TrajectorySource>> {
    let path = path.as_ref();
    Ok(match sniff_format(path)? {
        InputFormat::Csv => Box::new(CsvSource::new(path)),
        InputFormat::Convoy => Box::new(ContainerSource::open(path)?),
    })
}

/// Records one load's `scan.*` metrics: decode latency, block economy,
/// record and byte throughput. Counters *add* — a session that loads twice
/// (say a full load then a windowed one) reports the combined I/O, while the
/// deterministic view publish ([`trajectory::publish_scan_stats`])
/// overwrites with the last load's authoritative numbers before export.
fn record_scan(obs: &Obs, started_ns: u64, stats: ScanStats, bytes_scanned: u64) {
    if !obs.enabled() {
        return;
    }
    obs.histogram_record("scan.decode_ns", obs.now_ns().saturating_sub(started_ns));
    obs.counter_add("scan.loads", 1);
    obs.counter_add("scan.blocks_read", stats.blocks_read as u64);
    obs.counter_add(
        "scan.blocks_pruned",
        stats.blocks_total.saturating_sub(stats.blocks_read) as u64,
    );
    obs.counter_add("scan.records_read", stats.records_read);
    obs.counter_add("scan.bytes_scanned", bytes_scanned);
}

/// The CSV backend: a flat, unindexed format, so every load parses the whole
/// file (one "block") and windowed loads restrict afterwards.
pub struct CsvSource {
    path: PathBuf,
    stats: ScanStats,
    obs: Obs,
}

impl CsvSource {
    /// A source over the CSV file at `path` (opened lazily, at each load).
    pub fn new<P: AsRef<Path>>(path: P) -> Self {
        CsvSource {
            path: path.as_ref().to_path_buf(),
            stats: ScanStats::default(),
            obs: Obs::noop(),
        }
    }
}

impl TrajectorySource for CsvSource {
    fn load(&mut self) -> Result<TrajectoryDatabase> {
        let _span = self.obs.span_guard("scan.load", SpanId::NONE);
        let started_ns = self.obs.now_ns();
        let file = File::open(&self.path).map_err(|e| io_error(&self.path, &e))?;
        // A flat format scans the whole file every time.
        let bytes_scanned = file.metadata().map_or(0, |m| m.len());
        let (db, records) = read_csv_counting(file)?;
        self.stats = ScanStats {
            blocks_total: 1,
            blocks_read: 1,
            records_read: records,
        };
        record_scan(&self.obs, started_ns, self.stats, bytes_scanned);
        Ok(db)
    }

    fn scan_stats(&self) -> ScanStats {
        self.stats
    }

    fn format_name(&self) -> &'static str {
        "csv"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

/// The `.convoy` backend: block-indexed, so windowed loads read only the
/// blocks whose time range intersects the window, and repeated loads reuse
/// the reader's decode buffers.
pub struct ContainerSource {
    path: PathBuf,
    reader: ContainerReader<std::io::BufReader<File>>,
    stats: ScanStats,
    obs: Obs,
}

impl ContainerSource {
    /// Opens the container at `path`, validating its header and building the
    /// block index.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref();
        let reader = ContainerReader::open_file(path).map_err(|e| container_error(path, e))?;
        Ok(ContainerSource {
            path: path.to_path_buf(),
            reader,
            stats: ScanStats::default(),
            obs: Obs::noop(),
        })
    }

    fn record_stats(&mut self, stats: crate::container::ReadStats, started_ns: u64) {
        self.stats = ScanStats {
            blocks_total: self.reader.blocks().len(),
            blocks_read: stats.blocks_read,
            records_read: stats.records_read,
        };
        record_scan(&self.obs, started_ns, self.stats, stats.bytes_scanned());
    }
}

impl TrajectorySource for ContainerSource {
    fn load(&mut self) -> Result<TrajectoryDatabase> {
        // Guard holds its own handle: `record_stats` needs `&mut self`.
        let obs = self.obs.clone();
        let _span = obs.span_guard("scan.load", SpanId::NONE);
        let started_ns = obs.now_ns();
        let (db, stats) = self
            .reader
            .load()
            .map_err(|e| container_error(&self.path, e))?;
        self.record_stats(stats, started_ns);
        Ok(db)
    }

    fn load_window(&mut self, window: TimeInterval) -> Result<TrajectoryDatabase> {
        let obs = self.obs.clone();
        let _span = obs.span_guard("scan.load", SpanId::NONE);
        let started_ns = obs.now_ns();
        let (db, stats) = self
            .reader
            .load_window(window)
            .map_err(|e| container_error(&self.path, e))?;
        self.record_stats(stats, started_ns);
        Ok(db)
    }

    fn scan_stats(&self) -> ScanStats {
        self.stats
    }

    fn format_name(&self) -> &'static str {
        "convoy"
    }

    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic on bad fixtures
mod tests {
    use super::*;
    use crate::container::write_container_file;
    use crate::io::write_csv_file;
    use crate::{generate, DatasetProfile};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("convoy-source-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn both_backends_load_the_same_database() {
        let dataset = generate(&DatasetProfile::truck().scaled(0.01), 21);
        let dir = temp_dir("equiv");
        let csv = dir.join("data.csv");
        let bin = dir.join("data.convoy");
        write_csv_file(&dataset.database, &csv).unwrap();
        write_container_file(&dataset.database, &bin, 8).unwrap();

        let mut csv_source = open_source(&csv).unwrap();
        let mut bin_source = open_source(&bin).unwrap();
        assert_eq!(csv_source.format_name(), "csv");
        assert_eq!(bin_source.format_name(), "convoy");
        let from_csv = csv_source.load().unwrap();
        let from_bin = bin_source.load().unwrap();
        assert_eq!(from_csv, dataset.database);
        assert_eq!(from_bin, dataset.database);
        assert_eq!(
            csv_source.scan_stats().records_read,
            bin_source.scan_stats().records_read
        );

        // Windowed loads agree too, and the container touches fewer blocks.
        let domain = dataset.database.time_domain().unwrap();
        let window =
            TimeInterval::new(domain.start, domain.start + (domain.end - domain.start) / 3);
        assert_eq!(
            csv_source.load_window(window).unwrap(),
            bin_source.load_window(window).unwrap()
        );
        let stats = bin_source.scan_stats();
        assert!(stats.blocks_read < stats.blocks_total, "{stats:?}");

        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn sniffing_prefers_extension_then_magic() {
        let dataset = generate(&DatasetProfile::truck().scaled(0.01), 4);
        let dir = temp_dir("sniff");
        // Extensionless container: identified by magic.
        let anon = dir.join("payload");
        write_container_file(&dataset.database, &anon, 64).unwrap();
        assert_eq!(sniff_format(&anon).unwrap(), InputFormat::Convoy);
        // Extensionless CSV: falls back to the formatless default.
        let text = dir.join("plain");
        write_csv_file(&dataset.database, &text).unwrap();
        assert_eq!(sniff_format(&text).unwrap(), InputFormat::Csv);
        // Extensions win without touching content.
        assert_eq!(
            sniff_format(dir.join("missing.csv")).unwrap(),
            InputFormat::Csv
        );
        assert_eq!(
            sniff_format(dir.join("missing.CONVOY")).unwrap(),
            InputFormat::Convoy
        );
        std::fs::remove_file(&anon).ok();
        std::fs::remove_file(&text).ok();
    }

    #[test]
    fn missing_and_corrupt_inputs_are_typed_errors() {
        let dir = temp_dir("errors");
        let missing = dir.join("missing.convoy");
        let Err(err) = open_source(&missing) else {
            panic!("missing file must not open")
        };
        match err {
            TrajectoryError::Io { path, .. } => assert!(path.ends_with("missing.convoy")),
            other => panic!("expected Io, got {other:?}"),
        }
        let garbage = dir.join("garbage.convoy");
        std::fs::write(&garbage, b"this is not a container").unwrap();
        let Err(err) = open_source(&garbage) else {
            panic!("garbage container must not open")
        };
        match err {
            TrajectoryError::Format { path, message } => {
                assert!(path.ends_with("garbage.convoy"));
                assert!(message.contains("magic"), "{message}");
            }
            other => panic!("expected Format, got {other:?}"),
        }
        std::fs::remove_file(&garbage).ok();
    }
}
