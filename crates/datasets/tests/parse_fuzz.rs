//! Fuzz-style robustness properties for the CSV parse path.
//!
//! `read_csv` / `parse_csv_line` sit on the untrusted-input boundary (files
//! on disk, live stdin feeds), so the contract is: **any** byte sequence
//! produces `Ok` or a `TrajectoryError` — never a panic. These properties
//! hammer the parser with raw bytes, CSV-shaped noise, and valid lines with
//! randomised numeric payloads.

use proptest::prelude::*;
use traj_datasets::io::{parse_csv_line, read_csv, write_csv};
use trajectory::ObjectId;

/// Characters weighted toward the CSV grammar so random strings reach deep
/// into the parser (field splits, numeric parses, header detection) instead
/// of bailing at the first comma count.
const PALETTE: &[u8] = b"0123456789,.-+eE# \t\rxyzt_objectid\n\n,,";

fn palette_string(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary raw bytes (including invalid UTF-8) never panic `read_csv`.
    #[test]
    fn read_csv_never_panics_on_raw_bytes(
        bytes in proptest::collection::vec(0u8..=255u8, 0..512),
    ) {
        let _ = read_csv(bytes.as_slice());
    }

    /// CSV-shaped noise never panics `read_csv`, and an `Ok` database is
    /// internally consistent (every trajectory non-empty and time-sorted).
    #[test]
    fn read_csv_never_panics_on_csv_shaped_noise(
        indices in proptest::collection::vec(0usize..1024, 0..384),
    ) {
        let text = palette_string(&indices);
        if let Ok(db) = read_csv(text.as_bytes()) {
            for (_, traj) in db.iter() {
                prop_assert!(!traj.is_empty());
                let points = traj.points();
                for w in 1..points.len() {
                    prop_assert!(points[w - 1].t < points[w].t);
                }
            }
        }
    }

    /// `parse_csv_line` never panics on noise, and line numbers > 1 never
    /// take the header escape hatch: a non-blank, non-comment line either
    /// parses or errors.
    #[test]
    fn parse_csv_line_never_panics(
        indices in proptest::collection::vec(0usize..1024, 0..96),
        line_no in 1usize..5,
    ) {
        let line = palette_string(&indices);
        let parsed = parse_csv_line(&line, line_no);
        let trimmed = line.trim();
        if line_no > 1 && !trimmed.is_empty() && !trimmed.starts_with('#') {
            prop_assert!(
                !matches!(parsed, Ok(None)),
                "line {line_no} silently skipped: {line:?}"
            );
        }
    }

    /// A well-formed line with arbitrary numeric payloads round-trips
    /// exactly through format-then-parse.
    #[test]
    fn well_formed_lines_round_trip(
        id in 0u64..u64::MAX,
        t in i64::MIN..i64::MAX,
        x in -1.0e12f64..1.0e12,
        y in -1.0e12f64..1.0e12,
    ) {
        let line = format!("{id},{t},{x},{y}");
        // Line 2, so header detection cannot swallow the sample.
        match parse_csv_line(&line, 2) {
            Ok(Some((pid, pt, px, py))) => {
                prop_assert_eq!(pid, ObjectId(id));
                prop_assert_eq!(pt, t);
                prop_assert_eq!(px, x);
                prop_assert_eq!(py, y);
            }
            other => prop_assert!(false, "well-formed line rejected: {other:?}"),
        }
    }

    /// Writing any parsed database back out and re-reading it is a fixpoint
    /// (write ∘ read ∘ write ∘ read = write ∘ read).
    #[test]
    fn parse_write_parse_is_a_fixpoint(
        indices in proptest::collection::vec(0usize..1024, 0..384),
    ) {
        let text = palette_string(&indices);
        let Ok(db) = read_csv(text.as_bytes()) else { return Ok(()); };
        let mut out = Vec::new();
        write_csv(&db, &mut out).expect("write to Vec cannot fail");
        let db2 = read_csv(out.as_slice()).expect("re-read of written CSV");
        prop_assert_eq!(db, db2);
    }
}
