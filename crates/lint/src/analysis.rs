//! Per-file token analysis shared by all rules.
//!
//! Builds, on top of the raw token stream from [`crate::lexer`]:
//!
//! * the **code view** — indices of non-comment tokens, so rules can look at
//!   adjacent code tokens without tripping over interleaved comments;
//! * **`#[cfg(test)]` regions** — token ranges belonging to test-gated items,
//!   which every rule skips;
//! * **hot-path regions** — brace-balanced blocks following a marker
//!   comment ([`HOT_PATH_MARKER`]), consumed by the no-alloc rule;
//! * **allow directives** — suppression comments ([`ALLOW_PREFIX`] followed
//!   by rule names, a closing paren, and a justification), parsed with
//!   their target line resolved (same line for trailing comments, next code
//!   line for standalone ones).

use crate::lexer::{tokenize, Token, TokenKind};

/// Marker comment that opens a hot-path region (applies to the next
/// brace-balanced block).
pub const HOT_PATH_MARKER: &str = "lint: hot-path";

/// Prefix of an inline suppression comment.
pub const ALLOW_PREFIX: &str = "lint: allow(";

/// A parsed suppression directive ([`ALLOW_PREFIX`]`rule, …) — reason`).
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule names listed inside the parentheses.
    pub rules: Vec<String>,
    /// 1-based line of the comment itself.
    pub line: u32,
    /// 1-based line whose findings this directive suppresses.
    pub target_line: u32,
    /// Whether a non-empty justification follows the closing parenthesis.
    pub has_reason: bool,
}

/// Token stream plus the derived region/directive maps for one file.
pub struct FileAnalysis<'a> {
    /// The file's source text.
    pub src: &'a str,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Per-token flag: inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
    /// Per-token flag: inside a hot-path region (see [`HOT_PATH_MARKER`]).
    pub in_hot: Vec<bool>,
    /// Parsed allow directives, in source order.
    pub allows: Vec<AllowDirective>,
}

impl<'a> FileAnalysis<'a> {
    /// Lexes `src` and derives all region maps.
    pub fn new(src: &'a str) -> Self {
        let tokens = tokenize(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let in_test = mark_cfg_test_regions(src, &tokens, &code);
        let in_hot = mark_hot_regions(src, &tokens, &code);
        let allows = parse_allow_directives(src, &tokens, &code);
        FileAnalysis {
            src,
            tokens,
            code,
            in_test,
            in_hot,
            allows,
        }
    }

    /// Text of the code token at code-view position `ci`.
    pub fn code_text(&self, ci: usize) -> &'a str {
        self.tokens[self.code[ci]].text(self.src)
    }

    /// Kind of the code token at code-view position `ci`.
    pub fn code_kind(&self, ci: usize) -> TokenKind {
        self.tokens[self.code[ci]].kind
    }

    /// The token at code-view position `ci`.
    pub fn code_token(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Whether the code token at code-view position `ci` is test-gated.
    pub fn code_in_test(&self, ci: usize) -> bool {
        self.in_test[self.code[ci]]
    }

    /// Whether the code token at code-view position `ci` is in a hot region.
    pub fn code_in_hot(&self, ci: usize) -> bool {
        self.in_hot[self.code[ci]]
    }

    /// The full source line (1-based) trimmed, for finding snippets.
    pub fn line_text(&self, line: u32) -> &'a str {
        self.src
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }
}

/// Marks tokens covered by `#[cfg(test)]`-gated items.
///
/// Strategy: scan the code view for `#` `[` … `]` attribute groups whose
/// tokens include both `cfg` and `test` (covers `#[cfg(test)]` and
/// `#[cfg(all(test, …))]`), then skip any further attributes and extend the
/// region to the end of the gated item — the matching `}` of its first brace
/// block, or a terminating `;` (`mod tests;`).
fn mark_cfg_test_regions(src: &str, tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let mut ci = 0usize;
    while ci < code.len() {
        if !is_attr_open(src, tokens, code, ci) {
            ci += 1;
            continue;
        }
        let attr_start_ci = ci;
        let Some((attr_end_ci, is_test)) = scan_attribute(src, tokens, code, ci) else {
            ci += 1;
            continue;
        };
        if !is_test {
            ci = attr_end_ci + 1;
            continue;
        }
        // Skip any additional attributes between #[cfg(test)] and the item.
        let mut item_ci = attr_end_ci + 1;
        while is_attr_open(src, tokens, code, item_ci) {
            match scan_attribute(src, tokens, code, item_ci) {
                Some((end, _)) => item_ci = end + 1,
                None => break,
            }
        }
        // Extend to the end of the item: first `{` balanced to its `}`, or a
        // `;` before any `{` (e.g. `mod tests;`).
        let mut end_ci = item_ci;
        let mut depth = 0usize;
        while end_ci < code.len() {
            match token_text(src, tokens, code, end_ci) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            end_ci += 1;
        }
        let lo = code[attr_start_ci];
        let hi = code[end_ci.min(code.len().saturating_sub(1))];
        for slot in marked.iter_mut().take(hi + 1).skip(lo) {
            *slot = true;
        }
        ci = end_ci + 1;
    }
    marked
}

fn token_text<'a>(src: &'a str, tokens: &[Token], code: &[usize], ci: usize) -> &'a str {
    code.get(ci).map(|&i| tokens[i].text(src)).unwrap_or("")
}

/// Whether code position `ci` starts an outer attribute (`#` followed by `[`).
fn is_attr_open(src: &str, tokens: &[Token], code: &[usize], ci: usize) -> bool {
    token_text(src, tokens, code, ci) == "#" && token_text(src, tokens, code, ci + 1) == "["
}

/// Scans an attribute starting at `ci` (`#`). Returns the code index of the
/// closing `]` and whether the attribute mentions both `cfg` and `test`.
fn scan_attribute(src: &str, tokens: &[Token], code: &[usize], ci: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut i = ci + 1; // position of `[`
    while i < code.len() {
        match token_text(src, tokens, code, i) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((i, saw_cfg && saw_test));
                }
            }
            "cfg" => saw_cfg = true,
            "test" => saw_test = true,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Marks tokens inside hot-path regions: from each [`HOT_PATH_MARKER`]
/// comment, the next `{` in code opens the region and its matching `}`
/// closes it.
fn mark_hot_regions(src: &str, tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    for (ti, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        if !tok.text(src).contains(HOT_PATH_MARKER) {
            continue;
        }
        // First code token after the marker, then its first `{`.
        let Some(start_pos) = code.iter().position(|&i| i > ti) else {
            continue;
        };
        let Some(open_ci) =
            (start_pos..code.len()).find(|&ci| token_text(src, tokens, code, ci) == "{")
        else {
            continue;
        };
        let mut depth = 0usize;
        let mut close_ci = open_ci;
        for ci in open_ci..code.len() {
            match token_text(src, tokens, code, ci) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close_ci = ci;
                        break;
                    }
                }
                _ => {}
            }
            close_ci = ci;
        }
        let lo = code[open_ci];
        let hi = code[close_ci];
        for slot in marked.iter_mut().take(hi + 1).skip(lo) {
            *slot = true;
        }
    }
    marked
}

/// Parses suppression comments ([`ALLOW_PREFIX`]) into [`AllowDirective`]s.
///
/// Target resolution: a trailing comment (code earlier on the same line)
/// suppresses that line; a standalone comment suppresses the line of the
/// next code token after it.
fn parse_allow_directives(src: &str, tokens: &[Token], code: &[usize]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (ti, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = tok.text(src);
        let Some(open) = text.find(ALLOW_PREFIX) else {
            continue;
        };
        let after = &text[open + ALLOW_PREFIX.len()..];
        let (rule_list, rest) = match after.find(')') {
            Some(close) => (&after[..close], &after[close + 1..]),
            None => (after, ""),
        };
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        // Justification: after the `)`, strip separator punctuation and
        // require some actual prose.
        let reason = rest
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim();
        let has_reason = reason.len() >= 3;
        let same_line_code = code.iter().any(|&i| tokens[i].line == tok.line && i < ti);
        let target_line = if same_line_code {
            tok.line
        } else {
            code.iter()
                .find(|&&i| i > ti)
                .map(|&i| tokens[i].line)
                .unwrap_or(tok.line)
        };
        out.push(AllowDirective {
            rules,
            line: tok.line,
            target_line,
            has_reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let a = FileAnalysis::new(src);
        let flag_of = |name: &str| {
            let ci = (0..a.code.len())
                .find(|&ci| a.code_text(ci) == name)
                .unwrap();
            a.code_in_test(ci)
        };
        assert!(!flag_of("live"));
        assert!(flag_of("t"));
        assert!(!flag_of("after"));
    }

    #[test]
    fn cfg_test_with_extra_attribute_and_semicolon_form() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests;\nfn after() {}\n";
        let a = FileAnalysis::new(src);
        let after_ci = (0..a.code.len())
            .find(|&ci| a.code_text(ci) == "after")
            .unwrap();
        assert!(!a.code_in_test(after_ci));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() {}\n";
        let a = FileAnalysis::new(src);
        let ci = (0..a.code.len())
            .find(|&ci| a.code_text(ci) == "gated")
            .unwrap();
        assert!(!a.code_in_test(ci));
    }

    #[test]
    fn hot_region_covers_next_block_only() {
        let src = "// lint: hot-path\nfn hot(x: &[u8]) -> usize {\n    inner()\n}\nfn cold() {}\n";
        let a = FileAnalysis::new(src);
        let flag_of = |name: &str| {
            let ci = (0..a.code.len())
                .find(|&ci| a.code_text(ci) == name)
                .unwrap();
            a.code_in_hot(ci)
        };
        assert!(flag_of("inner"));
        assert!(!flag_of("cold"));
        // The signature before the `{` is not part of the region.
        let hot_ci = (0..a.code.len())
            .find(|&ci| a.code_text(ci) == "hot")
            .unwrap();
        assert!(!a.code_in_hot(hot_ci));
    }

    #[test]
    fn allow_directive_trailing_and_standalone_targets() {
        let src = "let a = x.unwrap(); // lint: allow(no-unwrap-in-lib) — guarded above\n\
                   // lint: allow(cast-audit) — masked to 8 bits\n\
                   let b = y as u8;\n";
        let a = FileAnalysis::new(src);
        assert_eq!(a.allows.len(), 2);
        assert_eq!(a.allows[0].rules, vec!["no-unwrap-in-lib".to_string()]);
        assert_eq!(a.allows[0].target_line, 1);
        assert!(a.allows[0].has_reason);
        assert_eq!(a.allows[1].rules, vec!["cast-audit".to_string()]);
        assert_eq!(a.allows[1].target_line, 3);
    }

    #[test]
    fn allow_directive_without_reason_is_flagged() {
        let src = "let a = x.unwrap(); // lint: allow(no-unwrap-in-lib)\n";
        let a = FileAnalysis::new(src);
        assert_eq!(a.allows.len(), 1);
        assert!(!a.allows[0].has_reason);
    }

    #[test]
    fn allow_directive_multiple_rules() {
        let src = "// lint: allow(cast-audit, checked-time-arithmetic) — proven in range\nlet x = t as u32;\n";
        let a = FileAnalysis::new(src);
        assert_eq!(a.allows[0].rules.len(), 2);
        assert_eq!(a.allows[0].target_line, 2);
    }
}
