//! A minimal Rust lexer — just enough structure for line-oriented static
//! analysis.
//!
//! The rules this crate enforces are token-shaped ("`.unwrap()` outside
//! tests", "bare `-` next to a tick-named value"), so a full parse is not
//! needed — but a plain text grep is *not* enough either: `"unwrap"` inside
//! a string literal, `- 1` inside a doc comment, and a `#[cfg(test)]` module
//! all have to be invisible to the rules. This lexer draws exactly that
//! boundary: it splits source text into comments, string/char literals and
//! code tokens, with multi-byte punctuation (`->`, `::`, `+=`, `..`)
//! resolved so operator rules never misread `->` as a subtraction.
//!
//! Kept deliberately dependency-free (no `syn`, consistent with the
//! workspace's vendored-offline policy); the token stream is lossless enough
//! for every rule in [`crate::rules`] and nothing more.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// Numeric literal (integers, and the digit runs of float literals).
    Number,
    /// String literal: `"…"` or `b"…"` (escapes resolved for termination
    /// only).
    Str,
    /// Raw string literal: `r"…"`, `r#"…"#`, `br##"…"##`, any hash depth.
    RawStr,
    /// Character or byte literal: `'a'`, `'\n'`, `b'x'`.
    CharLit,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// Line comment (`//`, `///`, `//!`), newline not included.
    LineComment,
    /// Block comment (`/* … */`), nesting respected.
    BlockComment,
    /// Punctuation; multi-character operators (`<<=`, `..=`, `::`, …) are
    /// one token, matched maximal-munch.
    Punct,
}

/// One token: classification plus the byte span and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Multi-character punctuation, longest first so maximal munch wins (`..=`
/// before `..`, `<<=` before `<<`).
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Whitespace is dropped; everything else —
/// comments included — is kept, so callers can inspect comment text for
/// lint directives while rules iterate over code tokens only.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b if b.is_ascii_whitespace() => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|b| b != b'\n') {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.bump_n(2);
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.bump_n(2);
                            }
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.bump_n(2);
                            }
                            (Some(_), _) => self.bump(),
                            (None, _) => break,
                        }
                    }
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'"' => self.string(start, line),
                b'\'' => self.quote(start, line),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                b if is_ident_start(b) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line);
                }
                b if b.is_ascii_digit() => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Number, start, line);
                }
                _ => {
                    let rest = &self.src[self.pos..];
                    let multi = MULTI_PUNCT
                        .iter()
                        .find(|p| rest.starts_with(p.as_bytes()))
                        .map_or(1, |p| p.len());
                    self.bump_n(multi);
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    /// Handles the `r` / `b` prefixes that start raw strings, byte strings,
    /// byte chars or raw identifiers. Returns `true` when a token was
    /// consumed; `false` leaves the prefix for the plain-identifier path.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let first = self.peek(0);
        let (hash_at, is_byte) = match (first, self.peek(1)) {
            (Some(b'b'), Some(b'r')) => (2usize, true),
            (Some(b'b'), Some(b'"')) => {
                self.bump();
                self.string(start, line);
                return true;
            }
            (Some(b'b'), Some(b'\'')) => {
                self.bump();
                self.quote(start, line);
                return true;
            }
            (Some(b'r'), _) => (1usize, false),
            _ => return false,
        };
        // Count hashes after the `r` and require an opening quote; `r#ident`
        // (raw identifier) and plain `r`/`br` identifiers fall through.
        let mut hashes = 0usize;
        while self.peek(hash_at + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hash_at + hashes) != Some(b'"') {
            if !is_byte && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                // Raw identifier `r#type`: consume prefix + identifier.
                self.bump_n(2);
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokenKind::Ident, start, line);
                return true;
            }
            return false;
        }
        self.bump_n(hash_at + hashes + 1);
        // Scan for the closing quote followed by `hashes` hashes.
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.bump_n(1 + hashes);
                        break;
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
            }
        }
        self.push(TokenKind::RawStr, start, line);
        true
    }

    /// Lexes a `"…"` string starting at the current quote.
    fn string(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => self.bump_n(2),
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
        self.push(TokenKind::Str, start, line);
    }

    /// Disambiguates `'…'` char literals from `'ident` lifetimes.
    fn quote(&mut self, start: usize, line: u32) {
        let next = self.peek(1);
        if next == Some(b'\\') {
            // Escaped char literal: scan to the closing quote.
            self.bump_n(2); // quote + backslash
            self.bump(); // escaped byte
            while self.peek(0).is_some_and(|b| b != b'\'') {
                self.bump();
            }
            self.bump();
            self.push(TokenKind::CharLit, start, line);
            return;
        }
        if next.is_some_and(is_ident_start) {
            // `'a'` is a char; `'a` (no closing quote after the ident run)
            // is a lifetime.
            let mut len = 1;
            while self.peek(1 + len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if self.peek(1 + len) == Some(b'\'') {
                self.bump_n(len + 2);
                self.push(TokenKind::CharLit, start, line);
            } else {
                self.bump_n(len + 1);
                self.push(TokenKind::Lifetime, start, line);
            }
            return;
        }
        // Punctuation char literal: `'+'`, `' '`, `','` …
        self.bump();
        while self.peek(0).is_some_and(|b| b != b'\'') {
            self.bump();
        }
        self.bump();
        self.push(TokenKind::CharLit, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_strings_and_code_are_separated() {
        let toks = kinds("let x = \"a // not comment\"; // real\n/* block */ y");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("not comment")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t == "// real"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t == "/* block */"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r####"let s = r#"contains "unwrap()" inside"#; next"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "next"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn multi_char_punctuation_is_one_token() {
        let toks = kinds("a -> b; c += d; e..=f; g :: h; i - j");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"->"));
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"-"));
        assert!(!puncts.contains(&">"), "-> must not split: {puncts:?}");
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* outer /* inner */ still */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "code");
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = tokenize("a\nb\n\nc");
        let src = "a\nb\n\nc";
        let lines: Vec<(String, u32)> = toks
            .iter()
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 4)
            ]
        );
    }

    #[test]
    fn byte_and_raw_identifier_prefixes() {
        let toks = kinds("let a = b\"bytes\"; let c = b'x'; let r#type = r\"raw\";");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::CharLit && t == "b'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t == "r\"raw\""));
    }
}
