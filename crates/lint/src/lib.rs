//! `convoy-lint` — repo-specific static analysis for the convoy suite.
//!
//! Enforces the invariants the suite's hard bugs came from (see each rule in
//! [`rules`]): checked time arithmetic, panic-free decode/parse paths,
//! allocation-free hot regions, no stray unwraps in library code, and
//! audited narrowing casts. Built on a lightweight token-level lexer
//! ([`lexer`]) rather than `syn`, consistent with the workspace's
//! vendored-offline policy.
//!
//! Findings are suppressed only by an inline allow comment — the
//! [`analysis::ALLOW_PREFIX`] marker, the rule name(s), a closing paren and
//! a justification — on (or directly above) the offending line; allows
//! without a justification, naming unknown rules, or no longer matching a
//! live finding are themselves findings, so the allowlist can never go
//! stale.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod lexer;
pub mod rules;

use analysis::FileAnalysis;
use rules::{RawFinding, RULE_NAMES};
use std::fs;
use std::path::{Path, PathBuf};

/// One reported problem: a rule hit that no valid allow suppressed, or a
/// defective allow directive.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (one of [`RULE_NAMES`], or the meta-rules `stale-allow` /
    /// `malformed-allow`).
    pub rule: String,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line, for context.
    pub snippet: String,
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of allow directives that matched a live finding.
    pub allows_used: usize,
}

impl Report {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Which rules run on a file, decided from its workspace-relative path.
/// Scoping mirrors ISSUE 7: time arithmetic in the engine/stream/trajectory
/// crates, panic rules on the untrusted-byte paths, cast auditing where
/// `i64`/`usize` working types dominate, and the hot-path + unwrap rules
/// everywhere library code lives.
fn rules_for(rel: &str) -> Vec<fn(&FileAnalysis) -> Vec<RawFinding>> {
    let mut active: Vec<fn(&FileAnalysis) -> Vec<RawFinding>> = Vec::new();
    let in_any = |prefixes: &[&str]| prefixes.iter().any(|p| rel.starts_with(p));

    if in_any(&[
        "crates/core/src/",
        "crates/stream/src/",
        "crates/trajectory/src/",
        "crates/obs/src/",
    ]) {
        active.push(rules::checked_time_arithmetic);
    }
    if rel == "crates/stream/src/checkpoint.rs"
        || rel == "crates/datasets/src/io.rs"
        || rel == "crates/datasets/src/container.rs"
    {
        active.push(rules::no_panic_decode);
    }
    // Hot-path regions can be marked anywhere; the rule is a no-op without
    // markers, so it runs on every file.
    active.push(rules::no_alloc_hot_path);
    if is_library_source(rel) {
        active.push(rules::no_unwrap_in_lib);
    }
    if in_any(&[
        "crates/core/src/",
        "crates/clustering/src/",
        "crates/stream/src/",
    ]) {
        active.push(rules::cast_audit);
    }
    active
}

/// Library source: under a `src/` tree, excluding binary entry points
/// (`main.rs`, `src/bin/`) and the CLI crate, whose top-level error handling
/// legitimately aborts.
fn is_library_source(rel: &str) -> bool {
    let in_src = rel.starts_with("src/") || rel.contains("/src/");
    in_src
        && !rel.contains("/bin/")
        && !rel.ends_with("/main.rs")
        && rel != "main.rs"
        && !rel.starts_with("crates/cli/")
}

/// Lints one file's source text as if it lived at `rel` (workspace-relative,
/// `/`-separated). This is the core entry point; tests feed it fixture
/// sources under synthetic paths to exercise path-scoped rules.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let a = FileAnalysis::new(src);
    let mut raw: Vec<RawFinding> = Vec::new();
    for rule in rules_for(rel) {
        raw.extend(rule(&a));
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut allow_used = vec![false; a.allows.len()];

    'raw: for f in &raw {
        for (ai, allow) in a.allows.iter().enumerate() {
            if allow.target_line == f.line
                && allow.has_reason
                && allow.rules.iter().any(|r| r == f.rule)
            {
                allow_used[ai] = true;
                continue 'raw;
            }
        }
        findings.push(Finding {
            rule: f.rule.to_string(),
            file: rel.to_string(),
            line: f.line,
            message: f.message.clone(),
            snippet: a.line_text(f.line).to_string(),
        });
    }

    // Allow hygiene: unknown rule names and missing justifications are
    // malformed; syntactically valid allows that suppressed nothing are
    // stale. Both fail the run so the allowlist tracks live findings only.
    for (ai, allow) in a.allows.iter().enumerate() {
        let unknown: Vec<&String> = allow
            .rules
            .iter()
            .filter(|r| !RULE_NAMES.contains(&r.as_str()))
            .collect();
        if allow.rules.is_empty() || !unknown.is_empty() {
            findings.push(Finding {
                rule: "malformed-allow".to_string(),
                file: rel.to_string(),
                line: allow.line,
                message: if allow.rules.is_empty() {
                    "allow directive names no rule".to_string()
                } else {
                    format!(
                        "allow directive names unknown rule(s): {}",
                        unknown
                            .iter()
                            .map(|s| s.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                },
                snippet: a.line_text(allow.line).to_string(),
            });
        } else if !allow.has_reason {
            findings.push(Finding {
                rule: "malformed-allow".to_string(),
                file: rel.to_string(),
                line: allow.line,
                message: "allow directive has no justification — write \
                          `// lint: allow(rule) — why this is safe`"
                    .to_string(),
                snippet: a.line_text(allow.line).to_string(),
            });
        } else if !allow_used[ai] {
            findings.push(Finding {
                rule: "stale-allow".to_string(),
                file: rel.to_string(),
                line: allow.line,
                message: format!(
                    "allow({}) no longer matches a live finding on line {} — remove it",
                    allow.rules.join(", "),
                    allow.target_line
                ),
                snippet: a.line_text(allow.line).to_string(),
            });
        }
    }

    findings.sort_by_key(|x| (x.line, x.rule.clone()));
    findings
}

/// Counts how many allows in `src` matched a live finding (for reporting).
pub fn count_used_allows(rel: &str, src: &str) -> usize {
    let a = FileAnalysis::new(src);
    let mut raw: Vec<RawFinding> = Vec::new();
    for rule in rules_for(rel) {
        raw.extend(rule(&a));
    }
    a.allows
        .iter()
        .filter(|allow| {
            allow.has_reason
                && raw
                    .iter()
                    .any(|f| allow.target_line == f.line && allow.rules.iter().any(|r| r == f.rule))
        })
        .count()
}

/// Walks the workspace from `root` and returns the `/`-separated relative
/// paths of all first-party Rust sources: everything under `crates/*/src/`
/// plus the umbrella crate's `src/`. Vendored stand-ins, tests, benches,
/// examples and fixtures are out of scope.
pub fn discover_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut out)?;
    }
    let mut rels: Vec<String> = out
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every discovered file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = discover_files(root)?;
    let mut report = Report::default();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        report.findings.extend(lint_source(rel, &src));
        report.allows_used += count_used_allows(rel, &src);
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Renders a report for terminals: `file:line: [rule] message` plus the
/// offending line, then a summary.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file, f.line, f.rule, f.message, f.snippet
        ));
    }
    out.push_str(&format!(
        "convoy-lint: {} file(s) scanned, {} finding(s), {} justified allow(s)\n",
        report.files_scanned,
        report.findings.len(),
        report.allows_used
    ));
    out
}

/// Renders a report as JSON (hand-rolled — the vendored serde stand-in has
/// no derive-based serializer, and the shape here is flat and stable).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"allows_used\": {},\n", report.allows_used));
    out.push_str(&format!(
        "  \"clean\": {},\n",
        if report.is_clean() { "true" } else { "false" }
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
            json_string(&f.rule),
            json_string(&f.file),
            f.line,
            json_string(&f.message),
            json_string(&f.snippet)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_source_scoping() {
        assert!(is_library_source("crates/core/src/engine.rs"));
        assert!(is_library_source("src/lib.rs"));
        assert!(!is_library_source("crates/cli/src/main.rs"));
        assert!(!is_library_source("crates/lint/src/main.rs"));
        assert!(!is_library_source("crates/cli/src/bin/tool.rs"));
    }

    #[test]
    fn json_escaping_round_trips_special_chars() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn clean_source_produces_no_findings() {
        let findings = lint_source(
            "crates/core/src/x.rs",
            "pub fn add(a: i64, b: i64) -> Option<i64> { a.checked_add(b) }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
