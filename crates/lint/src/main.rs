//! CLI for `convoy-lint`.
//!
//! ```text
//! convoy-lint [--json] [--deny] [--root DIR] [FILE…]
//! ```
//!
//! Exits 0 when clean, 1 on findings, 2 on usage or I/O errors. `--deny` is
//! the explicit CI spelling — identical to the default exit behaviour, but
//! states the intent in the workflow file.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    json: bool,
    root: Option<PathBuf>,
    files: Vec<String>,
}

const USAGE: &str = "usage: convoy-lint [--json] [--deny] [--root DIR] [FILE…]\n\
\n\
Lints first-party sources (crates/*/src/**, src/**) against the suite's\n\
five invariant rules. With FILE arguments (workspace-relative paths), lints\n\
only those files. Without --root, searches upward for the workspace root.\n";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        root: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            // --deny: exit nonzero on findings. That is already the default;
            // the flag exists so CI invocations read as policy.
            "--deny" => {}
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(opts)
}

/// Finds the workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("convoy-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = opts.root.or_else(find_root) else {
        eprintln!("convoy-lint: no workspace root found (pass --root DIR)");
        return ExitCode::from(2);
    };

    let report = if opts.files.is_empty() {
        convoy_lint::lint_workspace(&root)
    } else {
        let mut report = convoy_lint::Report::default();
        let mut err = None;
        for rel in &opts.files {
            match std::fs::read_to_string(root.join(rel)) {
                Ok(src) => {
                    report.findings.extend(convoy_lint::lint_source(rel, &src));
                    report.allows_used += convoy_lint::count_used_allows(rel, &src);
                    report.files_scanned += 1;
                }
                Err(e) => {
                    err = Some(std::io::Error::new(e.kind(), format!("{rel}: {e}")));
                    break;
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    };

    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("convoy-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        print!("{}", convoy_lint::render_json(&report));
    } else {
        print!("{}", convoy_lint::render_human(&report));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
