//! The five repo-specific rules.
//!
//! Each rule walks the code view of a [`FileAnalysis`] and emits raw
//! findings; suppression via inline allow directives and stale-allow
//! detection happen one layer up in [`crate::lint_source`].
//!
//! | rule | guards | scope |
//! |---|---|---|
//! | `checked-time-arithmetic` | bare `+`/`-`/`*`/`+=`/`-=`/`*=` on tick- or nanosecond-named values | `core`, `stream`, `trajectory`, `obs` |
//! | `no-panic-decode` | unwrap/expect/panic!/indexing on untrusted bytes | checkpoint decode + CSV parse |
//! | `no-alloc-hot-path` | allocation constructors in marked hot regions | whole workspace |
//! | `no-unwrap-in-lib` | `.unwrap()`/`.expect()` outside tests | library crates |
//! | `cast-audit` | lossy `as` casts to narrow numeric types | `core`, `clustering`, `stream` |

use crate::analysis::FileAnalysis;
use crate::lexer::TokenKind;

/// All rule names, used for allow-directive validation and `--list-rules`.
pub const RULE_NAMES: &[&str] = &[
    "checked-time-arithmetic",
    "no-panic-decode",
    "no-alloc-hot-path",
    "no-unwrap-in-lib",
    "cast-audit",
];

/// A rule hit before allow-suppression: rule name, 1-based line, message.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Which rule fired.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Keywords that cannot be a binary operator's left operand; an arithmetic
/// token after one of these is unary (`return -t`) or not arithmetic at all
/// (`as f64 * …` handles itself via the non-match of `f64`).
const UNARY_CONTEXT_KEYWORDS: &[&str] = &[
    "return", "break", "continue", "in", "if", "else", "match", "while", "loop", "let", "move",
    "mut", "ref", "use", "where", "yield", "const", "static", "type", "fn", "impl", "dyn", "pub",
    "unsafe", "async", "await",
];

/// Exact identifiers treated as time-valued.
const TIME_EXACT: &[&str] = &["t", "t0", "t1", "dt", "ts", "start", "end"];

/// Substrings that mark an identifier as time-valued. The `nanos`/
/// `duration`/`elapsed` entries cover the observability layer's wall-clock
/// values, which saturate rather than wrap for the same reason ticks do.
const TIME_SUBSTRINGS: &[&str] = &[
    "tick",
    "time",
    "timestamp",
    "watermark",
    "epoch",
    "horizon",
    "deadline",
    "nanos",
    "duration",
    "elapsed",
];

fn is_time_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    TIME_EXACT.contains(&lower.as_str())
        || lower.ends_with("_t")
        || lower.ends_with("_ts")
        || lower.ends_with("_ns")
        || TIME_SUBSTRINGS.iter().any(|s| lower.contains(s))
}

/// **checked-time-arithmetic** — flags bare binary `+`/`-`/`*` and the
/// compound assignments `+=`/`-=`/`*=` where either operand chain contains
/// a tick/timestamp-named identifier. This is the PR 6 bug class
/// (`window.end - h` overflowing at `i64::MIN`-adjacent horizons) and the
/// PR 8 one (`next_t += 1` wrapping at a window ending on `i64::MAX`);
/// checked/saturating methods don't trip it.
pub fn checked_time_arithmetic(a: &FileAnalysis) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for ci in 0..a.code.len() {
        if a.code_in_test(ci) {
            continue;
        }
        let op = a.code_text(ci);
        if !(a.code_kind(ci) == TokenKind::Punct
            && matches!(op, "+" | "-" | "*" | "+=" | "-=" | "*="))
        {
            continue;
        }
        if ci == 0 || !is_binary_position(a, ci) {
            continue;
        }
        let mut names = operand_chain_left(a, ci);
        names.extend(operand_chain_right(a, ci));
        if let Some(name) = names.iter().find(|n| is_time_name(n)) {
            out.push(RawFinding {
                rule: "checked-time-arithmetic",
                line: a.code_token(ci).line,
                message: format!(
                    "bare `{op}` on time-named value `{name}` — use checked_/saturating_ \
                     arithmetic (ticks span the full i64 range)"
                ),
            });
        }
    }
    out
}

/// Whether the `+`/`-`/`*` at code position `ci` is in binary position:
/// preceded by a value-producing token rather than an opening delimiter,
/// another operator, or a keyword that starts an expression.
fn is_binary_position(a: &FileAnalysis, ci: usize) -> bool {
    let prev_kind = a.code_kind(ci - 1);
    let prev = a.code_text(ci - 1);
    match prev_kind {
        TokenKind::Ident => !UNARY_CONTEXT_KEYWORDS.contains(&prev),
        TokenKind::Number | TokenKind::Str | TokenKind::CharLit => true,
        TokenKind::Punct => matches!(prev, ")" | "]" | "?"),
        _ => false,
    }
}

/// Collects the identifier chain feeding the left operand of the operator at
/// `ci`: for `self.window.end -` that is `[end, window, self]`; for a call
/// `candidate.lifetime() -` the matching `(` is skipped so the method name
/// participates.
fn operand_chain_left(a: &FileAnalysis, ci: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = ci;
    // Step over a trailing call/index group to the token before its opener.
    loop {
        if i == 0 {
            return names;
        }
        i -= 1;
        match a.code_text(i) {
            ")" => {
                let Some(open) = match_backward(a, i, "(", ")") else {
                    return names;
                };
                if open == 0 {
                    return names;
                }
                i = open;
            }
            "]" => {
                let Some(open) = match_backward(a, i, "[", "]") else {
                    return names;
                };
                if open == 0 {
                    return names;
                }
                i = open;
            }
            "?" => {}
            _ => break,
        }
    }
    // Now expect `ident ((. | ::) ident)*` walking backwards.
    loop {
        if a.code_kind(i) != TokenKind::Ident {
            break;
        }
        names.push(a.code_text(i).to_string());
        if i >= 2
            && matches!(a.code_text(i - 1), "." | "::")
            && a.code_kind(i - 2) == TokenKind::Ident
        {
            i -= 2;
        } else {
            break;
        }
    }
    names
}

/// Collects the identifier chain of the right operand: `- self.window.start`
/// yields `[self, window, start]`. Leading `&`/`*` borrows are skipped;
/// parenthesized sub-expressions yield nothing (their internal operators are
/// checked independently).
fn operand_chain_right(a: &FileAnalysis, ci: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = ci + 1;
    while i < a.code.len() && matches!(a.code_text(i), "&" | "*" | "mut") {
        i += 1;
    }
    while i < a.code.len() && a.code_kind(i) == TokenKind::Ident {
        names.push(a.code_text(i).to_string());
        if i + 2 < a.code.len()
            && matches!(a.code_text(i + 1), "." | "::")
            && a.code_kind(i + 2) == TokenKind::Ident
        {
            i += 2;
        } else {
            break;
        }
    }
    names
}

/// Finds the opener matching the closer at code position `close`.
fn match_backward(
    a: &FileAnalysis,
    close: usize,
    open_tok: &str,
    close_tok: &str,
) -> Option<usize> {
    let mut depth = 0isize;
    let mut i = close;
    loop {
        let t = a.code_text(i);
        if t == close_tok {
            depth += 1;
        } else if t == open_tok {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Macro names that abort: `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// **no-panic-decode** — in the byte-decode and CSV-parse paths, flags every
/// way the code could abort on untrusted input: `.unwrap()`, `.expect()`,
/// panicking macros, and slice indexing (`buf[i]`, `buf[a..b]`). These files
/// face arbitrary bytes; every failure must surface as a `Result`.
pub fn no_panic_decode(a: &FileAnalysis) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for ci in 0..a.code.len() {
        if a.code_in_test(ci) {
            continue;
        }
        let text = a.code_text(ci);
        let line = a.code_token(ci).line;
        if is_method_call(a, ci, &["unwrap", "expect"]) {
            out.push(RawFinding {
                rule: "no-panic-decode",
                line,
                message: format!("`.{text}()` in a decode/parse path — return an error instead"),
            });
        } else if a.code_kind(ci) == TokenKind::Ident
            && PANIC_MACROS.contains(&text)
            && ci + 1 < a.code.len()
            && a.code_text(ci + 1) == "!"
        {
            out.push(RawFinding {
                rule: "no-panic-decode",
                line,
                message: format!("`{text}!` in a decode/parse path — return an error instead"),
            });
        } else if text == "[" && ci > 0 {
            // Indexing: `[` directly after a value (identifier, call, or
            // another index). `#[attr]`, array types `[u8; 4]` and array
            // literals follow non-value tokens and don't match.
            let prev_is_value = matches!(a.code_kind(ci - 1), TokenKind::Ident)
                && !UNARY_CONTEXT_KEYWORDS.contains(&a.code_text(ci - 1))
                || matches!(a.code_text(ci - 1), ")" | "]" | "?");
            if prev_is_value {
                out.push(RawFinding {
                    rule: "no-panic-decode",
                    line,
                    message: "slice indexing in a decode/parse path — use `.get()` and \
                              surface truncation as an error"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// Whether code position `ci` is a method call `.name(` with `name` in
/// `names`.
fn is_method_call(a: &FileAnalysis, ci: usize, names: &[&str]) -> bool {
    a.code_kind(ci) == TokenKind::Ident
        && names.contains(&a.code_text(ci))
        && ci > 0
        && a.code_text(ci - 1) == "."
        && ci + 1 < a.code.len()
        && a.code_text(ci + 1) == "("
}

/// Allocating method calls banned in hot regions.
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_vec", "to_string", "to_owned"];

/// Allocating macros banned in hot regions.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Container types whose constructors allocate (or set up a growable
/// working set) and are banned in hot regions.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];

/// Constructor names checked on [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// **no-alloc-hot-path** — inside marked hot-path regions (see
/// [`crate::analysis::HOT_PATH_MARKER`]), flags allocation constructors:
/// `Vec::new`/`with_capacity`, `Box::new`, the vec/format macros,
/// `.clone()`, `.collect()`, `.to_vec()`. The static
/// complement to the counting-allocator test in
/// `crates/clustering/tests/zero_alloc.rs` — the runtime test proves a
/// particular run is clean, this proves the code can't regress quietly.
pub fn no_alloc_hot_path(a: &FileAnalysis) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for ci in 0..a.code.len() {
        if a.code_in_test(ci) || !a.code_in_hot(ci) {
            continue;
        }
        let text = a.code_text(ci);
        let line = a.code_token(ci).line;
        if is_method_call(a, ci, ALLOC_METHODS) {
            out.push(RawFinding {
                rule: "no-alloc-hot-path",
                line,
                message: format!("`.{text}()` allocates inside a `lint: hot-path` region"),
            });
        } else if a.code_kind(ci) == TokenKind::Ident
            && ALLOC_MACROS.contains(&text)
            && ci + 1 < a.code.len()
            && a.code_text(ci + 1) == "!"
        {
            out.push(RawFinding {
                rule: "no-alloc-hot-path",
                line,
                message: format!("`{text}!` allocates inside a `lint: hot-path` region"),
            });
        } else if a.code_kind(ci) == TokenKind::Ident
            && ALLOC_TYPES.contains(&text)
            && ci + 2 < a.code.len()
            && a.code_text(ci + 1) == "::"
            && ALLOC_CTORS.contains(&a.code_text(ci + 2))
        {
            out.push(RawFinding {
                rule: "no-alloc-hot-path",
                line,
                message: format!(
                    "`{text}::{}` constructs a heap container inside a `lint: hot-path` region",
                    a.code_text(ci + 2)
                ),
            });
        }
    }
    out
}

/// **no-unwrap-in-lib** — `.unwrap()`/`.expect()` anywhere outside
/// `#[cfg(test)]` in library code. Library callers must get `Result`s, not
/// aborts; the few justified cases (e.g. joining a worker thread whose
/// panic we *want* to propagate) carry inline allows.
pub fn no_unwrap_in_lib(a: &FileAnalysis) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for ci in 0..a.code.len() {
        if a.code_in_test(ci) {
            continue;
        }
        if is_method_call(a, ci, &["unwrap", "expect"]) {
            out.push(RawFinding {
                rule: "no-unwrap-in-lib",
                line: a.code_token(ci).line,
                message: format!(
                    "`.{}()` in library code outside `#[cfg(test)]` — propagate the error \
                     or justify with an allow",
                    a.code_text(ci)
                ),
            });
        }
    }
    out
}

/// Cast targets that can silently lose value range or precision from the
/// suite's working types (`i64` ticks, `u64` ids, `usize` indexes, `f64`
/// coordinates).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// **cast-audit** — flags `as` casts to narrow numeric types in the engine
/// crates. Widening casts (`as i64`, `as f64`, `as u64`, `as usize`) pass;
/// each narrowing cast must either be rewritten with `try_from`/checked
/// conversion or carry an allow explaining why the value fits.
pub fn cast_audit(a: &FileAnalysis) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for ci in 0..a.code.len() {
        if a.code_in_test(ci) {
            continue;
        }
        if a.code_text(ci) != "as" || a.code_kind(ci) != TokenKind::Ident {
            continue;
        }
        if ci + 1 >= a.code.len() {
            continue;
        }
        let target = a.code_text(ci + 1);
        if NARROW_TARGETS.contains(&target) {
            out.push(RawFinding {
                rule: "cast-audit",
                line: a.code_token(ci).line,
                message: format!(
                    "lossy `as {target}` cast — use `try_from` or justify the value range \
                     with an allow"
                ),
            });
        }
    }
    out
}
