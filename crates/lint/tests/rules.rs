//! Per-rule fixture tests: each rule gets a positive fixture (the defect is
//! reported), a negative fixture (compliant code passes), and edge fixtures
//! for the lexer-level hazards the token scanner must not trip over —
//! panic-words inside string literals, `#[cfg(test)]` regions, raw strings,
//! and the allow-directive machinery (justified, malformed, stale).
//!
//! Fixtures are fed through [`convoy_lint::lint_source`] under synthetic
//! workspace-relative paths, because rule activation is path-scoped.

use convoy_lint::lint_source;

/// Rule names reported for a fixture, in order.
fn hits(rel: &str, src: &str) -> Vec<String> {
    lint_source(rel, src).into_iter().map(|f| f.rule).collect()
}

/// Lines (1-based) on which `rule` fired.
fn lines_of(rel: &str, src: &str, rule: &str) -> Vec<u32> {
    lint_source(rel, src)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------- time arith

#[test]
fn time_arith_flags_bare_minus_on_tick_names() {
    let src =
        "pub fn span(start_tick: i64, end_tick: i64) -> i64 {\n    end_tick - start_tick\n}\n";
    assert_eq!(
        lines_of("crates/core/src/window.rs", src, "checked-time-arithmetic"),
        vec![2]
    );
}

#[test]
fn time_arith_accepts_saturating_ops() {
    let src = "pub fn span(start_tick: i64, end_tick: i64) -> i64 {\n    end_tick.saturating_sub(start_tick)\n}\n";
    assert!(hits("crates/core/src/window.rs", src).is_empty());
}

#[test]
fn time_arith_is_scoped_to_engine_crates() {
    // Identical source outside core/stream/trajectory: the rule is inactive.
    let src =
        "pub fn span(start_tick: i64, end_tick: i64) -> i64 {\n    end_tick - start_tick\n}\n";
    assert!(hits("crates/datasets/src/gen.rs", src).is_empty());
}

#[test]
fn time_arith_ignores_non_time_operands_and_unary_minus() {
    let src = "pub fn f(count: i64, t: i64) -> i64 {\n    let a = count - 1;\n    let b = -t;\n    a + b\n}\n";
    assert!(hits("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn time_arith_skips_test_modules_and_strings() {
    let src = concat!(
        "pub const MSG: &str = \"end - start overflowed at tick\";\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() { let start = 1i64; let end = 9i64; assert_eq!(end - start, 8); }\n",
        "}\n",
    );
    assert!(hits("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn time_arith_flags_compound_assignments_on_time_names() {
    // The PR 8 sweep bug: `self.next_t += 1` walked straight past i64::MAX.
    let src = concat!(
        "pub fn advance(&mut self) {\n",
        "    self.next_t += 1;\n",
        "    self.deadline_ts -= 2;\n",
        "    self.tick *= 2;\n",
        "}\n",
    );
    assert_eq!(
        lines_of("crates/trajectory/src/s.rs", src, "checked-time-arithmetic"),
        vec![2, 3, 4]
    );
}

#[test]
fn time_arith_accepts_checked_compound_updates_and_non_time_targets() {
    let src = concat!(
        "pub fn advance(&mut self) {\n",
        "    self.next_t = self.next_t.saturating_add(1);\n",
        "    self.count += 1;\n",
        "    self.weight += 0.5;\n",
        "}\n",
    );
    assert!(hits("crates/trajectory/src/s.rs", src).is_empty());
}

#[test]
fn time_arith_flags_nanosecond_names_and_runs_on_obs_sources() {
    // The observability layer's wall-clock values: `_ns` suffixes and
    // `nanos`/`duration`/`elapsed` substrings are time-valued, and the rule
    // is active under crates/obs/src/.
    let src = concat!(
        "pub fn f(started_ns: u64, now_ns: u64) -> u64 {\n",
        "    let elapsed = now_ns - started_ns;\n",
        "    let total_nanos = elapsed * 2;\n",
        "    let duration_sum = total_nanos + 1;\n",
        "    duration_sum\n",
        "}\n",
    );
    assert_eq!(
        lines_of("crates/obs/src/registry.rs", src, "checked-time-arithmetic"),
        vec![2, 3, 4]
    );
    // Saturating forms of the same names are compliant.
    let ok = concat!(
        "pub fn f(started_ns: u64, now_ns: u64) -> u64 {\n",
        "    now_ns.saturating_sub(started_ns)\n",
        "}\n",
    );
    assert!(hits("crates/obs/src/registry.rs", ok).is_empty());
}

#[test]
fn time_arith_sees_through_field_and_method_chains() {
    let src = "pub fn f(w: W) -> i64 {\n    w.interval.end - w.interval.start\n}\n";
    assert_eq!(
        lines_of("crates/stream/src/w.rs", src, "checked-time-arithmetic"),
        vec![2]
    );
}

// -------------------------------------------------------------- panic decode

#[test]
fn panic_decode_flags_unwrap_and_indexing_on_decode_paths() {
    let src = concat!(
        "pub fn decode(bytes: &[u8]) -> u8 {\n",
        "    let first = bytes[0];\n",
        "    let parsed: u8 = std::str::from_utf8(bytes).unwrap().parse().unwrap();\n",
        "    first + parsed\n",
        "}\n",
    );
    let found = lines_of("crates/stream/src/checkpoint.rs", src, "no-panic-decode");
    assert!(found.contains(&2), "slice index not flagged: {found:?}");
    assert!(found.contains(&3), "unwrap not flagged: {found:?}");
}

#[test]
fn panic_decode_flags_panic_macros() {
    let src = "pub fn decode(b: u8) -> u8 {\n    match b { 0 => 1, _ => unreachable!() }\n}\n";
    assert_eq!(
        lines_of("crates/datasets/src/io.rs", src, "no-panic-decode"),
        vec![2]
    );
}

#[test]
fn panic_decode_accepts_fallible_style() {
    let src = concat!(
        "pub fn decode(bytes: &[u8]) -> Option<u8> {\n",
        "    let first = bytes.first()?;\n",
        "    first.checked_add(1)\n",
        "}\n",
    );
    assert!(hits("crates/stream/src/checkpoint.rs", src).is_empty());
}

#[test]
fn panic_decode_only_runs_on_the_decode_files() {
    let src = "pub fn f(b: &[u8]) -> u8 { b[0] }\n";
    assert!(lines_of("crates/stream/src/stream.rs", src, "no-panic-decode").is_empty());
    // The `.convoy` container decoder is an untrusted-byte path too.
    assert_eq!(
        lines_of("crates/datasets/src/container.rs", src, "no-panic-decode"),
        vec![1]
    );
}

#[test]
fn panic_decode_ignores_panic_words_in_strings_and_tests() {
    let src = concat!(
        "pub const HELP: &str = \"never unwrap() or panic!() here; bytes[0] is checked\";\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() { let v = vec![1u8]; assert_eq!(v[0], 1); }\n",
        "}\n",
    );
    assert!(hits("crates/stream/src/checkpoint.rs", src).is_empty());
}

// ------------------------------------------------------------- hot-path alloc

/// Builds a hot-path marker comment without embedding the directive text in
/// this file's comments.
fn hot_marker() -> String {
    format!("// {} — steady state must not allocate\n", "lint: hot-path")
}

#[test]
fn hot_path_flags_alloc_inside_marked_region() {
    let src = format!(
        "{}pub fn step(&mut self) {{\n    let scratch: Vec<u32> = Vec::new();\n    drop(scratch);\n}}\n",
        hot_marker()
    );
    assert_eq!(
        lines_of("crates/clustering/src/x.rs", &src, "no-alloc-hot-path"),
        vec![3]
    );
}

#[test]
fn hot_path_flags_clone_collect_and_macros() {
    let src = format!(
        "{}pub fn step(v: &[u32]) -> Vec<u32> {{\n    let a = v.to_vec();\n    let b: Vec<u32> = v.iter().copied().collect();\n    let c = format!(\"{{}}\", a.len());\n    drop(c);\n    b\n}}\n",
        hot_marker()
    );
    let found = lines_of("crates/core/src/x.rs", &src, "no-alloc-hot-path");
    assert_eq!(found, vec![3, 4, 5]);
}

#[test]
fn hot_path_region_ends_at_matching_brace() {
    let src = format!(
        "{}pub fn hot(&mut self) {{\n    self.counter += 1;\n}}\n\npub fn cold() -> Vec<u32> {{\n    Vec::new()\n}}\n",
        hot_marker()
    );
    assert!(hits("crates/clustering/src/x.rs", &src).is_empty());
}

#[test]
fn no_marker_means_no_hot_rule() {
    let src = "pub fn anywhere() -> Vec<u32> {\n    Vec::new()\n}\n";
    assert!(lines_of("crates/clustering/src/x.rs", src, "no-alloc-hot-path").is_empty());
}

// ------------------------------------------------------------- unwrap in lib

#[test]
fn unwrap_in_lib_flags_unwrap_and_expect() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\npub fn g(v: Option<u32>) -> u32 {\n    v.expect(\"present\")\n}\n";
    assert_eq!(
        lines_of("crates/simplify/src/x.rs", src, "no-unwrap-in-lib"),
        vec![2, 5]
    );
}

#[test]
fn unwrap_in_lib_skips_binaries_and_cli() {
    let src = "fn main() {\n    std::env::args().next().unwrap();\n}\n";
    assert!(hits("crates/cli/src/main.rs", src).is_empty());
    assert!(hits("crates/bench/src/bin/sweep.rs", src).is_empty());
}

#[test]
fn unwrap_in_lib_skips_cfg_test_and_string_literals() {
    let src = concat!(
        "pub const DOC: &str = \"call unwrap() at your peril\";\n",
        "pub const RAW: &str = r#\"maybe.unwrap() inside a raw string\"#;\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() { Some(1u32).unwrap(); }\n",
        "}\n",
    );
    assert!(hits("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn unwrap_named_field_access_is_not_a_call() {
    // `unwrap` as a plain identifier (not a method call) should not fire.
    let src = "pub struct S { pub unwrap: u32 }\npub fn f(s: S) -> u32 {\n    s.unwrap\n}\n";
    assert!(hits("crates/core/src/x.rs", src).is_empty());
}

// --------------------------------------------------------------- cast audit

#[test]
fn cast_audit_flags_narrowing_casts() {
    let src = "pub fn f(n: usize) -> u32 {\n    n as u32\n}\n";
    assert_eq!(
        lines_of("crates/clustering/src/x.rs", src, "cast-audit"),
        vec![2]
    );
}

#[test]
fn cast_audit_accepts_widening_casts() {
    let src = "pub fn f(n: u32) -> f64 {\n    let a = n as u64;\n    let b = n as usize;\n    (a + b as u64) as f64\n}\n";
    assert!(hits("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn cast_audit_is_scoped() {
    let src = "pub fn f(n: usize) -> u32 {\n    n as u32\n}\n";
    assert!(hits("crates/datasets/src/x.rs", src).is_empty());
}

// ------------------------------------------------------------ allow machinery

/// Builds an allow comment for `rules` with the given trailing text, without
/// embedding the directive prefix in this file's own comments.
fn allow(rules: &str, reason: &str) -> String {
    format!("// {}{rules}) {reason}", "lint: allow(")
}

#[test]
fn justified_allow_suppresses_the_finding() {
    let src = format!(
        "pub fn f(n: usize) -> u32 {{\n    {}\n    n as u32\n}}\n",
        allow("cast-audit", "— n < 256 by construction")
    );
    assert!(hits("crates/core/src/x.rs", &src).is_empty());
}

#[test]
fn trailing_allow_targets_its_own_line() {
    let src = format!(
        "pub fn f(n: usize) -> u32 {{\n    n as u32 {}\n}}\n",
        allow("cast-audit", "— bounded by the grid size")
    );
    assert!(hits("crates/core/src/x.rs", &src).is_empty());
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = format!(
        "pub fn f(n: usize) -> u32 {{\n    {}\n    n as u32\n}}\n",
        allow("no-unwrap-in-lib", "— wrong rule, finding must survive")
    );
    let found = hits("crates/core/src/x.rs", &src);
    assert!(found.contains(&"cast-audit".to_string()), "{found:?}");
    // The mismatched allow is itself stale.
    assert!(found.contains(&"stale-allow".to_string()), "{found:?}");
}

#[test]
fn allow_without_a_reason_is_malformed() {
    let src = format!(
        "pub fn f(n: usize) -> u32 {{\n    {}\n    n as u32\n}}\n",
        allow("cast-audit", "")
    );
    let found = hits("crates/core/src/x.rs", &src);
    assert!(found.contains(&"malformed-allow".to_string()), "{found:?}");
}

#[test]
fn allow_with_unknown_rule_is_malformed() {
    let src = format!(
        "pub fn f() -> u32 {{\n    {}\n    7\n}}\n",
        allow("definitely-not-a-rule", "— typo'd rule name")
    );
    let found = hits("crates/core/src/x.rs", &src);
    assert!(found.contains(&"malformed-allow".to_string()), "{found:?}");
}

#[test]
fn stale_allow_with_nothing_to_suppress_is_reported() {
    let src = format!(
        "{}\npub fn f() -> u32 {{\n    7\n}}\n",
        allow("cast-audit", "— left behind after a refactor")
    );
    let found = hits("crates/core/src/x.rs", &src);
    assert_eq!(found, vec!["stale-allow".to_string()]);
}

#[test]
fn one_allow_can_cover_multiple_rules() {
    let src =
        format!(
        "pub fn f(end_tick: i64, n: usize) -> i64 {{\n    {}\n    end_tick + n as i32 as i64\n}}\n",
        allow("checked-time-arithmetic, cast-audit", "— both justified here")
    );
    assert!(hits("crates/core/src/x.rs", &src).is_empty());
}

// ------------------------------------------------------------------- reports

#[test]
fn findings_carry_file_line_and_snippet() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
    let findings = lint_source("crates/core/src/x.rs", src);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.file, "crates/core/src/x.rs");
    assert_eq!(f.line, 2);
    assert_eq!(f.snippet, "v.unwrap()");
    assert!(!f.message.is_empty());
}
