//! Meta-test: the committed tree must be lint-clean.
//!
//! Runs the actual `convoy-lint` binary (via `CARGO_BIN_EXE_*`, so it is the
//! exact artifact CI ships) over the workspace and asserts zero unjustified
//! findings. This is the enforcement point that keeps the repo honest
//! between CI runs: `cargo test` alone fails if anyone introduces a bare
//! tick subtraction, a panicking decode path, or a stale allow.

use std::path::Path;
use std::process::Command;

/// Walks up from this crate's manifest to the workspace root.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
}

#[test]
fn committed_tree_has_zero_unjustified_findings() {
    let out = Command::new(env!("CARGO_BIN_EXE_convoy-lint"))
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run convoy-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "convoy-lint found problems in the committed tree:\n{stdout}{stderr}"
    );
}

#[test]
fn json_report_on_committed_tree_is_clean_and_well_formed() {
    let out = Command::new(env!("CARGO_BIN_EXE_convoy-lint"))
        .arg("--json")
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run convoy-lint --json");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "nonzero exit:\n{stdout}");
    // Hand-rolled JSON, so check shape with string probes rather than a
    // parser dependency.
    assert!(stdout.contains("\"clean\": true"), "{stdout}");
    assert!(stdout.contains("\"findings\": []"), "{stdout}");
    let scanned: usize = stdout
        .split("\"files_scanned\": ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("files_scanned field present");
    assert!(
        scanned > 50,
        "expected the full workspace, got {scanned} files"
    );
}

#[test]
fn deny_flag_is_accepted() {
    let out = Command::new(env!("CARGO_BIN_EXE_convoy-lint"))
        .arg("--deny")
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run convoy-lint --deny");
    assert!(out.status.success());
}

#[test]
fn single_file_mode_reports_findings_with_nonzero_exit() {
    // FILE arguments are workspace-relative: build a synthetic root whose
    // layout activates the library-path rules.
    let root = std::env::temp_dir().join("convoy-lint-selftest");
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("temp workspace");
    std::fs::write(
        src_dir.join("fixture.rs"),
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    )
    .expect("write fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_convoy-lint"))
        .arg("--root")
        .arg(&root)
        .arg("crates/core/src/fixture.rs")
        .output()
        .expect("run convoy-lint FILE");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("no-unwrap-in-lib"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}
