//! `obs-validate` — CI helper that checks observability artifacts offline.
//!
//! ```text
//! obs-validate --schema SCHEMA.json FILE.json   # JSON Schema subset check
//! obs-validate --trace TRACE.json               # trace_event well-formedness
//! ```
//!
//! Exit code 0 when the artifact is valid; 1 with one violation per stderr
//! line otherwise; 2 for usage or I/O errors.

use convoy_obs::json;
use std::process::ExitCode;

const USAGE: &str = "usage: obs-validate --schema SCHEMA.json FILE.json | --trace TRACE.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("--schema") if args.len() == 3 => validate_schema(&args[1], &args[2]),
        Some("--trace") if args.len() == 2 => validate_trace(&args[1]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(Failure::Invalid(errors)) => {
            for e in errors {
                eprintln!("{e}");
            }
            ExitCode::FAILURE
        }
        Err(Failure::Io(message)) => {
            eprintln!("obs-validate: {message}");
            ExitCode::from(2)
        }
    }
}

enum Failure {
    Invalid(Vec<String>),
    Io(String),
}

fn load(path: &str) -> Result<json::Value, Failure> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::Io(format!("cannot read {path}: {e}")))?;
    json::parse(&text).map_err(|e| Failure::Invalid(vec![format!("{path}: {e}")]))
}

fn validate_schema(schema_path: &str, file_path: &str) -> Result<String, Failure> {
    let schema = load(schema_path)?;
    let value = load(file_path)?;
    json::validate(&schema, &value)
        .map_err(|errors| {
            Failure::Invalid(errors.iter().map(|e| format!("{file_path}: {e}")).collect())
        })
        .map(|()| format!("{file_path}: valid against {schema_path}"))
}

fn validate_trace(path: &str) -> Result<String, Failure> {
    let doc = load(path)?;
    json::validate_trace(&doc)
        .map_err(|errors| Failure::Invalid(errors.iter().map(|e| format!("{path}: {e}")).collect()))
        .map(|events| format!("{path}: well-formed trace_event JSON, {events} event(s)"))
}
