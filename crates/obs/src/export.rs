//! Exporters: human text table, JSON snapshot, and Chrome `trace_event`
//! span dump.
//!
//! All three are deterministic functions of their input (map iteration is
//! name-ordered, numbers are formatted without floats where exactness
//! matters), so equal snapshots render byte-equal output — the property the
//! CLI's resume-equivalence smoke test relies on.

use crate::registry::{MetricsSnapshot, SpanSnapshot};

/// Renders a snapshot as the human `--stats` table: a `stats:` header, then
/// one aligned `name value` line per counter and gauge and a summary line
/// per histogram, all in lexicographic name order.
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    let width = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .map(|k| k.len())
        .max()
        .unwrap_or(0);
    let mut out = String::from("stats:\n");
    for (name, value) in &snapshot.counters {
        out.push_str(&format!("  {name:width$}  {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        out.push_str(&format!("  {name:width$}  {value}\n"));
    }
    for (name, h) in &snapshot.histograms {
        out.push_str(&format!(
            "  {name:width$}  count {} min {} max {} mean {:.1}\n",
            h.count,
            h.min,
            h.max,
            h.mean()
        ));
    }
    out
}

/// Renders a snapshot as the versioned JSON document described by
/// `schemas/metrics-v1.schema.json`. Deterministic: keys are name-ordered
/// and all numbers are integers.
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"counters\": {");
    push_entries(&mut out, snapshot.counters.iter(), |out, v| {
        out.push_str(&v.to_string());
    });
    out.push_str("},\n  \"gauges\": {");
    push_entries(&mut out, snapshot.gauges.iter(), |out, v| {
        out.push_str(&v.to_string());
    });
    out.push_str("},\n  \"histograms\": {");
    push_entries(&mut out, snapshot.histograms.iter(), |out, h| {
        out.push_str(&format!(
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
            h.count, h.sum, h.min, h.max
        ));
        for (i, (bound, count)) in h.buckets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{bound}, {count}]"));
        }
        out.push_str("]}");
    });
    out.push_str("}\n}\n");
    out
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut render: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (name, value) in entries {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&json_string(name));
        out.push_str(": ");
        render(out, value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Renders spans in Chrome `trace_event` JSON (the object form with a
/// `traceEvents` array of complete `"X"` events), loadable in Perfetto and
/// `chrome://tracing`. Timestamps are microseconds with nanosecond
/// precision, relative to the registry epoch; span hierarchy is conveyed by
/// time containment per track (as the format defines it) and additionally
/// recorded in `args.id`/`args.parent`.
pub fn render_trace(spans: &[SpanSnapshot]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\": {}, \"cat\": \"convoy\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"id\": {}, \"parent\": {}}}}}",
            json_string(&span.name),
            span.tid,
            micros(span.start_ns),
            micros(span.dur_ns),
            span.id,
            span.parent
        ));
    }
    if !spans.is_empty() {
        out.push('\n');
    }
    out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Exact decimal microseconds from nanoseconds (no float rounding).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Escapes `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Registry, SpanId};

    #[test]
    fn text_table_is_sorted_and_aligned() {
        let r = Registry::new();
        r.counter_add("b.second", 2);
        r.counter_add("a.first", 1);
        r.gauge_set("z.gauge", -3);
        r.histogram_record("m.hist", 10);
        let text = render_text(&r.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "stats:");
        assert!(lines[1].starts_with("  a.first"));
        assert!(lines[2].starts_with("  b.second"));
        assert!(lines[3].starts_with("  z.gauge"));
        assert!(lines[4].contains("count 1 min 10 max 10 mean 10.0"));
    }

    #[test]
    fn empty_snapshot_renders_header_only() {
        assert_eq!(render_text(&MetricsSnapshot::default()), "stats:\n");
    }

    #[test]
    fn json_export_parses_and_round_trips_values() {
        let r = Registry::new();
        r.counter_add("c\"quoted", 7);
        r.gauge_set("g", -4);
        r.histogram_record("h", 3);
        let doc = render_json(&r.snapshot());
        let v = crate::json::parse(&doc).expect("exporter output parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("c\"quoted"))
                .and_then(|n| n.as_f64()),
            Some(7.0)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("g"))
                .and_then(|n| n.as_f64()),
            Some(-4.0)
        );
    }

    #[test]
    fn json_export_is_deterministic_across_registries() {
        let build = || {
            let r = Registry::new();
            r.counter_add("x", 1);
            r.histogram_record("h", 9);
            r.gauge_set("g", 2);
            render_json(&r.snapshot())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn trace_export_is_wellformed() {
        let r = Registry::new();
        let root = r.span_start("root", SpanId::NONE);
        r.span_at("child", root, 5, 10);
        r.span_end(root);
        let doc = render_trace(&r.spans());
        let v = crate::json::parse(&doc).expect("trace parses");
        assert!(crate::json::validate_trace(&v).is_ok());
    }

    #[test]
    fn micros_formats_exactly() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(1_234_567), "1234.567");
    }
}
