//! Fixed-bucket log-scale histogram math.
//!
//! Values are `u64`; bucket `0` holds exactly the value `0`, bucket `i ≥ 1`
//! holds the half-open power-of-two range `[2^(i-1), 2^i)`. With 64 one-bit
//! positions plus the zero bucket that is [`BUCKET_COUNT`] = 65 buckets —
//! enough to cover nanosecond latencies from 1 ns to ~584 years and counts
//! from 1 to `u64::MAX` with ≤ 2× relative resolution, in a fixed-size
//! array that never allocates on record.

/// Number of buckets: the zero bucket plus one per bit of `u64`.
pub const BUCKET_COUNT: usize = 65;

/// The bucket index for `value`: 0 for 0, else `64 - leading_zeros`, i.e.
/// one plus the position of the highest set bit.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Smallest value that lands in bucket `index` (0 for the zero bucket,
/// `2^(index-1)` otherwise). Saturates for out-of-range indexes.
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i <= 64 => 1u64 << (i - 1),
        _ => u64::MAX,
    }
}

/// Point-in-time view of one histogram: totals plus the non-empty buckets as
/// `(lower bound, count)` pairs in ascending bound order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets: `(bucket lower bound, observations in bucket)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference `self - earlier` for monotone histograms.
    /// `min`/`max` remain lifetime extremes (they are not reconstructible
    /// for the interval), which the exporters document.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for &(bound, count) in &self.buckets {
            let before = earlier
                .buckets
                .iter()
                .find(|(b, _)| *b == bound)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            let delta = count.saturating_sub(before);
            if delta > 0 {
                buckets.push((bound, delta));
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_its_own_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_lower_bound(0), 0);
    }

    #[test]
    fn powers_of_two_open_their_bucket() {
        for bit in 0..64u32 {
            let v = 1u64 << bit;
            let idx = bucket_index(v);
            assert_eq!(idx, bit as usize + 1);
            assert_eq!(bucket_lower_bound(idx), v);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [1u64, 2, 3, 4, 5, 7, 8, 9, 1023, 1024, 1025, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_lower_bound(idx) <= v);
            if idx < 64 {
                assert!(v < bucket_lower_bound(idx + 1));
            }
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }
}
