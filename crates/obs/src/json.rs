//! Minimal JSON parser and schema-subset validator.
//!
//! The build environment is offline, so the CI `observability` job cannot
//! pull a JSON Schema implementation; this module implements just enough —
//! a strict recursive-descent JSON parser and a validator for the schema
//! subset `schemas/metrics-v1.schema.json` uses (`type`, `required`,
//! `properties`, `additionalProperties`, `items`, `minItems`, `maxItems`,
//! `minimum`, `const`) — for the `obs-validate` binary and the exporter
//! tests. Parsing never panics; malformed input surfaces as [`ParseError`].

/// A parsed JSON value. Object members keep document order (duplicate keys
/// are rejected at parse time).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The JSON type name used in validation messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 64;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        let end = self.pos.saturating_add(literal.len());
        if self.bytes.get(self.pos..end) == Some(literal.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '{'
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Object(members));
            }
            return Err(self.err("expected ',' or '}' in object"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            return Err(self.err("expected ',' or ']' in array"));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at byte; the
                    // input is a &str so sequences are always valid.
                    let start = self.pos.saturating_sub(1);
                    let len = utf8_len(byte);
                    let end = start.saturating_add(len);
                    let Some(slice) = self.bytes.get(start..end) else {
                        return Err(self.err("truncated utf-8 sequence"));
                    };
                    let Ok(s) = std::str::from_utf8(slice) else {
                        return Err(self.err("invalid utf-8 sequence"));
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let unit = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // `\u` and a low surrogate.
        if (0xD800..=0xDBFF).contains(&unit) {
            if self.eat(b'\\') && self.eat(b'u') {
                let low = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let high_bits = (unit as u32).saturating_sub(0xD800);
                    let low_bits = (low as u32).saturating_sub(0xDC00);
                    let code = 0x10000 + (high_bits << 10) + low_bits;
                    return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(unit as u32).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut value: u16 = 0;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match byte {
                b'0'..=b'9' => byte - b'0',
                b'a'..=b'f' => byte - b'a' + 10,
                b'A'..=b'F' => byte - b'A' + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            value = (value << 4) | digit as u16;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        if self.eat(b'0') {
            // No leading zeros.
        } else if matches!(self.peek(), Some(b'1'..=b'9')) {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        } else {
            return Err(self.err("invalid number"));
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let Some(slice) = self.bytes.get(start..self.pos) else {
            return Err(self.err("invalid number"));
        };
        let Ok(text) = std::str::from_utf8(slice) else {
            return Err(self.err("invalid number"));
        };
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => Err(self.err("number out of range")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Validates `value` against `schema`, a document using the JSON Schema
/// subset listed in the module docs. Returns every violation as a
/// `path: message` string.
pub fn validate(schema: &Value, value: &Value) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    validate_at(schema, value, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_at(schema: &Value, value: &Value, path: &str, errors: &mut Vec<String>) {
    // "type": a single name or a list of alternatives.
    if let Some(expected) = schema.get("type") {
        let names: Vec<&str> = match expected {
            Value::String(s) => vec![s.as_str()],
            Value::Array(items) => items.iter().filter_map(|v| v.as_str()).collect(),
            _ => Vec::new(),
        };
        if !names.is_empty() && !names.iter().any(|n| type_matches(n, value)) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                names.join("|"),
                value.type_name()
            ));
            return;
        }
    }
    if let Some(expected) = schema.get("const") {
        if value != expected {
            errors.push(format!("{path}: value does not match const"));
        }
    }
    if let (Some(min), Value::Number(n)) = (schema.get("minimum").and_then(Value::as_f64), value) {
        if *n < min {
            errors.push(format!("{path}: {n} is below minimum {min}"));
        }
    }
    if let Value::Object(members) = value {
        if let Some(Value::Array(required)) = schema.get("required") {
            for key in required.iter().filter_map(|v| v.as_str()) {
                if value.get(key).is_none() {
                    errors.push(format!("{path}: missing required member \"{key}\""));
                }
            }
        }
        let properties = schema.get("properties");
        let additional = schema.get("additionalProperties");
        for (key, member) in members {
            let child_path = format!("{path}.{key}");
            if let Some(prop_schema) = properties.and_then(|p| p.get(key)) {
                validate_at(prop_schema, member, &child_path, errors);
            } else {
                match additional {
                    Some(Value::Bool(false)) => {
                        errors.push(format!("{path}: unexpected member \"{key}\""));
                    }
                    Some(schema @ Value::Object(_)) => {
                        validate_at(schema, member, &child_path, errors);
                    }
                    _ => {}
                }
            }
        }
    }
    if let Value::Array(items) = value {
        if let Some(min) = schema.get("minItems").and_then(Value::as_f64) {
            if (items.len() as f64) < min {
                errors.push(format!("{path}: fewer than {min} items"));
            }
        }
        if let Some(max) = schema.get("maxItems").and_then(Value::as_f64) {
            if (items.len() as f64) > max {
                errors.push(format!("{path}: more than {max} items"));
            }
        }
        if let Some(item_schema @ Value::Object(_)) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate_at(item_schema, item, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn type_matches(name: &str, value: &Value) -> bool {
    match name {
        "null" => matches!(value, Value::Null),
        "boolean" => matches!(value, Value::Bool(_)),
        "number" => matches!(value, Value::Number(_)),
        "integer" => matches!(value, Value::Number(n) if n.fract() == 0.0),
        "string" => matches!(value, Value::String(_)),
        "array" => matches!(value, Value::Array(_)),
        "object" => matches!(value, Value::Object(_)),
        _ => false,
    }
}

/// Structural well-formedness check for a Chrome `trace_event` document:
/// a top-level object with a `traceEvents` array whose members are complete
/// events — `name`/`ph` strings, numeric `ts`/`pid`/`tid`, and a
/// non-negative numeric `dur` on every `"X"` event. Returns the event count.
pub fn validate_trace(doc: &Value) -> Result<usize, Vec<String>> {
    let mut errors = Vec::new();
    let Some(events) = doc.get("traceEvents").and_then(|e| e.as_array()) else {
        return Err(vec!["$: missing \"traceEvents\" array".to_string()]);
    };
    for (i, event) in events.iter().enumerate() {
        let path = format!("$.traceEvents[{i}]");
        if !matches!(event, Value::Object(_)) {
            errors.push(format!("{path}: not an object"));
            continue;
        }
        if event.get("name").and_then(Value::as_str).is_none() {
            errors.push(format!("{path}: missing string \"name\""));
        }
        let ph = event.get("ph").and_then(Value::as_str);
        if ph.is_none() {
            errors.push(format!("{path}: missing string \"ph\""));
        }
        for field in ["ts", "pid", "tid"] {
            if event.get(field).and_then(Value::as_f64).is_none() {
                errors.push(format!("{path}: missing numeric \"{field}\""));
            }
        }
        if ph == Some("X") {
            match event.get("dur").and_then(Value::as_f64) {
                Some(dur) if dur >= 0.0 => {}
                _ => errors.push(format!("{path}: \"X\" event without non-negative \"dur\"")),
            }
        }
    }
    if errors.is_empty() {
        Ok(events.len())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(parse("-12.5e2"), Ok(Value::Number(-1250.0)));
        assert_eq!(parse("\"a\\nb\""), Ok(Value::String("a\nb".to_string())));
        let v = parse("{\"k\": [1, 2, {\"n\": null}]}").expect("parses");
        assert_eq!(
            v.get("k").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1 2",
            "\"\\q\"",
            "{\"a\":1,\"a\":2}",
            "nul",
            "\"\\ud800\"",
        ] {
            assert!(parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse("\"\\u0041\""), Ok(Value::String("A".to_string())));
        assert_eq!(
            parse("\"\\ud83d\\ude00\""),
            Ok(Value::String("\u{1F600}".to_string()))
        );
        assert_eq!(parse("\"héllo\""), Ok(Value::String("héllo".to_string())));
    }

    #[test]
    fn validator_enforces_the_supported_subset() {
        let schema = parse(
            "{\"type\": \"object\", \"required\": [\"version\"], \
              \"properties\": {\"version\": {\"const\": 1}, \
                               \"counts\": {\"type\": \"object\", \
                                \"additionalProperties\": {\"type\": \"integer\", \"minimum\": 0}}}, \
              \"additionalProperties\": false}",
        )
        .expect("schema parses");
        let good = parse("{\"version\": 1, \"counts\": {\"a\": 3}}").expect("parses");
        assert!(validate(&schema, &good).is_ok());

        let missing = parse("{\"counts\": {}}").expect("parses");
        let negative = parse("{\"version\": 1, \"counts\": {\"a\": -1}}").expect("parses");
        let fractional = parse("{\"version\": 1, \"counts\": {\"a\": 1.5}}").expect("parses");
        let extra = parse("{\"version\": 1, \"extra\": true}").expect("parses");
        for bad in [&missing, &negative, &fractional, &extra] {
            assert!(validate(&schema, bad).is_err());
        }
    }

    #[test]
    fn trace_validator_accepts_complete_events_only() {
        let good = parse(
            "{\"traceEvents\": [{\"name\": \"s\", \"ph\": \"X\", \"ts\": 0.5, \
              \"dur\": 1.0, \"pid\": 1, \"tid\": 0}]}",
        )
        .expect("parses");
        assert_eq!(validate_trace(&good), Ok(1));
        let bad = parse("{\"traceEvents\": [{\"name\": \"s\", \"ph\": \"X\", \"ts\": 0}]}")
            .expect("parses");
        assert!(validate_trace(&bad).is_err());
        let no_events = parse("{}").expect("parses");
        assert!(validate_trace(&no_events).is_err());
    }
}
