//! `convoy-obs` — the suite's observability core: monotonic counters,
//! gauges, fixed-bucket log-scale histograms and hierarchical timed spans
//! behind the [`Recorder`] trait.
//!
//! The design constraints come straight from the hot paths this crate
//! instruments (`SnapshotClusterer::cluster_into`, `CmcState::ingest_clusters`):
//!
//! * **Zero-cost when off.** The default [`NoopRecorder`] allocates nothing
//!   and every call through it is a single dynamic dispatch that inlines to
//!   a no-op; call sites batch their work behind one `enabled()` check so a
//!   disabled recorder costs at most one branch per instrumented region.
//!   This keeps the no-op safe inside `// lint: hot-path` regions and
//!   preserves the zero-allocation contract of PR 5 (enforced by the
//!   counting-allocator tests).
//! * **Deterministic when on.** The concrete [`Registry`] keeps every metric
//!   in ordered maps keyed by `&'static str`, so snapshots, diffs and the
//!   JSON export are byte-deterministic for a given sequence of operations.
//!   Steady-state updates of an already-registered metric perform no heap
//!   allocation (only the *first* touch of a name allocates a map node),
//!   which is what lets a *live* registry ride inside the allocation-free
//!   clustering loop.
//! * **Offline.** No dependencies; the JSON snapshot writer, the Chrome
//!   `trace_event` span dump and the schema validator used by CI are all
//!   hand-rolled here (see [`export`] and [`json`]).
//!
//! # Metric map (paper figures)
//!
//! The canonical metric names published by the suite reproduce the paper's
//! experimental axes (Jeung et al., PVLDB 2008):
//!
//! | metric | kind | paper figure |
//! |---|---|---|
//! | `discover.simplify_ns` / `filter_ns` / `refine_ns` | counter | Fig. 13 — stage time breakdown |
//! | `discover.candidates` | counter | Fig. 16 — candidate count vs λ/δ |
//! | `discover.refinement_units` | counter | Fig. 17 — refinement-unit cost |
//! | `discover.convoys` | counter | result cardinality |
//! | `cmc.ticks_ingested`, `cmc.clusters_per_tick` | counter / histogram | CMC fold progress (Alg. 1) |
//! | `cmc.peak_candidates`, `cmc.candidates_open` | gauge | candidate-set pressure |
//! | `stream.emission_delay_ticks` | histogram | per-result delay (ranked-enumeration lens) |
//! | `stream.time_to_first_convoy_ns` | histogram | streaming first-result latency |
//! | `scan.blocks_read` / `scan.blocks_pruned` | counter | container block-index pruning |
//! | `cluster.kernel_batches` / `cluster.kernel_lanes` | counter | batched-kernel utilisation (full `LANE_WIDTH` batches vs total candidate lanes scanned) |
//!
//! # Spans
//!
//! [`Recorder::span_start`]/[`Recorder::span_end`] produce hierarchical
//! wall-clock spans; [`Recorder::span_at`] records a pre-timed span, which
//! the sequential engines use to re-lay *accumulated* per-stage time
//! (sweep → cluster → fold interleave per tick, so their stage spans are
//! totals laid out sequentially, while the parallel and sharded engines emit
//! real per-partition / per-shard child spans). [`export::render_trace`]
//! dumps the tree in Chrome `trace_event` format, loadable in Perfetto or
//! `chrome://tracing`.

#![forbid(unsafe_code)]

pub mod export;
mod histogram;
pub mod json;
mod registry;

pub use histogram::{bucket_index, bucket_lower_bound, HistogramSnapshot, BUCKET_COUNT};
pub use registry::{MetricsSnapshot, Registry, SpanSnapshot};

use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifier of a recorded span. `SpanId::NONE` (0) means "no span": it is
/// both the root parent and the id the no-op recorder hands out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: parent of root spans, and the no-op recorder's answer.
    pub const NONE: SpanId = SpanId(0);

    /// True for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Sink for metrics and spans. Implementations must be cheap to call when
/// disabled: every method on the [`NoopRecorder`] is an empty inlineable
/// body, and instrumented hot paths batch multi-metric updates behind one
/// [`Recorder::enabled`] check.
///
/// All methods take `&self`; implementations are shared across threads
/// (parallel/sharded engine workers record into the same registry).
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Hot paths use this as their
    /// single branch; when it returns `false` they skip metric construction
    /// entirely.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Sets the gauge `name` to `value`.
    fn gauge_set(&self, name: &'static str, value: i64);

    /// Raises the gauge `name` to `value` if `value` is larger (high-water
    /// marks: peak candidates, peak buffered samples).
    fn gauge_max(&self, name: &'static str, value: i64);

    /// Records one observation into the log-scale histogram `name`.
    fn histogram_record(&self, name: &'static str, value: u64);

    /// Nanoseconds since this recorder's epoch (0 for the no-op). Used by
    /// call sites that accumulate stage time before emitting it as a span.
    fn now_ns(&self) -> u64;

    /// Opens a span under `parent` (or as a root for [`SpanId::NONE`]),
    /// timestamped now.
    fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId;

    /// Closes a span opened by [`Recorder::span_start`].
    fn span_end(&self, span: SpanId);

    /// Records a pre-timed span: `start_ns`..`start_ns + dur_ns` relative to
    /// this recorder's epoch. Used for accumulated per-stage totals that
    /// have no contiguous wall-clock extent.
    fn span_at(&self, name: &'static str, parent: SpanId, start_ns: u64, dur_ns: u64) -> SpanId;
}

/// The zero-cost default recorder: drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    #[inline]
    fn gauge_set(&self, _name: &'static str, _value: i64) {}
    #[inline]
    fn gauge_max(&self, _name: &'static str, _value: i64) {}
    #[inline]
    fn histogram_record(&self, _name: &'static str, _value: u64) {}
    #[inline]
    fn now_ns(&self) -> u64 {
        0
    }
    #[inline]
    fn span_start(&self, _name: &'static str, _parent: SpanId) -> SpanId {
        SpanId::NONE
    }
    #[inline]
    fn span_end(&self, _span: SpanId) {}
    #[inline]
    fn span_at(
        &self,
        _name: &'static str,
        _parent: SpanId,
        _start_ns: u64,
        _dur_ns: u64,
    ) -> SpanId {
        SpanId::NONE
    }
}

/// Shared, thread-safe handle to a recorder.
pub type RecorderHandle = Arc<dyn Recorder>;

fn noop_handle() -> RecorderHandle {
    static NOOP: OnceLock<RecorderHandle> = OnceLock::new();
    NOOP.get_or_init(|| Arc::new(NoopRecorder)).clone()
}

/// The handle instrumented structs embed: a cloneable, defaultable wrapper
/// over a [`RecorderHandle`] with forwarding methods. `Obs::default()` is the
/// no-op (cloning a cached `Arc` — no allocation), so adding an `Obs` field
/// to a struct changes none of its construction costs.
#[derive(Clone)]
pub struct Obs {
    recorder: RecorderHandle,
}

impl Obs {
    /// The disabled recorder (same as `Obs::default()`).
    pub fn noop() -> Self {
        Obs {
            recorder: noop_handle(),
        }
    }

    /// Wraps an arbitrary recorder.
    pub fn new(recorder: RecorderHandle) -> Self {
        Obs { recorder }
    }

    /// Wraps a shared [`Registry`].
    pub fn registry(registry: Arc<Registry>) -> Self {
        Obs { recorder: registry }
    }

    /// See [`Recorder::enabled`].
    #[inline]
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// See [`Recorder::counter_add`].
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.recorder.counter_add(name, delta);
    }

    /// See [`Recorder::gauge_set`].
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        self.recorder.gauge_set(name, value);
    }

    /// See [`Recorder::gauge_max`].
    #[inline]
    pub fn gauge_max(&self, name: &'static str, value: i64) {
        self.recorder.gauge_max(name, value);
    }

    /// See [`Recorder::histogram_record`].
    #[inline]
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        self.recorder.histogram_record(name, value);
    }

    /// See [`Recorder::now_ns`].
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.recorder.now_ns()
    }

    /// See [`Recorder::span_start`].
    #[inline]
    pub fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        self.recorder.span_start(name, parent)
    }

    /// See [`Recorder::span_end`].
    #[inline]
    pub fn span_end(&self, span: SpanId) {
        self.recorder.span_end(span);
    }

    /// See [`Recorder::span_at`].
    #[inline]
    pub fn span_at(
        &self,
        name: &'static str,
        parent: SpanId,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanId {
        self.recorder.span_at(name, parent, start_ns, dur_ns)
    }

    /// Opens a span closed automatically when the guard drops.
    pub fn span_guard(&self, name: &'static str, parent: SpanId) -> SpanGuard<'_> {
        SpanGuard {
            obs: self,
            id: self.span_start(name, parent),
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::noop()
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.enabled() {
            f.write_str("Obs(live)")
        } else {
            f.write_str("Obs(noop)")
        }
    }
}

/// RAII span: closes on drop. Obtain via [`Obs::span_guard`].
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    id: SpanId,
}

impl SpanGuard<'_> {
    /// The id of the guarded span, for use as a child's parent.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.obs.span_end(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_inert() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        assert_eq!(obs.now_ns(), 0);
        obs.counter_add("x", 1);
        obs.gauge_set("g", -3);
        obs.histogram_record("h", 42);
        let id = obs.span_start("root", SpanId::NONE);
        assert!(id.is_none());
        obs.span_end(id);
        assert!(obs.span_at("s", SpanId::NONE, 0, 10).is_none());
    }

    #[test]
    fn default_obs_is_noop_and_clones_share_recorder() {
        let obs = Obs::default();
        let copy = obs.clone();
        assert!(!copy.enabled());
        assert_eq!(format!("{obs:?}"), "Obs(noop)");
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let registry = Arc::new(Registry::new());
        let obs = Obs::registry(registry.clone());
        {
            let root = obs.span_guard("root", SpanId::NONE);
            let child = obs.span_guard("child", root.id());
            assert!(!child.id().is_none());
        }
        let spans = registry.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.closed));
    }
}
