//! The concrete [`Registry`] recorder: ordered in-memory metric storage with
//! deterministic snapshot/diff semantics.
//!
//! All state lives behind one `Mutex`; metric maps are `BTreeMap`s keyed by
//! `&'static str`, so iteration order — and therefore every export — is the
//! lexicographic name order regardless of registration order or thread
//! interleaving. Updating an already-registered metric allocates nothing
//! (the map node exists; histograms are fixed arrays), which keeps a live
//! registry legal inside the suite's allocation-free hot paths once warmed.

use crate::histogram::{bucket_index, bucket_lower_bound, HistogramSnapshot, BUCKET_COUNT};
use crate::{Recorder, SpanId};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

#[derive(Clone, Copy)]
struct HistogramCells {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }
}

impl HistogramCells {
    fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        let bucket = &mut self.buckets[bucket_index(value)];
        *bucket = bucket.saturating_add(1);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (bucket_lower_bound(i), *c))
                .collect(),
        }
    }
}

struct SpanCell {
    name: &'static str,
    parent: u64,
    tid: u32,
    start_ns: u64,
    dur_ns: u64,
    closed: bool,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, HistogramCells>,
    spans: Vec<SpanCell>,
    threads: Vec<ThreadId>,
}

impl Inner {
    /// Stable small integer for the calling thread (registration order).
    fn tid(&mut self, thread: ThreadId) -> u32 {
        let index = match self.threads.iter().position(|t| *t == thread) {
            Some(i) => i,
            None => {
                self.threads.push(thread);
                self.threads.len() - 1
            }
        };
        u32::try_from(index).unwrap_or(u32::MAX)
    }
}

/// The live recorder: collects counters, gauges, histograms and spans, and
/// produces deterministic [`MetricsSnapshot`]s. Share it as an
/// `Arc<Registry>` (it implements [`Recorder`], and [`crate::Obs::registry`]
/// wraps it).
pub struct Registry {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry whose span clock starts now.
    pub fn new() -> Registry {
        Registry {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            // A panic while holding the lock cannot leave the maps in a
            // broken state (every update is a single scalar write), so
            // poisoning is ignored rather than propagated into callers that
            // only wanted to bump a counter.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Overwrites the counter `name` with an absolute value. This is the
    /// import path for the typed stats views (`CmcStats`, `StreamStats`, …):
    /// after a run the authoritative struct values are stored over whatever
    /// was live-recorded, making view import idempotent.
    pub fn counter_store(&self, name: &'static str, value: u64) {
        self.lock().counters.insert(name, value);
    }

    /// Reads one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Deterministic point-in-time copy of all metrics (spans excluded; see
    /// [`Registry::spans`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }

    /// All spans recorded so far, in creation order. Spans still open at
    /// export time appear with `closed = false` and the duration they had
    /// accumulated when this was called.
    pub fn spans(&self) -> Vec<SpanSnapshot> {
        let now = self.now_ns();
        let inner = self.lock();
        inner
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| SpanSnapshot {
                id: i as u64 + 1,
                parent: s.parent,
                name: s.name.to_string(),
                tid: s.tid,
                start_ns: s.start_ns,
                dur_ns: if s.closed {
                    s.dur_ns
                } else {
                    now.saturating_sub(s.start_ns)
                },
                closed: s.closed,
            })
            .collect()
    }
}

impl Recorder for Registry {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.lock();
        let cell = inner.counters.entry(name).or_insert(0);
        *cell = cell.saturating_add(delta);
    }

    fn gauge_set(&self, name: &'static str, value: i64) {
        self.lock().gauges.insert(name, value);
    }

    fn gauge_max(&self, name: &'static str, value: i64) {
        let mut inner = self.lock();
        let cell = inner.gauges.entry(name).or_insert(value);
        *cell = (*cell).max(value);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.lock()
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        let start_ns = self.now_ns();
        let mut inner = self.lock();
        let tid = inner.tid(std::thread::current().id());
        inner.spans.push(SpanCell {
            name,
            parent: parent.0,
            tid,
            start_ns,
            dur_ns: 0,
            closed: false,
        });
        SpanId(inner.spans.len() as u64)
    }

    fn span_end(&self, span: SpanId) {
        if span.is_none() {
            return;
        }
        let end_ns = self.now_ns();
        let mut inner = self.lock();
        let index = (span.0 - 1) as usize;
        if let Some(cell) = inner.spans.get_mut(index) {
            if !cell.closed {
                cell.dur_ns = end_ns.saturating_sub(cell.start_ns);
                cell.closed = true;
            }
        }
    }

    fn span_at(&self, name: &'static str, parent: SpanId, start_ns: u64, dur_ns: u64) -> SpanId {
        let mut inner = self.lock();
        let tid = inner.tid(std::thread::current().id());
        inner.spans.push(SpanCell {
            name,
            parent: parent.0,
            tid,
            start_ns,
            dur_ns,
            closed: true,
        });
        SpanId(inner.spans.len() as u64)
    }
}

/// One exported span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// 1-based creation-order id.
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Small integer identifying the recording thread.
    pub tid: u32,
    /// Start, nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// False when the span was never ended.
    pub closed: bool,
}

/// Deterministic point-in-time copy of a registry's metrics. Equal operation
/// sequences produce equal snapshots (and byte-equal JSON exports),
/// regardless of thread scheduling between the operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Reads one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads one gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Reads one histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The change from `earlier` to `self`: counters and histogram
    /// counts/sums subtract (saturating — a reset registry diffs to zero,
    /// not to garbage); gauges keep their current value. Names absent from
    /// `self` are dropped.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    let before = earlier.counters.get(k).copied().unwrap_or(0);
                    (k.clone(), v.saturating_sub(before))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let diffed = match earlier.histograms.get(k) {
                        Some(before) => v.diff(before),
                        None => v.clone(),
                    };
                    (k.clone(), diffed)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", u64::MAX);
        r.counter_add("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), u64::MAX);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn counter_store_overwrites() {
        let r = Registry::new();
        r.counter_add("a", 7);
        r.counter_store("a", 3);
        assert_eq!(r.counter("a"), 3);
    }

    #[test]
    fn gauges_set_and_max() {
        let r = Registry::new();
        r.gauge_set("g", 5);
        r.gauge_set("g", -2);
        r.gauge_max("peak", 3);
        r.gauge_max("peak", 1);
        r.gauge_max("peak", 9);
        let s = r.snapshot();
        assert_eq!(s.gauge("g"), -2);
        assert_eq!(s.gauge("peak"), 9);
    }

    #[test]
    fn histogram_totals_and_buckets() {
        let r = Registry::new();
        for v in [0u64, 1, 1, 5, 1000] {
            r.histogram_record("h", v);
        }
        let s = r.snapshot();
        let h = s.histogram("h").expect("histogram recorded");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // 0 → bucket 0; 1,1 → [1,2); 5 → [4,8); 1000 → [512,1024).
        assert_eq!(h.buckets, vec![(0, 1), (1, 2), (4, 1), (512, 1)]);
    }

    #[test]
    fn span_tree_records_parents_and_closure() {
        let r = Registry::new();
        let root = r.span_start("root", SpanId::NONE);
        let child = r.span_start("child", root);
        r.span_end(child);
        r.span_at("synthetic", root, 10, 20);
        let spans = r.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].parent, 0);
        assert!(!spans[0].closed);
        assert_eq!(spans[1].parent, root.0);
        assert!(spans[1].closed);
        assert_eq!(spans[2].start_ns, 10);
        assert_eq!(spans[2].dur_ns, 20);
        r.span_end(root);
        assert!(r.spans()[0].closed);
    }

    #[test]
    fn double_end_keeps_first_duration() {
        let r = Registry::new();
        let s = r.span_start("s", SpanId::NONE);
        r.span_end(s);
        let first = r.spans()[0].dur_ns;
        r.span_end(s);
        assert_eq!(r.spans()[0].dur_ns, first);
    }

    #[test]
    fn diff_subtracts_counters_and_histograms() {
        let r = Registry::new();
        r.counter_add("c", 5);
        r.histogram_record("h", 3);
        let before = r.snapshot();
        r.counter_add("c", 2);
        r.histogram_record("h", 3);
        r.histogram_record("h", 100);
        r.gauge_set("g", 4);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("c"), 2);
        assert_eq!(d.gauge("g"), 4);
        let h = d.histogram("h").expect("histogram present");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 103);
        assert_eq!(h.buckets, vec![(2, 1), (64, 1)]);
    }
}
