//! Property tests for the observability core: histogram bucket boundaries,
//! snapshot/diff determinism, and exporter validity on arbitrary metric
//! sequences.

use convoy_obs::export::{render_json, render_trace};
use convoy_obs::{
    bucket_index, bucket_lower_bound, json, Recorder, Registry, SpanId, BUCKET_COUNT,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket whose bounds bracket it.
    #[test]
    fn bucket_brackets_value(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKET_COUNT);
        prop_assert!(bucket_lower_bound(idx) <= v);
        if idx + 1 < BUCKET_COUNT {
            prop_assert!(v < bucket_lower_bound(idx + 1));
        }
    }

    /// Bucket assignment is monotone in the value.
    #[test]
    fn bucket_index_is_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }
}

/// Bucket edges: the last value of bucket `i` and the first value of bucket
/// `i + 1` differ by exactly one and map to adjacent buckets.
#[test]
fn bucket_edges_are_exact() {
    for idx in 1..BUCKET_COUNT - 1 {
        let first = bucket_lower_bound(idx);
        let next = bucket_lower_bound(idx + 1);
        assert_eq!(bucket_index(first), idx);
        assert_eq!(bucket_index(next - 1), idx);
        assert_eq!(bucket_index(next), idx + 1);
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Counter(usize, u64),
    GaugeSet(usize, i64),
    GaugeMax(usize, i64),
    Histogram(usize, u64),
}

const NAMES: [&str; 4] = ["alpha", "beta.x", "gamma_ns", "delta"];

prop_compose! {
    fn arb_op()(kind in 0u8..4, name in 0usize..4, v in 0u64..u64::MAX, g in -1000i64..1000) -> Op {
        match kind {
            0 => Op::Counter(name, v % 1000),
            1 => Op::GaugeSet(name, g),
            2 => Op::GaugeMax(name, g),
            // Cap below 2^48 so u64 sums cannot saturate across a run
            // (saturation breaks diff additivity by design).
            _ => Op::Histogram(name, v % (1u64 << 48)),
        }
    }
}

fn apply(r: &Registry, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Counter(n, v) => r.counter_add(NAMES[n], v),
            Op::GaugeSet(n, v) => r.gauge_set(NAMES[n], v),
            Op::GaugeMax(n, v) => r.gauge_max(NAMES[n], v),
            Op::Histogram(n, v) => r.histogram_record(NAMES[n], v),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equal operation sequences on independent registries produce equal
    /// snapshots and byte-equal JSON exports.
    #[test]
    fn snapshots_are_deterministic(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let a = Registry::new();
        let b = Registry::new();
        apply(&a, &ops);
        apply(&b, &ops);
        prop_assert_eq!(a.snapshot(), b.snapshot());
        prop_assert_eq!(render_json(&a.snapshot()), render_json(&b.snapshot()));
    }

    /// diff(after, before) applied over a common prefix isolates the suffix:
    /// counter and histogram totals of the diff equal a fresh registry that
    /// saw only the suffix.
    #[test]
    fn diff_isolates_the_suffix(
        prefix in proptest::collection::vec(arb_op(), 0..32),
        suffix in proptest::collection::vec(arb_op(), 0..32),
    ) {
        let full = Registry::new();
        apply(&full, &prefix);
        let before = full.snapshot();
        apply(&full, &suffix);
        let diff = full.snapshot().diff(&before);

        let fresh = Registry::new();
        apply(&fresh, &suffix);
        let only_suffix = fresh.snapshot();

        for (name, value) in &only_suffix.counters {
            prop_assert_eq!(diff.counter(name), *value);
        }
        for (name, h) in &only_suffix.histograms {
            let d = diff.histogram(name).expect("diffed histogram present");
            prop_assert_eq!(d.count, h.count);
            prop_assert_eq!(d.sum, h.sum);
            prop_assert_eq!(&d.buckets, &h.buckets);
        }
    }

    /// The JSON exporter's output always parses and validates against the
    /// checked-in metrics schema.
    #[test]
    fn json_export_is_schema_valid(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let r = Registry::new();
        apply(&r, &ops);
        let doc = render_json(&r.snapshot());
        let value = json::parse(&doc).expect("export parses");
        let schema_text = std::fs::read_to_string(
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas/metrics-v1.schema.json"),
        )
        .expect("schema file readable");
        let schema = json::parse(&schema_text).expect("schema parses");
        if let Err(errors) = json::validate(&schema, &value) {
            prop_assert!(false, "schema violations: {errors:?}");
        }
    }
}

/// Span trees survive the trace exporter and its validator, including
/// mixtures of live, synthetic and unclosed spans across threads.
#[test]
fn trace_export_of_a_worker_span_tree_validates() {
    let r = std::sync::Arc::new(Registry::new());
    let root = r.span_start("root", SpanId::NONE);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let r = r.clone();
            scope.spawn(move || {
                let s = r.span_start("worker", root);
                r.histogram_record("work_ns", 12);
                r.span_end(s);
            });
        }
    });
    r.span_at("synthetic", root, 1, 2);
    // Root intentionally left open: the exporter must still emit a
    // well-formed complete event for it.
    let doc = render_trace(&r.spans());
    let value = json::parse(&doc).expect("trace parses");
    assert_eq!(json::validate_trace(&value), Ok(6));
}
