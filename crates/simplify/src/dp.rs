//! The classic Douglas–Peucker simplifier (DP).

use crate::traits::Simplifier;
use trajectory::geometry::Segment;
use trajectory::Trajectory;

/// The classic Douglas–Peucker algorithm (Section 2.2 / 5.1 of the paper).
///
/// Given a polyline `⟨p_1, …, p_T⟩` and tolerance δ, DP approximates the
/// polyline by the segment `p_1 p_T`, finds the intermediate sample farthest
/// from the segment, and — if that distance exceeds δ — splits the polyline at
/// that sample and recurses on both halves.
///
/// Distances are measured with `DPL` (point-to-*segment* distance) rather
/// than the point-to-infinite-line distance. `DPL` is never smaller than the
/// perpendicular distance, so the resulting simplification error is still
/// bounded by δ, and the actual tolerances recorded per segment are exactly
/// the quantities the filter-step lemmas need. It also behaves sanely for
/// self-intersecting trajectories, which the paper explicitly allows.
#[derive(Debug, Clone, Copy, Default)]
pub struct DouglasPeucker;

impl DouglasPeucker {
    /// Iterative (explicit-stack) DP on the index range `[first, last]`,
    /// pushing kept indices into `kept`.
    fn simplify_range(trajectory: &Trajectory, delta: f64, kept: &mut Vec<usize>) {
        let points = trajectory.points();
        let n = points.len();
        kept.push(0);
        if n == 1 {
            return;
        }
        kept.push(n - 1);
        // Work stack of (first, last) index pairs still to examine.
        let mut stack = vec![(0usize, n - 1)];
        while let Some((first, last)) = stack.pop() {
            if last <= first + 1 {
                continue;
            }
            let seg = Segment::new(points[first].position(), points[last].position());
            let mut max_dist = -1.0f64;
            let mut max_idx = first;
            for (i, p) in points.iter().enumerate().take(last).skip(first + 1) {
                let d = seg.distance_to_point(&p.position());
                if d > max_dist {
                    max_dist = d;
                    max_idx = i;
                }
            }
            if max_dist > delta {
                kept.push(max_idx);
                stack.push((first, max_idx));
                stack.push((max_idx, last));
            }
        }
    }
}

impl Simplifier for DouglasPeucker {
    fn name(&self) -> &'static str {
        "DP"
    }

    fn kept_indices(&self, trajectory: &Trajectory, delta: f64) -> Vec<usize> {
        let mut kept = Vec::new();
        Self::simplify_range(trajectory, delta, &mut kept);
        kept.sort_unstable();
        kept.dedup();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use trajectory::TrajPoint;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    #[test]
    fn collinear_points_collapse_to_endpoints() {
        let t = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 1), (2.0, 0.0, 2), (3.0, 0.0, 3)]);
        let s = DouglasPeucker.simplify(&t, 0.1);
        assert_eq!(s.num_points(), 2);
        assert_eq!(s.points()[0].t, 0);
        assert_eq!(s.points()[1].t, 3);
        assert_eq!(s.max_actual_tolerance(), 0.0);
    }

    #[test]
    fn detour_above_tolerance_is_kept() {
        let t = traj(&[(0.0, 0.0, 0), (1.0, 3.0, 1), (2.0, 0.0, 2)]);
        let s = DouglasPeucker.simplify(&t, 1.0);
        assert_eq!(s.num_points(), 3, "the spike exceeds δ and must survive");
        let s_loose = DouglasPeucker.simplify(&t, 5.0);
        assert_eq!(s_loose.num_points(), 2, "a loose δ removes the spike");
        assert!(s_loose.max_actual_tolerance() <= 5.0);
        assert!((s_loose.max_actual_tolerance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zigzag_partial_simplification() {
        // Alternating bumps of heights 2 and 0.4: with δ=1 only the tall bumps
        // must survive.
        let t = traj(&[
            (0.0, 0.0, 0),
            (1.0, 2.0, 1),
            (2.0, 0.0, 2),
            (3.0, 0.4, 3),
            (4.0, 0.0, 4),
            (5.0, 2.0, 5),
            (6.0, 0.0, 6),
        ]);
        let s = DouglasPeucker.simplify(&t, 1.0);
        let kept_times: Vec<i64> = s.points().iter().map(|p| p.t).collect();
        assert!(kept_times.contains(&1));
        assert!(kept_times.contains(&5));
        assert!(!kept_times.contains(&3));
        assert!(s.max_actual_tolerance() <= 1.0);
    }

    #[test]
    fn figure3a_behaviour_drops_temporal_outlier() {
        // Figure 3(a): p2 is spatially close to the segment p1–p3 even though
        // its *time-synchronised* deviation is large. Classic DP drops it.
        let t = traj(&[(0.0, 0.0, 1), (0.5, 0.1, 2), (10.0, 0.0, 3)]);
        let s = DouglasPeucker.simplify(&t, 0.5);
        assert_eq!(s.num_points(), 2);
    }

    #[test]
    fn single_and_two_point_trajectories() {
        let t1 = traj(&[(5.0, 5.0, 0)]);
        let s1 = DouglasPeucker.simplify(&t1, 1.0);
        assert_eq!(s1.num_points(), 1);
        assert!(s1.segments().is_empty());

        let t2 = traj(&[(0.0, 0.0, 0), (4.0, 4.0, 9)]);
        let s2 = DouglasPeucker.simplify(&t2, 1.0);
        assert_eq!(s2.num_points(), 2);
        assert_eq!(s2.segments().len(), 1);
        assert_eq!(s2.segments()[0].actual_tolerance, 0.0);
    }

    #[test]
    fn zero_tolerance_keeps_every_non_collinear_point() {
        let t = traj(&[(0.0, 0.0, 0), (1.0, 0.5, 1), (2.0, -0.5, 2), (3.0, 0.0, 3)]);
        let s = DouglasPeucker.simplify(&t, 0.0);
        assert_eq!(s.num_points(), 4);
    }

    #[test]
    fn self_intersecting_trajectory_is_handled() {
        // A loop: the trajectory crosses itself; DP must not panic and the
        // error bound must hold.
        let t = traj(&[
            (0.0, 0.0, 0),
            (4.0, 0.0, 1),
            (4.0, 4.0, 2),
            (2.0, -2.0, 3),
            (0.0, 4.0, 4),
        ]);
        let s = DouglasPeucker.simplify(&t, 1.0);
        assert!(s.max_actual_tolerance() <= 1.0);
        assert!(s.num_points() >= 2);
    }

    #[test]
    fn actual_tolerance_equals_max_removed_deviation() {
        // One spike of height 2 over the chord (0,0)–(2,0). With δ=2.5 the
        // spike is removed and the recorded actual tolerance (Definition 4)
        // must be exactly its deviation, 2.0 — not the global δ.
        let t = traj(&[(0.0, 0.0, 0), (1.0, 2.0, 1), (2.0, 0.0, 2)]);
        let s = DouglasPeucker.simplify(&t, 2.5);
        assert_eq!(s.num_points(), 2);
        assert!((s.max_actual_tolerance() - 2.0).abs() < 1e-12);
        // Just under the spike height, the point must survive instead.
        let s_tight = DouglasPeucker.simplify(&t, 1.9);
        assert_eq!(s_tight.num_points(), 3);
        assert_eq!(s_tight.max_actual_tolerance(), 0.0);
    }

    prop_compose! {
        fn arb_traj()(len in 2usize..60)
            (xs in proptest::collection::vec(-100.0f64..100.0, len),
             ys in proptest::collection::vec(-100.0f64..100.0, len))
            -> Trajectory {
            let pts: Vec<TrajPoint> = xs
                .into_iter()
                .zip(ys)
                .enumerate()
                .map(|(i, (x, y))| TrajPoint::new(x, y, i as i64 * 3))
                .collect();
            Trajectory::from_points(pts).unwrap()
        }
    }

    proptest! {
        #[test]
        fn dp_error_never_exceeds_delta(t in arb_traj(), delta in 0.1f64..50.0) {
            let s = DouglasPeucker.simplify(&t, delta);
            // Definition 4 / correctness of DP: every original sample is
            // within δ of the segment that replaced it.
            prop_assert!(s.max_actual_tolerance() <= delta + 1e-9);
            // Actual tolerance of each segment never exceeds the global δ.
            for seg in s.segments() {
                prop_assert!(seg.actual_tolerance <= delta + 1e-9);
            }
        }

        #[test]
        fn dp_keeps_endpoints_and_is_subset(t in arb_traj(), delta in 0.0f64..50.0) {
            let kept = DouglasPeucker.kept_indices(&t, delta);
            prop_assert_eq!(*kept.first().unwrap(), 0);
            prop_assert_eq!(*kept.last().unwrap(), t.len() - 1);
            prop_assert!(kept.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(kept.len() <= t.len());
        }

        #[test]
        fn dp_is_monotone_in_delta(t in arb_traj(), d1 in 0.1f64..10.0, factor in 1.0f64..10.0) {
            // A larger tolerance can only keep fewer or equally many points.
            let small = DouglasPeucker.simplify(&t, d1);
            let large = DouglasPeucker.simplify(&t, d1 * factor);
            prop_assert!(large.num_points() <= small.num_points());
        }
    }
}
