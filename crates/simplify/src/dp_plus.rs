//! The midpoint-biased DP+ simplifier (Section 6.1 of the paper).

use crate::traits::Simplifier;
use trajectory::geometry::Segment;
use trajectory::Trajectory;

/// The DP+ variant of Douglas–Peucker (Section 6.1).
///
/// Where classic DP splits at the sample with the *largest* deviation, DP+
/// splits at the sample **closest to the middle index** among the samples
/// whose deviation exceeds δ. Splitting near the middle balances the
/// divide-and-conquer recursion, which makes the simplification itself
/// faster. As a welcome side effect the split sample's own deviation is
/// typically smaller than DP's, so the recorded actual tolerances — and hence
/// the filter-step search ranges — are tighter (the paper's δ₄ < δ₆ example in
/// Figure 10).
///
/// DP+ generally keeps more samples than DP for the same δ (lower reduction
/// power), a trade-off the paper evaluates in Figure 15.
#[derive(Debug, Clone, Copy, Default)]
pub struct DouglasPeuckerPlus;

impl DouglasPeuckerPlus {
    fn simplify_range(trajectory: &Trajectory, delta: f64, kept: &mut Vec<usize>) {
        let points = trajectory.points();
        let n = points.len();
        kept.push(0);
        if n == 1 {
            return;
        }
        kept.push(n - 1);
        let mut stack = vec![(0usize, n - 1)];
        while let Some((first, last)) = stack.pop() {
            if last <= first + 1 {
                continue;
            }
            let seg = Segment::new(points[first].position(), points[last].position());
            // Among the intermediate samples exceeding δ, pick the one whose
            // index is closest to the middle of the range.
            let middle = (first + last) / 2;
            let mut best: Option<(usize, usize)> = None; // (distance to middle index, index)
            for (i, p) in points.iter().enumerate().take(last).skip(first + 1) {
                let d = seg.distance_to_point(&p.position());
                if d > delta {
                    let dist_to_mid = i.abs_diff(middle);
                    match best {
                        Some((best_dist, _)) if dist_to_mid >= best_dist => {}
                        _ => best = Some((dist_to_mid, i)),
                    }
                }
            }
            if let Some((_, split)) = best {
                kept.push(split);
                stack.push((first, split));
                stack.push((split, last));
            }
        }
    }
}

impl Simplifier for DouglasPeuckerPlus {
    fn name(&self) -> &'static str {
        "DP+"
    }

    fn kept_indices(&self, trajectory: &Trajectory, delta: f64) -> Vec<usize> {
        let mut kept = Vec::new();
        Self::simplify_range(trajectory, delta, &mut kept);
        kept.sort_unstable();
        kept.dedup();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DouglasPeucker;
    use proptest::prelude::*;
    use trajectory::TrajPoint;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    #[test]
    fn straight_line_collapses() {
        let t = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 1), (2.0, 0.0, 2), (3.0, 0.0, 3)]);
        let s = DouglasPeuckerPlus.simplify(&t, 0.5);
        assert_eq!(s.num_points(), 2);
    }

    #[test]
    fn figure10_splits_at_point_nearest_middle() {
        // Figure 10: seven samples p1..p7; p4 and p6 both exceed δ, but p4 is
        // closer to the middle, so DP+ splits at p4 (index 3) while DP splits
        // at the farthest point p6 (index 5).
        let t = traj(&[
            (0.0, 0.0, 0), // p1
            (1.0, 0.2, 1), // p2
            (2.0, 0.1, 2), // p3
            (3.0, 1.5, 3), // p4 — exceeds δ, closest to middle
            (4.0, 0.0, 4), // p5
            (5.0, 2.5, 5), // p6 — exceeds δ, farthest
            (6.0, 0.0, 6), // p7
        ]);
        let delta = 1.0;
        let dp_plus_kept = DouglasPeuckerPlus.kept_indices(&t, delta);
        let dp_kept = DouglasPeucker.kept_indices(&t, delta);
        // DP's first split is the globally farthest point (index 5); DP+'s is
        // index 3. Both must contain the endpoints.
        assert!(dp_plus_kept.contains(&3));
        assert!(dp_kept.contains(&5));
        // DP+ keeps at least as many points (lower reduction power).
        assert!(dp_plus_kept.len() >= dp_kept.len());
    }

    #[test]
    fn no_point_exceeding_delta_means_endpoints_only() {
        let t = traj(&[(0.0, 0.0, 0), (1.0, 0.3, 1), (2.0, -0.2, 2), (3.0, 0.0, 3)]);
        let s = DouglasPeuckerPlus.simplify(&t, 0.5);
        assert_eq!(s.num_points(), 2);
    }

    #[test]
    fn single_point_trajectory() {
        let t = traj(&[(1.0, 1.0, 0)]);
        assert_eq!(DouglasPeuckerPlus.simplify(&t, 1.0).num_points(), 1);
    }

    #[test]
    fn single_offender_gives_same_split_as_dp() {
        // Only index 2 exceeds δ=1 over the chord (0,0)–(4,0): DP+ and DP must
        // both keep exactly {0, 2, 4}, and the remaining deviations (0.2) set
        // the actual tolerance.
        let t = traj(&[
            (0.0, 0.0, 0),
            (1.0, 0.2, 1),
            (2.0, 3.0, 2),
            (3.0, 0.2, 3),
            (4.0, 0.0, 4),
        ]);
        assert_eq!(DouglasPeuckerPlus.kept_indices(&t, 1.0), vec![0, 2, 4]);
        assert_eq!(
            DouglasPeuckerPlus.kept_indices(&t, 1.0),
            DouglasPeucker.kept_indices(&t, 1.0)
        );
        let s = DouglasPeuckerPlus.simplify(&t, 1.0);
        assert!(s.max_actual_tolerance() <= 1.0);
        assert!(s.max_actual_tolerance() > 0.0, "0.2-deviations remain");
    }

    prop_compose! {
        fn arb_traj()(len in 2usize..60)
            (xs in proptest::collection::vec(-100.0f64..100.0, len),
             ys in proptest::collection::vec(-100.0f64..100.0, len))
            -> Trajectory {
            let pts: Vec<TrajPoint> = xs
                .into_iter()
                .zip(ys)
                .enumerate()
                .map(|(i, (x, y))| TrajPoint::new(x, y, i as i64 * 2 + 1))
                .collect();
            Trajectory::from_points(pts).unwrap()
        }
    }

    proptest! {
        #[test]
        fn dp_plus_error_never_exceeds_delta(t in arb_traj(), delta in 0.1f64..50.0) {
            let s = DouglasPeuckerPlus.simplify(&t, delta);
            prop_assert!(s.max_actual_tolerance() <= delta + 1e-9);
        }

        #[test]
        fn dp_plus_keeps_endpoints(t in arb_traj(), delta in 0.0f64..50.0) {
            let kept = DouglasPeuckerPlus.kept_indices(&t, delta);
            prop_assert_eq!(*kept.first().unwrap(), 0);
            prop_assert_eq!(*kept.last().unwrap(), t.len() - 1);
        }

        #[test]
        fn dp_plus_split_deviation_never_exceeds_dp_split(t in arb_traj(), delta in 0.1f64..20.0) {
            // Section 6.1: at the *first* division step, the deviation of the
            // sample DP+ splits at can never exceed the deviation of the
            // sample DP splits at — DP picks the maximum by definition. This
            // is the mechanism that tightens DP+'s actual tolerances.
            let points = t.points();
            if points.len() > 2 {
                let seg = trajectory::geometry::Segment::new(
                    points[0].position(),
                    points[points.len() - 1].position(),
                );
                let deviations: Vec<f64> = points[1..points.len() - 1]
                    .iter()
                    .map(|p| seg.distance_to_point(&p.position()))
                    .collect();
                let dp_split = deviations.iter().cloned().fold(0.0f64, f64::max);
                let middle = (points.len() - 1) / 2;
                let dp_plus_split = deviations
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| **d > delta)
                    .min_by_key(|(i, _)| (i + 1).abs_diff(middle))
                    .map(|(_, d)| *d);
                if let Some(plus_dev) = dp_plus_split {
                    prop_assert!(plus_dev <= dp_split + 1e-9);
                }
            }
        }
    }
}
