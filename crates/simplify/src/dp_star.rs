//! The temporal DP* simplifier (Meratnia & de By), Section 2.2 / 6.2.

use crate::traits::Simplifier;
use trajectory::geometry::Point;
use trajectory::{TrajPoint, Trajectory};

/// The temporal Douglas–Peucker variant **DP\*** (after Meratnia & de By,
/// called DP* throughout the paper).
///
/// Instead of the spatial distance from a sample to the approximation
/// segment, DP* measures the **time-synchronised** distance: the sample
/// `p_i = (x_i, y_i, t_i)` is compared with the position `p'_i` obtained by
/// interpolating the approximation segment at the *time ratio* of `t_i`
/// between the segment's endpoints (Figure 3(b) of the paper). A sample is
/// removable only when this synchronised deviation is within δ.
///
/// DP* keeps more samples than DP for the same δ (lower reduction), but the
/// synchronised guarantee is what allows CuTS* to use the tighter `D*`
/// segment distance in its filter step.
#[derive(Debug, Clone, Copy, Default)]
pub struct DouglasPeuckerStar;

impl DouglasPeuckerStar {
    /// The time-ratio position on the segment `a→b` at time `t` (Section 6.2).
    fn time_ratio_position(a: &TrajPoint, b: &TrajPoint, t: i64) -> Point {
        if b.t == a.t {
            return a.position();
        }
        let ratio = (t - a.t) as f64 / (b.t - a.t) as f64;
        a.position().lerp(&b.position(), ratio)
    }

    /// Synchronised deviation of sample `p` from the approximation segment
    /// `a→b`: `D(p, p′)` where `p′` is the time-ratio position at `p.t`.
    pub fn synchronised_deviation(a: &TrajPoint, b: &TrajPoint, p: &TrajPoint) -> f64 {
        Self::time_ratio_position(a, b, p.t).distance(&p.position())
    }

    fn simplify_range(trajectory: &Trajectory, delta: f64, kept: &mut Vec<usize>) {
        let points = trajectory.points();
        let n = points.len();
        kept.push(0);
        if n == 1 {
            return;
        }
        kept.push(n - 1);
        let mut stack = vec![(0usize, n - 1)];
        while let Some((first, last)) = stack.pop() {
            if last <= first + 1 {
                continue;
            }
            let a = &points[first];
            let b = &points[last];
            let mut max_dev = -1.0f64;
            let mut max_idx = first;
            for (i, p) in points.iter().enumerate().take(last).skip(first + 1) {
                let d = Self::synchronised_deviation(a, b, p);
                if d > max_dev {
                    max_dev = d;
                    max_idx = i;
                }
            }
            if max_dev > delta {
                kept.push(max_idx);
                stack.push((first, max_idx));
                stack.push((max_idx, last));
            }
        }
    }
}

impl Simplifier for DouglasPeuckerStar {
    fn name(&self) -> &'static str {
        "DP*"
    }

    fn tolerance_metric(&self) -> crate::simplified::ToleranceMetric {
        crate::simplified::ToleranceMetric::Synchronised
    }

    fn kept_indices(&self, trajectory: &Trajectory, delta: f64) -> Vec<usize> {
        let mut kept = Vec::new();
        Self::simplify_range(trajectory, delta, &mut kept);
        kept.sort_unstable();
        kept.dedup();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DouglasPeucker;
    use crate::simplified::SimplifiedTrajectory;
    use proptest::prelude::*;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    /// The synchronised error of a simplification: for every original sample,
    /// the distance to the time-ratio position of the simplified trajectory
    /// at that sample's timestamp.
    fn max_synchronised_error(original: &Trajectory, simplified: &SimplifiedTrajectory) -> f64 {
        original
            .points()
            .iter()
            .map(|p| {
                simplified
                    .location_at(p.t)
                    .map(|q| q.distance(&p.position()))
                    .unwrap_or(0.0)
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn figure3b_keeps_temporal_outlier_that_dp_drops() {
        // Figure 3: p2 lies spatially near the segment p1–p3 but at its own
        // timestamp the object should already be most of the way along the
        // segment, so the synchronised deviation is large. DP drops p2, DP*
        // keeps it.
        let t = traj(&[(0.0, 0.0, 1), (1.0, 0.2, 2), (10.0, 0.0, 3)]);
        let delta = 1.0;
        let dp = DouglasPeucker.simplify(&t, delta);
        let dp_star = DouglasPeuckerStar.simplify(&t, delta);
        assert_eq!(dp.num_points(), 2, "DP judges p2 redundant spatially");
        assert_eq!(
            dp_star.num_points(),
            3,
            "DP* must keep the temporal outlier"
        );
    }

    #[test]
    fn straight_constant_speed_motion_collapses() {
        // Constant velocity along a line: the synchronised positions coincide
        // with the samples, so everything but the endpoints is removable.
        let t = traj(&[(0.0, 0.0, 0), (1.0, 1.0, 1), (2.0, 2.0, 2), (3.0, 3.0, 3)]);
        let s = DouglasPeuckerStar.simplify(&t, 0.01);
        assert_eq!(s.num_points(), 2);
    }

    #[test]
    fn straight_variable_speed_motion_is_kept() {
        // Same path as above but the object lingers: spatially collinear yet
        // the time-ratio positions diverge, so DP* keeps intermediate samples.
        let t = traj(&[(0.0, 0.0, 0), (0.2, 0.2, 1), (0.4, 0.4, 2), (3.0, 3.0, 3)]);
        let s_star = DouglasPeuckerStar.simplify(&t, 0.5);
        let s_dp = DouglasPeucker.simplify(&t, 0.5);
        assert!(s_star.num_points() > 2);
        assert_eq!(s_dp.num_points(), 2);
    }

    #[test]
    fn synchronised_deviation_formula() {
        let a = TrajPoint::new(0.0, 0.0, 0);
        let b = TrajPoint::new(10.0, 0.0, 10);
        // At t=5 the reference position is (5, 0); a sample at (5, 3) deviates by 3.
        let p = TrajPoint::new(5.0, 3.0, 5);
        assert!((DouglasPeuckerStar::synchronised_deviation(&a, &b, &p) - 3.0).abs() < 1e-12);
        // A sample early in time but far along the path deviates by its x offset.
        let q = TrajPoint::new(9.0, 0.0, 1);
        assert!((DouglasPeuckerStar::synchronised_deviation(&a, &b, &q) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_threshold_is_the_synchronised_deviation() {
        // Collinear motion with a speed change: (0,0)→(4,0) in 2 ticks, then
        // (4,0)→(10,0) in 2 ticks. The time-ratio position of the middle
        // sample on the chord is (5, 0), so its synchronised deviation is
        // exactly 1.0: δ just below keeps it, δ just above removes it, and
        // the removed segment records 1.0 as its (synchronised) tolerance.
        let t = traj(&[(0.0, 0.0, 0), (4.0, 0.0, 2), (10.0, 0.0, 4)]);
        let kept = DouglasPeuckerStar.simplify(&t, 0.99);
        assert_eq!(kept.num_points(), 3);
        let dropped = DouglasPeuckerStar.simplify(&t, 1.01);
        assert_eq!(dropped.num_points(), 2);
        assert!((dropped.max_actual_tolerance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_trajectory() {
        let t = traj(&[(1.0, 1.0, 0)]);
        assert_eq!(DouglasPeuckerStar.simplify(&t, 1.0).num_points(), 1);
    }

    prop_compose! {
        fn arb_traj()(len in 2usize..50)
            (xs in proptest::collection::vec(-100.0f64..100.0, len),
             ys in proptest::collection::vec(-100.0f64..100.0, len),
             gaps in proptest::collection::vec(1i64..5, len))
            -> Trajectory {
            let mut t = 0i64;
            let mut pts = Vec::with_capacity(xs.len());
            for ((x, y), g) in xs.into_iter().zip(ys).zip(gaps) {
                pts.push(TrajPoint::new(x, y, t));
                t += g;
            }
            Trajectory::from_points(pts).unwrap()
        }
    }

    proptest! {
        #[test]
        fn dp_star_synchronised_error_never_exceeds_delta(t in arb_traj(), delta in 0.1f64..50.0) {
            // The defining guarantee of DP*: at every original timestamp the
            // time-ratio position of the simplified trajectory is within δ of
            // the original sample.
            let s = DouglasPeuckerStar.simplify(&t, delta);
            prop_assert!(max_synchronised_error(&t, &s) <= delta + 1e-9);
        }

        #[test]
        fn dp_star_spatial_tolerance_also_bounded(t in arb_traj(), delta in 0.1f64..50.0) {
            // The synchronised deviation upper-bounds the spatial DPL
            // deviation, so the recorded actual tolerances are also within δ.
            let s = DouglasPeuckerStar.simplify(&t, delta);
            prop_assert!(s.max_actual_tolerance() <= delta + 1e-9);
        }

        #[test]
        fn synchronised_deviation_dominates_segment_distance(t in arb_traj(), i in 0usize..50) {
            // The pointwise fact behind DP*'s lower reduction power: for the
            // same approximation segment, the synchronised deviation of a
            // sample is never smaller than its spatial distance to the segment.
            let pts = t.points();
            if pts.len() > 2 {
                let idx = 1 + i % (pts.len() - 2);
                let a = pts[0];
                let b = pts[pts.len() - 1];
                let seg = trajectory::geometry::Segment::new(a.position(), b.position());
                let sync = DouglasPeuckerStar::synchronised_deviation(&a, &b, &pts[idx]);
                let spatial = seg.distance_to_point(&pts[idx].position());
                prop_assert!(sync + 1e-9 >= spatial);
            }
        }

        #[test]
        fn dp_star_keeps_endpoints(t in arb_traj(), delta in 0.0f64..50.0) {
            let kept = DouglasPeuckerStar.kept_indices(&t, delta);
            prop_assert_eq!(*kept.first().unwrap(), 0);
            prop_assert_eq!(*kept.last().unwrap(), t.len() - 1);
        }
    }
}
