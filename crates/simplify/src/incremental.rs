//! Sliding-window simplification for streaming ingest.
//!
//! Batch CuTS simplifies every trajectory once, over all of its samples.
//! A streaming pipeline cannot: a λ-partition must be clustered as soon as
//! the feed watermark passes it, long before the object's trajectory is
//! complete. [`SlidingDp`] is the incremental entry point: it runs the
//! configured simplifier (DP, DP+ or DP*) over a *window buffer* — the
//! samples an object accumulated for one λ-partition, including the
//! bracketing samples just outside it — and closes the window into a
//! [`SimplifiedTrajectory`] with per-segment actual tolerances.
//!
//! The result is a valid δ-simplification of the buffered polyline, so every
//! filter-step distance bound (Lemmas 1–3) holds for it. It is *not*, in
//! general, identical to the corresponding stretch of the batch
//! simplification: DP's split points depend on samples outside the window.
//! That divergence is what the streaming refinement stage is designed to
//! absorb (see `convoy_stream`), and why the streaming correctness contract
//! is phrased about refinement output, not filter candidates.

use crate::simplified::SimplifiedTrajectory;
use crate::traits::SimplificationMethod;
use trajectory::{TrajPoint, Trajectory};

/// An incremental simplifier: one configured method + tolerance, applied to
/// window buffers as their λ-partitions complete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlidingDp {
    /// The simplification algorithm to run per window.
    pub method: SimplificationMethod,
    /// The tolerance δ (also recorded as each output's global tolerance).
    pub delta: f64,
}

impl SlidingDp {
    /// Creates a sliding simplifier for `method` with tolerance `delta`.
    pub fn new(method: SimplificationMethod, delta: f64) -> Self {
        SlidingDp { method, delta }
    }

    /// Closes one window buffer: simplifies the buffered samples with the
    /// configured method and tolerance.
    ///
    /// The buffer must be non-empty, time-sorted and free of duplicate
    /// timestamps (the shape a validated feed produces per object). Returns
    /// `None` for an empty buffer rather than panicking, since an object may
    /// contribute nothing to a partition.
    pub fn close_window(&self, buffer: &[TrajPoint]) -> Option<SimplifiedTrajectory> {
        if buffer.is_empty() {
            return None;
        }
        let trajectory = Trajectory::from_points(buffer.to_vec())
            // lint: allow(no-unwrap-in-lib) — emptiness is checked above; buffered runs stay time-ordered by construction
            .expect("window buffers are validated sample runs");
        Some(self.method.simplify(&trajectory, self.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Simplifier;
    use crate::DouglasPeucker;

    fn buffer(pts: &[(f64, f64, i64)]) -> Vec<TrajPoint> {
        pts.iter()
            .map(|&(x, y, t)| TrajPoint::new(x, y, t))
            .collect()
    }

    #[test]
    fn window_simplification_matches_direct_simplification() {
        let pts = buffer(&[
            (0.0, 0.0, 0),
            (1.0, 0.1, 1),
            (2.0, -0.1, 2),
            (3.0, 2.5, 3),
            (4.0, 0.0, 4),
        ]);
        let sliding = SlidingDp::new(SimplificationMethod::Dp, 0.5);
        let windowed = sliding.close_window(&pts).unwrap();
        let direct = DouglasPeucker.simplify(&Trajectory::from_points(pts).unwrap(), 0.5);
        assert_eq!(windowed, direct);
        assert_eq!(windowed.global_tolerance(), 0.5);
    }

    #[test]
    fn every_method_closes_windows() {
        let pts = buffer(&[(0.0, 0.0, 0), (1.0, 1.0, 2), (2.0, 0.0, 5)]);
        for method in SimplificationMethod::ALL {
            let s = SlidingDp::new(method, 10.0).close_window(&pts).unwrap();
            assert_eq!(s.points().first().unwrap().t, 0);
            assert_eq!(s.points().last().unwrap().t, 5);
            assert!(s.max_actual_tolerance() <= 10.0);
        }
    }

    #[test]
    fn empty_and_single_sample_windows() {
        let sliding = SlidingDp::new(SimplificationMethod::Dp, 1.0);
        assert!(sliding.close_window(&[]).is_none());
        let s = sliding.close_window(&buffer(&[(3.0, 4.0, 7)])).unwrap();
        assert_eq!(s.num_points(), 1);
        assert!(s.segments().is_empty());
    }
}
