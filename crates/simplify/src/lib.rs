//! # `traj-simplify` — trajectory line-simplification substrate
//!
//! The filter step of the CuTS family operates on *simplified* trajectories.
//! This crate implements the three simplification algorithms studied in the
//! paper and the bookkeeping they require:
//!
//! * [`DouglasPeucker`] (**DP**, Section 2.2 / 5.1): the classic
//!   divide-and-conquer simplifier, splitting at the sample farthest from the
//!   current approximation segment.
//! * [`DouglasPeuckerPlus`] (**DP+**, Section 6.1): splits at the sample
//!   *closest to the middle index* among those exceeding the tolerance, which
//!   balances the recursion and also yields smaller actual tolerances.
//! * [`DouglasPeuckerStar`] (**DP\***, Section 2.2 / 6.2, after Meratnia &
//!   de By): measures the *time-synchronised* distance between each sample
//!   and the time-ratio position on the approximation segment, so that the
//!   simplified segments can be compared with the tighter `D*` distance.
//!
//! Every simplifier records the **actual tolerance** `δ(l′)` of each produced
//! segment (Definition 4): the maximum distance from any original sample in
//! the segment's time range to the segment. Actual tolerances are what make
//! the filter-step distance bounds (Lemmas 1–3) tight.
//!
//! ## Example
//!
//! ```
//! use trajectory::Trajectory;
//! use traj_simplify::{DouglasPeucker, Simplifier};
//!
//! let traj = Trajectory::from_tuples([
//!     (0.0, 0.0, 0), (1.0, 0.05, 1), (2.0, -0.04, 2), (3.0, 0.0, 3),
//! ]).unwrap();
//! let simplified = DouglasPeucker.simplify(&traj, 0.5);
//! assert_eq!(simplified.num_points(), 2);              // straight-ish line collapses
//! assert!(simplified.max_actual_tolerance() <= 0.5);   // never exceeds δ
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dp;
pub mod dp_plus;
pub mod dp_star;
pub mod incremental;
pub mod select;
pub mod simplified;
pub mod tolerance;
pub mod traits;

pub use dp::DouglasPeucker;
pub use dp_plus::DouglasPeuckerPlus;
pub use dp_star::DouglasPeuckerStar;
pub use incremental::SlidingDp;
pub use select::{select_delta, select_delta_for_database, select_lambda, DeltaSelection};
pub use simplified::{SimplifiedSegment, SimplifiedTrajectory, ToleranceMetric};
pub use tolerance::{ReductionStats, ToleranceMode};
pub use traits::{SimplificationMethod, Simplifier};
