//! Data-driven selection of the internal CuTS parameters δ and λ
//! (Section 7.4 of the paper).
//!
//! Neither parameter affects the *correctness* of convoy discovery — only its
//! running time — so the guidelines here aim for "reasonable" rather than
//! optimal values, exactly as the paper does.

use crate::simplified::SimplifiedTrajectory;
use serde::{Deserialize, Serialize};
use trajectory::geometry::Segment;
use trajectory::{Trajectory, TrajectoryDatabase};

/// The outcome of the δ-selection guideline for a single trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaSelection {
    /// The selected tolerance δ_s (the smaller value of the adjacent pair
    /// with the largest gap, restricted to values below `e`).
    pub selected: f64,
    /// The sorted actual tolerance values collected by running DP with δ = 0.
    pub tolerances: Vec<f64>,
}

/// Runs the Section 7.4 δ-selection guideline on one trajectory.
///
/// 1. Run DP with δ = 0, recording the deviation of the split point at every
///    division step (these are the "actual tolerance values" of the guideline).
/// 2. Sort them ascending and keep only the values smaller than `e`.
/// 3. Find the adjacent pair with the largest gap and return the smaller of
///    the two.
///
/// Returns `None` when the trajectory yields no usable tolerance value (fewer
/// than three samples, or all deviations ≥ `e`, or a perfectly straight
/// trajectory whose deviations are all zero).
pub fn select_delta(trajectory: &Trajectory, e: f64) -> Option<DeltaSelection> {
    let points = trajectory.points();
    if points.len() < 3 {
        return None;
    }
    // DP with δ = 0: recurse until every intermediate point has been chosen as
    // a split point once, recording its deviation at the moment of the split.
    let mut deviations = Vec::with_capacity(points.len().saturating_sub(2));
    let mut stack = vec![(0usize, points.len() - 1)];
    while let Some((first, last)) = stack.pop() {
        if last <= first + 1 {
            continue;
        }
        let seg = Segment::new(points[first].position(), points[last].position());
        let mut max_dist = -1.0f64;
        let mut max_idx = first + 1;
        for (i, p) in points.iter().enumerate().take(last).skip(first + 1) {
            let d = seg.distance_to_point(&p.position());
            if d > max_dist {
                max_dist = d;
                max_idx = i;
            }
        }
        deviations.push(max_dist);
        stack.push((first, max_idx));
        stack.push((max_idx, last));
    }
    // lint: allow(no-unwrap-in-lib) — deviations are distances of finite points, never NaN
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("deviations are finite"));
    // Keep only tolerances strictly below e, as the guideline prescribes.
    let usable: Vec<f64> = deviations.iter().copied().filter(|d| *d < e).collect();
    if usable.len() < 2 {
        // With fewer than two usable values there is no "gap" to inspect; fall
        // back to the single value if it is positive.
        return usable
            .first()
            .copied()
            .filter(|d| *d > 0.0)
            .map(|selected| DeltaSelection {
                selected,
                tolerances: usable,
            });
    }
    let mut best_gap = f64::NEG_INFINITY;
    let mut best_lower = usable[0];
    for w in usable.windows(2) {
        let gap = w[1] - w[0];
        if gap > best_gap {
            best_gap = gap;
            best_lower = w[0];
        }
    }
    if best_lower <= 0.0 {
        // A zero tolerance would disable simplification entirely; pick the
        // smallest positive usable value instead.
        best_lower = usable.iter().copied().find(|d| *d > 0.0)?;
    }
    Some(DeltaSelection {
        selected: best_lower,
        tolerances: usable,
    })
}

/// Runs the δ guideline over a sample of the database's trajectories
/// (the paper suggests around 10 % of N) and averages the selected values.
///
/// Falls back to `e / 2` when no trajectory yields a usable selection, so
/// callers always receive a positive tolerance.
pub fn select_delta_for_database(db: &TrajectoryDatabase, e: f64, sample_fraction: f64) -> f64 {
    let n = db.len();
    if n == 0 {
        return e / 2.0;
    }
    let sample_size = ((n as f64 * sample_fraction).ceil() as usize).clamp(1, n);
    // Deterministic sample: evenly spaced object indices. Reproducibility
    // matters more here than statistical purity.
    let step = (n / sample_size).max(1);
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (i, (_, traj)) in db.iter().enumerate() {
        if i % step != 0 {
            continue;
        }
        if let Some(sel) = select_delta(traj, e) {
            sum += sel.selected;
            count += 1;
        }
        if count >= sample_size {
            break;
        }
    }
    if count == 0 {
        e / 2.0
    } else {
        sum / count as f64
    }
}

/// The Section 7.4 guideline for the time-partition length λ.
///
/// The underlying intuition: the natural partition length λ₁ for an object is
/// the average number of original time points covered by one simplified
/// segment (the reduction factor of the simplification). That value is then
/// discounted by the object's *missing-sample* probability, because partitions
/// longer than the typical gap between shared samples weaken the filter. We
/// compute, per object,
///
/// ```text
/// λ₁(o)  = |o| / max(1, |o′| - 1)             (samples per simplified segment)
/// miss(o) = 1 - |o| / |o.τ|                   (fraction of missing time points)
/// λ(o)   = λ₁(o) - (λ₁(o) - 2) · miss(o)      (discount, never below 2)
/// ```
///
/// and average λ(o) over all objects, clamping the result to `[2, k]` — a
/// partition longer than the convoy lifetime k can never help the filter.
///
/// (The paper's closed-form expression is stated slightly differently but its
/// own Table 3 values do not satisfy it; this implementation follows the
/// stated *intent* — dense, long trajectories get long partitions, sparsely
/// sampled ones get short partitions — and reproduces the relative ordering of
/// the paper's chosen λ values across the four dataset profiles.)
pub fn select_lambda<'a, I>(simplified: I, k: usize) -> usize
where
    I: IntoIterator<Item = &'a SimplifiedTrajectory>,
{
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for s in simplified {
        let original = s.original_len() as f64;
        let segments = (s.num_points().saturating_sub(1)).max(1) as f64;
        let lambda1 = original / segments;
        let covered = s.time_interval().num_points() as f64;
        let missing = if covered > 0.0 {
            (1.0 - original / covered).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let lambda = lambda1 - (lambda1 - 2.0) * missing;
        sum += lambda.max(2.0);
        count += 1;
    }
    if count == 0 {
        return 2;
    }
    let mean = sum / count as f64;
    let upper = k.max(2);
    (mean.round() as usize).clamp(2, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Simplifier;
    use crate::DouglasPeucker;
    use trajectory::{ObjectId, TrajPoint};

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    /// A wiggly trajectory with two scales of deviation: small jitter (~0.2)
    /// and occasional large detours (~5.0).
    fn two_scale_trajectory() -> Trajectory {
        let mut pts = Vec::new();
        for i in 0..60i64 {
            let x = i as f64;
            let jitter = if i % 2 == 0 { 0.2 } else { -0.2 };
            let detour = if i % 15 == 7 { 5.0 } else { 0.0 };
            pts.push(TrajPoint::new(x, jitter + detour, i));
        }
        Trajectory::from_points(pts).unwrap()
    }

    #[test]
    fn select_delta_finds_the_gap_between_scales() {
        let t = two_scale_trajectory();
        let sel = select_delta(&t, 8.0).expect("selection must succeed");
        // The selected δ must sit at the top of the jitter scale, well below
        // the detour scale.
        assert!(sel.selected > 0.0);
        assert!(
            sel.selected < 5.0,
            "δ={} should stay below the detour scale",
            sel.selected
        );
        // Tolerances are sorted ascending and below e.
        assert!(sel.tolerances.windows(2).all(|w| w[0] <= w[1]));
        assert!(sel.tolerances.iter().all(|d| *d < 8.0));
    }

    #[test]
    fn select_delta_respects_e_ceiling() {
        let t = two_scale_trajectory();
        // With e below the jitter scale nothing is usable except possibly tiny
        // values; the selection must never return a value >= e.
        if let Some(sel) = select_delta(&t, 0.15) {
            assert!(sel.selected < 0.15);
        }
    }

    #[test]
    fn select_delta_degenerate_inputs() {
        assert!(select_delta(&traj(&[(0.0, 0.0, 0)]), 1.0).is_none());
        assert!(select_delta(&traj(&[(0.0, 0.0, 0), (1.0, 1.0, 1)]), 1.0).is_none());
        // Perfectly straight trajectory: all deviations zero → no usable δ.
        let straight = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 1), (2.0, 0.0, 2), (3.0, 0.0, 3)]);
        assert!(select_delta(&straight, 1.0).is_none());
    }

    #[test]
    fn select_delta_for_database_averages_and_falls_back() {
        let mut db = TrajectoryDatabase::new();
        db.insert(ObjectId(1), two_scale_trajectory());
        db.insert(ObjectId(2), two_scale_trajectory());
        let delta = select_delta_for_database(&db, 8.0, 0.5);
        assert!(delta > 0.0 && delta < 8.0);
        // Empty database: fall back to e/2.
        let empty = TrajectoryDatabase::new();
        assert_eq!(select_delta_for_database(&empty, 8.0, 0.1), 4.0);
        // Database of straight lines: fall back to e/2.
        let mut straight_db = TrajectoryDatabase::new();
        straight_db.insert(
            ObjectId(1),
            traj(&[(0.0, 0.0, 0), (1.0, 0.0, 1), (2.0, 0.0, 2)]),
        );
        assert_eq!(select_delta_for_database(&straight_db, 8.0, 1.0), 4.0);
    }

    #[test]
    fn select_lambda_scales_with_reduction_and_density() {
        // Densely sampled, highly reducible trajectory → large λ.
        let dense = traj(
            &(0..100)
                .map(|i| (i as f64, 0.0, i as i64))
                .collect::<Vec<_>>(),
        );
        let dense_simplified = DouglasPeucker.simplify(&dense, 1.0);
        let lambda_dense = select_lambda([&dense_simplified], 200);
        assert!(
            lambda_dense >= 20,
            "a fully collapsible dense trajectory should yield a large λ, got {lambda_dense}"
        );

        // Sparsely sampled trajectory (many missing time points) → small λ.
        let sparse = traj(
            &(0..20)
                .map(|i| (i as f64, 0.0, i as i64 * 10))
                .collect::<Vec<_>>(),
        );
        let sparse_simplified = DouglasPeucker.simplify(&sparse, 1.0);
        let lambda_sparse = select_lambda([&sparse_simplified], 200);
        assert!(
            lambda_sparse < lambda_dense,
            "sparse sampling ({lambda_sparse}) must lower λ relative to dense sampling ({lambda_dense})"
        );
        assert!(lambda_sparse >= 2);
    }

    #[test]
    fn select_lambda_clamped_to_k_and_floor() {
        let dense = traj(
            &(0..100)
                .map(|i| (i as f64, 0.0, i as i64))
                .collect::<Vec<_>>(),
        );
        let s = DouglasPeucker.simplify(&dense, 1.0);
        assert_eq!(select_lambda([&s], 5), 5, "λ must not exceed k");
        assert_eq!(
            select_lambda(std::iter::empty(), 100),
            2,
            "empty input → floor"
        );
    }
}
