//! Simplified trajectories and their segments.

use serde::{Deserialize, Serialize};
use trajectory::geometry::segment::{Segment, TimedSegment};
use trajectory::geometry::{BoundingBox, Point};
use trajectory::{TimeInterval, TimePoint, TrajPoint, Trajectory};

/// How the actual tolerance `δ(l′)` of a segment is measured.
///
/// The choice matters for the soundness of the filter-step distance bounds:
///
/// * Lemma 1 (the `DLL` bound used by CuTS and CuTS+) needs
///   `DPL(o(t), l′) ≤ δ(l′)` for every `t` in the segment's interval, i.e.
///   the [`ToleranceMetric::Spatial`] metric.
/// * Lemma 3 (the `D*` bound used by CuTS*) needs the stronger
///   `D(l′(t), o(t)) ≤ δ(l′)` where `l′(t)` is the time-ratio position, i.e.
///   the [`ToleranceMetric::Synchronised`] metric. DP* guarantees this bound
///   by construction; DP and DP+ do not.
///
/// In both cases the maximum over the original *samples* in the segment's
/// range equals the maximum over the whole continuous interval, because the
/// original trajectory is piecewise linear and both deviation functions are
/// convex along each piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ToleranceMetric {
    /// `δ(l′) = max_t DPL(o(t), l′)` — Definition 4 as written.
    Spatial,
    /// `δ(l′) = max_t D(l′(t), o(t))` — the time-synchronised deviation,
    /// never smaller than the spatial one.
    Synchronised,
}

/// One line segment `l′` of a simplified trajectory `o′`.
///
/// A segment keeps, besides its spatial endpoints and time interval, the
/// **actual tolerance** `δ(l′)` of Definition 4 — the maximum distance from
/// any original sample whose timestamp falls inside the segment's interval to
/// the segment — and the index range of the original samples it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimplifiedSegment {
    /// Spatial endpoints plus time interval.
    pub timed: TimedSegment,
    /// Actual tolerance `δ(l′)` (Definition 4). Always `<=` the global
    /// tolerance used for the simplification.
    pub actual_tolerance: f64,
    /// Index (into the original trajectory's samples) of the segment's first
    /// endpoint.
    pub start_index: usize,
    /// Index (into the original trajectory's samples) of the segment's second
    /// endpoint.
    pub end_index: usize,
}

impl SimplifiedSegment {
    /// The segment's time interval `l′.τ`.
    #[inline]
    pub fn interval(&self) -> TimeInterval {
        self.timed.interval
    }

    /// The segment's spatial geometry.
    #[inline]
    pub fn segment(&self) -> Segment {
        self.timed.segment
    }

    /// The segment's spatial bounding box.
    #[inline]
    pub fn bounding_box(&self) -> BoundingBox {
        self.timed.bounding_box()
    }
}

/// A simplified trajectory `o′`: the retained samples of the original
/// trajectory plus the derived segments with their actual tolerances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimplifiedTrajectory {
    /// The retained samples (a subset of the original samples, in time order).
    points: Vec<TrajPoint>,
    /// The segments between consecutive retained samples. Empty only for a
    /// single-sample trajectory.
    segments: Vec<SimplifiedSegment>,
    /// The global tolerance δ the simplification was run with.
    global_tolerance: f64,
    /// Number of samples in the original trajectory.
    original_len: usize,
}

impl SimplifiedTrajectory {
    /// Assembles a simplified trajectory from the original trajectory and the
    /// sorted indices of the retained samples, measuring actual tolerances
    /// with the [`ToleranceMetric::Spatial`] metric (Definition 4 as written,
    /// the right choice for DP and DP+).
    pub fn from_kept_indices(
        original: &Trajectory,
        kept: &[usize],
        global_tolerance: f64,
    ) -> SimplifiedTrajectory {
        Self::from_kept_indices_with_metric(
            original,
            kept,
            global_tolerance,
            ToleranceMetric::Spatial,
        )
    }

    /// Assembles a simplified trajectory from the original trajectory and the
    /// sorted indices of the retained samples.
    ///
    /// The actual tolerance of each produced segment is computed here by
    /// scanning the original samples the segment replaces with the requested
    /// metric, so the caller only needs to decide *which* samples to keep.
    pub fn from_kept_indices_with_metric(
        original: &Trajectory,
        kept: &[usize],
        global_tolerance: f64,
        metric: ToleranceMetric,
    ) -> SimplifiedTrajectory {
        debug_assert!(!kept.is_empty(), "at least one sample must be kept");
        debug_assert!(
            kept.windows(2).all(|w| w[0] < w[1]),
            "indices must be sorted"
        );
        let samples = original.points();
        let points: Vec<TrajPoint> = kept.iter().map(|&i| samples[i]).collect();
        let mut segments = Vec::with_capacity(kept.len().saturating_sub(1));
        for w in kept.windows(2) {
            let (si, ei) = (w[0], w[1]);
            let a = samples[si];
            let b = samples[ei];
            let seg = Segment::new(a.position(), b.position());
            let interval = TimeInterval::new(a.t, b.t);
            let timed = TimedSegment::new(seg, interval);
            // δ(l′) = max over replaced samples of the chosen deviation.
            let mut actual = 0.0f64;
            for p in &samples[si..=ei] {
                let d = match metric {
                    ToleranceMetric::Spatial => seg.distance_to_point(&p.position()),
                    ToleranceMetric::Synchronised => timed.location_at(p.t).distance(&p.position()),
                };
                if d > actual {
                    actual = d;
                }
            }
            segments.push(SimplifiedSegment {
                timed,
                actual_tolerance: actual,
                start_index: si,
                end_index: ei,
            });
        }
        SimplifiedTrajectory {
            points,
            segments,
            global_tolerance,
            original_len: samples.len(),
        }
    }

    /// The retained samples.
    #[inline]
    pub fn points(&self) -> &[TrajPoint] {
        &self.points
    }

    /// The simplified segments.
    #[inline]
    pub fn segments(&self) -> &[SimplifiedSegment] {
        &self.segments
    }

    /// Number of retained samples `|o′|`.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of samples in the original trajectory `|o|`.
    #[inline]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// The global tolerance δ used for the simplification.
    #[inline]
    pub fn global_tolerance(&self) -> f64 {
        self.global_tolerance
    }

    /// The trajectory's time interval `o′.τ` (identical to the original's
    /// interval because the first and last samples are always kept).
    pub fn time_interval(&self) -> TimeInterval {
        TimeInterval::new(self.points[0].t, self.points[self.points.len() - 1].t)
    }

    /// The largest actual tolerance over all segments, i.e. `δ(o′)` of
    /// Definition 4. Zero for a single-sample trajectory.
    pub fn max_actual_tolerance(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.actual_tolerance)
            .fold(0.0, f64::max)
    }

    /// Vertex reduction ratio in percent: `(1 - |o′| / |o|) × 100`.
    pub fn reduction_percent(&self) -> f64 {
        if self.original_len == 0 {
            return 0.0;
        }
        (1.0 - self.num_points() as f64 / self.original_len as f64) * 100.0
    }

    /// The segment whose time interval covers `t`, if any. When `t` is a
    /// boundary between two segments the earlier segment is returned.
    pub fn segment_covering(&self, t: TimePoint) -> Option<&SimplifiedSegment> {
        // Segments are ordered by time; binary search on interval start.
        let idx = self.segments.partition_point(|s| s.interval().end < t);
        let seg = self.segments.get(idx)?;
        if seg.interval().contains(t) {
            Some(seg)
        } else {
            None
        }
    }

    /// The time-ratio position of the simplified trajectory at `t`, or `None`
    /// when `t` is outside its interval. For a single-sample trajectory the
    /// sample position is returned for its own timestamp.
    pub fn location_at(&self, t: TimePoint) -> Option<Point> {
        if self.segments.is_empty() {
            let only = &self.points[0];
            return (only.t == t).then(|| only.position());
        }
        self.segment_covering(t).map(|s| s.timed.location_at(t))
    }

    /// The segments whose time intervals intersect `window`.
    ///
    /// Segments are stored in time order and consecutive segments share their
    /// boundary timestamp, so the matching segments form a contiguous range
    /// that two binary searches locate in `O(log |segments|)` — important
    /// because the CuTS filter calls this once per object per time partition.
    pub fn segments_intersecting(&self, window: TimeInterval) -> &[SimplifiedSegment] {
        let first = self
            .segments
            .partition_point(|s| s.interval().end < window.start);
        let last = self
            .segments
            .partition_point(|s| s.interval().start <= window.end);
        &self.segments[first..last]
    }

    /// Spatial bounding box of the retained samples.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::from_points(self.points.iter().map(|p| p.position()))
            // lint: allow(no-unwrap-in-lib) — simplification always retains the endpoints
            .expect("simplified trajectory keeps at least one sample")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    #[test]
    fn from_kept_indices_builds_segments_with_actual_tolerance() {
        // A detour at t=1 of height 2 above the straight line (0,0)->(4,0).
        let original = traj(&[(0.0, 0.0, 0), (1.0, 2.0, 1), (2.0, 0.0, 2), (4.0, 0.0, 4)]);
        let s = SimplifiedTrajectory::from_kept_indices(&original, &[0, 3], 5.0);
        assert_eq!(s.num_points(), 2);
        assert_eq!(s.segments().len(), 1);
        let seg = &s.segments()[0];
        assert_eq!(seg.start_index, 0);
        assert_eq!(seg.end_index, 3);
        assert!((seg.actual_tolerance - 2.0).abs() < 1e-12);
        assert_eq!(s.max_actual_tolerance(), seg.actual_tolerance);
        assert_eq!(s.global_tolerance(), 5.0);
        assert_eq!(s.original_len(), 4);
        assert!((s.reduction_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn keeping_everything_gives_zero_tolerance() {
        let original = traj(&[(0.0, 0.0, 0), (1.0, 2.0, 1), (2.0, 0.0, 2)]);
        let s = SimplifiedTrajectory::from_kept_indices(&original, &[0, 1, 2], 0.0);
        assert_eq!(s.num_points(), 3);
        assert_eq!(s.max_actual_tolerance(), 0.0);
        assert_eq!(s.reduction_percent(), 0.0);
    }

    #[test]
    fn single_sample_trajectory_has_no_segments() {
        let original = traj(&[(3.0, 4.0, 7)]);
        let s = SimplifiedTrajectory::from_kept_indices(&original, &[0], 1.0);
        assert!(s.segments().is_empty());
        assert_eq!(s.location_at(7), Some(Point::new(3.0, 4.0)));
        assert_eq!(s.location_at(8), None);
        assert_eq!(s.time_interval(), TimeInterval::instant(7));
        assert_eq!(s.max_actual_tolerance(), 0.0);
    }

    #[test]
    fn segment_covering_and_location() {
        let original = traj(&[(0.0, 0.0, 0), (2.0, 0.0, 2), (2.0, 4.0, 6)]);
        let s = SimplifiedTrajectory::from_kept_indices(&original, &[0, 1, 2], 0.0);
        assert_eq!(s.segments().len(), 2);
        assert_eq!(s.segment_covering(1).unwrap().start_index, 0);
        assert_eq!(s.segment_covering(2).unwrap().start_index, 0); // boundary → earlier
        assert_eq!(s.segment_covering(3).unwrap().start_index, 1);
        assert!(s.segment_covering(9).is_none());
        // Time-ratio interpolation along the second segment.
        assert_eq!(s.location_at(4), Some(Point::new(2.0, 2.0)));
        assert_eq!(s.location_at(0), Some(Point::new(0.0, 0.0)));
        assert_eq!(s.location_at(7), None);
    }

    #[test]
    fn segments_intersecting_window() {
        let original = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 4), (2.0, 0.0, 8), (3.0, 0.0, 12)]);
        let s = SimplifiedTrajectory::from_kept_indices(&original, &[0, 1, 2, 3], 0.0);
        let hits = s.segments_intersecting(TimeInterval::new(5, 9));
        assert_eq!(hits.len(), 2);
        let hits = s.segments_intersecting(TimeInterval::new(0, 12));
        assert_eq!(hits.len(), 3);
        let hits = s.segments_intersecting(TimeInterval::new(20, 30));
        assert!(hits.is_empty());
    }

    #[test]
    fn bounding_box_covers_kept_points() {
        let original = traj(&[(0.0, 0.0, 0), (5.0, -3.0, 1), (2.0, 7.0, 2)]);
        let s = SimplifiedTrajectory::from_kept_indices(&original, &[0, 1, 2], 0.0);
        let b = s.bounding_box();
        assert_eq!(b.min, Point::new(0.0, -3.0));
        assert_eq!(b.max, Point::new(5.0, 7.0));
    }
}
