//! Tolerance handling: the global-vs-actual tolerance switch (Figure 14 of
//! the paper) and vertex-reduction statistics (Figure 15).

use crate::simplified::SimplifiedTrajectory;
use serde::{Deserialize, Serialize};

/// Which tolerance the filter step uses when enlarging its range searches
/// over simplified segments.
///
/// The paper observes (Section 7.2, Figure 14) that the **actual** tolerance
/// recorded per segment is never larger than — and usually much smaller than —
/// the global δ, so using it tightens the filter without risking correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ToleranceMode {
    /// Use each segment's recorded actual tolerance `δ(l′)` (the default and
    /// the paper's recommended setting).
    #[default]
    Actual,
    /// Use the global simplification tolerance δ for every segment.
    Global,
}

impl ToleranceMode {
    /// The tolerance value to use for a segment with actual tolerance
    /// `actual`, under a global tolerance `global`.
    #[inline]
    pub fn tolerance_for(&self, actual: f64, global: f64) -> f64 {
        match self {
            ToleranceMode::Actual => actual,
            ToleranceMode::Global => global,
        }
    }

    /// Display name used by the figure-regeneration binaries.
    pub fn name(&self) -> &'static str {
        match self {
            ToleranceMode::Actual => "actual",
            ToleranceMode::Global => "global",
        }
    }
}

/// Aggregate vertex-reduction statistics over a set of simplified
/// trajectories (one dataset), in the shape of Figure 15(a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ReductionStats {
    /// Total number of samples before simplification.
    pub original_points: usize,
    /// Total number of samples kept after simplification.
    pub simplified_points: usize,
    /// The largest actual tolerance observed over all segments.
    pub max_actual_tolerance: f64,
    /// Arithmetic mean of per-segment actual tolerances.
    pub mean_actual_tolerance: f64,
    /// Number of trajectories summarised.
    pub num_trajectories: usize,
}

impl ReductionStats {
    /// Computes reduction statistics for a set of simplified trajectories.
    pub fn from_simplified<'a, I>(simplified: I) -> ReductionStats
    where
        I: IntoIterator<Item = &'a SimplifiedTrajectory>,
    {
        let mut stats = ReductionStats::default();
        let mut tolerance_sum = 0.0f64;
        let mut segment_count = 0usize;
        for s in simplified {
            stats.num_trajectories += 1;
            stats.original_points += s.original_len();
            stats.simplified_points += s.num_points();
            for seg in s.segments() {
                tolerance_sum += seg.actual_tolerance;
                segment_count += 1;
                if seg.actual_tolerance > stats.max_actual_tolerance {
                    stats.max_actual_tolerance = seg.actual_tolerance;
                }
            }
        }
        if segment_count > 0 {
            stats.mean_actual_tolerance = tolerance_sum / segment_count as f64;
        }
        stats
    }

    /// Vertex reduction in percent: `(1 - kept / original) × 100`.
    pub fn reduction_percent(&self) -> f64 {
        if self.original_points == 0 {
            return 0.0;
        }
        (1.0 - self.simplified_points as f64 / self.original_points as f64) * 100.0
    }

    /// The reduction *factor* `Σ|o| / Σ|o′|` that Algorithm 2 feeds to the λ
    /// guideline (≥ 1; 1 when nothing was removed).
    pub fn reduction_factor(&self) -> f64 {
        if self.simplified_points == 0 {
            return 1.0;
        }
        self.original_points as f64 / self.simplified_points as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Simplifier;
    use crate::DouglasPeucker;
    use trajectory::Trajectory;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    #[test]
    fn tolerance_mode_selection() {
        assert_eq!(ToleranceMode::Actual.tolerance_for(1.5, 10.0), 1.5);
        assert_eq!(ToleranceMode::Global.tolerance_for(1.5, 10.0), 10.0);
        assert_eq!(ToleranceMode::default(), ToleranceMode::Actual);
        assert_eq!(ToleranceMode::Actual.name(), "actual");
        assert_eq!(ToleranceMode::Global.name(), "global");
    }

    #[test]
    fn reduction_stats_aggregate_multiple_trajectories() {
        let t1 = traj(&[(0.0, 0.0, 0), (1.0, 0.0, 1), (2.0, 0.0, 2), (3.0, 0.0, 3)]);
        let t2 = traj(&[(0.0, 0.0, 0), (1.0, 5.0, 1), (2.0, 0.0, 2)]);
        let s1 = DouglasPeucker.simplify(&t1, 1.0); // collapses to 2 points
        let s2 = DouglasPeucker.simplify(&t2, 1.0); // spike kept: 3 points
        let stats = ReductionStats::from_simplified([&s1, &s2]);
        assert_eq!(stats.num_trajectories, 2);
        assert_eq!(stats.original_points, 7);
        assert_eq!(stats.simplified_points, 5);
        assert!((stats.reduction_percent() - (1.0 - 5.0 / 7.0) * 100.0).abs() < 1e-9);
        assert!((stats.reduction_factor() - 7.0 / 5.0).abs() < 1e-9);
        assert!(stats.max_actual_tolerance <= 1.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = ReductionStats::from_simplified(std::iter::empty());
        assert_eq!(stats.reduction_percent(), 0.0);
        assert_eq!(stats.reduction_factor(), 1.0);
        assert_eq!(stats.num_trajectories, 0);
    }
}
