//! The [`Simplifier`] abstraction shared by DP, DP+ and DP*.

use crate::simplified::{SimplifiedTrajectory, ToleranceMetric};
use serde::{Deserialize, Serialize};
use trajectory::Trajectory;

/// A trajectory line-simplification algorithm.
///
/// Implementations return the indices of the samples to keep; the shared
/// [`SimplifiedTrajectory::from_kept_indices_with_metric`] constructor then
/// derives the segments and their actual tolerances, so every simplifier
/// reports tolerances consistently.
pub trait Simplifier {
    /// Human-readable name of the method ("DP", "DP+", "DP*").
    fn name(&self) -> &'static str;

    /// Returns the sorted indices of the samples to keep when simplifying
    /// `trajectory` with tolerance `delta`. The first and last sample indices
    /// must always be present.
    fn kept_indices(&self, trajectory: &Trajectory, delta: f64) -> Vec<usize>;

    /// Which deviation the recorded actual tolerances measure. Time-aware
    /// simplifiers (DP*) override this to [`ToleranceMetric::Synchronised`],
    /// which is what makes the tighter Lemma 3 bound sound.
    fn tolerance_metric(&self) -> ToleranceMetric {
        ToleranceMetric::Spatial
    }

    /// Simplifies `trajectory` with tolerance `delta`.
    fn simplify(&self, trajectory: &Trajectory, delta: f64) -> SimplifiedTrajectory {
        let kept = self.kept_indices(trajectory, delta);
        SimplifiedTrajectory::from_kept_indices_with_metric(
            trajectory,
            &kept,
            delta,
            self.tolerance_metric(),
        )
    }
}

/// Enumerates the three simplification methods of the paper, for use in
/// configuration values and benchmark tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimplificationMethod {
    /// Classic Douglas–Peucker.
    Dp,
    /// Midpoint-biased DP+ (Section 6.1).
    DpPlus,
    /// Temporal DP* (Section 6.2).
    DpStar,
}

impl SimplificationMethod {
    /// All methods, in the order the paper's figures list them.
    pub const ALL: [SimplificationMethod; 3] = [
        SimplificationMethod::Dp,
        SimplificationMethod::DpPlus,
        SimplificationMethod::DpStar,
    ];

    /// The method's display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SimplificationMethod::Dp => "DP",
            SimplificationMethod::DpPlus => "DP+",
            SimplificationMethod::DpStar => "DP*",
        }
    }

    /// Simplifies a trajectory with the selected method.
    pub fn simplify(&self, trajectory: &Trajectory, delta: f64) -> SimplifiedTrajectory {
        match self {
            SimplificationMethod::Dp => crate::DouglasPeucker.simplify(trajectory, delta),
            SimplificationMethod::DpPlus => crate::DouglasPeuckerPlus.simplify(trajectory, delta),
            SimplificationMethod::DpStar => crate::DouglasPeuckerStar.simplify(trajectory, delta),
        }
    }
}

impl std::fmt::Display for SimplificationMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_paper() {
        assert_eq!(SimplificationMethod::Dp.name(), "DP");
        assert_eq!(SimplificationMethod::DpPlus.name(), "DP+");
        assert_eq!(SimplificationMethod::DpStar.name(), "DP*");
        assert_eq!(SimplificationMethod::ALL.len(), 3);
        assert_eq!(SimplificationMethod::DpStar.to_string(), "DP*");
    }

    #[test]
    fn method_dispatch_simplifies() {
        let t = Trajectory::from_tuples([(0.0, 0.0, 0), (1.0, 0.0, 1), (2.0, 0.0, 2)]).unwrap();
        for m in SimplificationMethod::ALL {
            let s = m.simplify(&t, 10.0);
            assert_eq!(
                s.num_points(),
                2,
                "{m} should drop the collinear middle point"
            );
        }
    }
}
