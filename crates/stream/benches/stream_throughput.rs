//! Criterion bench: replayed-stream discovery against batch CuTS wall time
//! on the generated dataset profiles.
//!
//! The streaming pipeline re-simplifies per λ-partition and re-extracts
//! positions from its ingest buffers, so a replay is expected to trail the
//! batch run by a small factor; the interesting number is how small that
//! factor stays as the dataset grows (the stream's work per sample is
//! bounded by design). Scale with `CONVOY_BENCH_SCALE` (default 0.05).

use convoy_core::{ConvoyQuery, Discovery, Method};
use convoy_stream::ReplayStream;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_datasets::{generate, DatasetProfile, ProfileName};

fn bench_scale() -> f64 {
    std::env::var("CONVOY_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05)
}

fn bench_stream_throughput(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("stream_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for name in ProfileName::ALL {
        let profile = DatasetProfile::named(name).scaled(scale);
        let data = generate(&profile, 20080824);
        let query = ConvoyQuery::new(profile.m, profile.k, profile.e);
        let discovery = Discovery::new(Method::Cuts);
        group.bench_with_input(
            BenchmarkId::new("batch-cuts", name.name()),
            &data.database,
            |b, db| b.iter(|| discovery.run(db, &query)),
        );
        group.bench_with_input(
            BenchmarkId::new("replayed-stream", name.name()),
            &data.database,
            |b, db| b.iter(|| discovery.replay_stream(db, &query)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stream_throughput);
criterion_main!(benches);
