//! Per-object sample buffers: the stream's window onto each trajectory.
//!
//! A buffer holds an object's samples from just below the refinement fold's
//! cursor up to the feed watermark. It answers the two questions the
//! pipeline asks:
//!
//! * **Filter**: which sample *runs* fall into a λ-partition's window
//!   (including the bracketing samples just outside it), severed wherever a
//!   sample gap exceeds the eviction horizon?
//! * **Refinement**: where is the object at tick `t` — exactly the virtual-
//!   point semantics of [`trajectory::Trajectory::location_at`], except that
//!   gaps beyond the horizon are not interpolated?

use trajectory::{Point, TimePoint, TrajPoint};

/// One object's buffered samples, time-sorted and duplicate-free (the feed
/// validator guarantees both).
#[derive(Debug, Clone, Default)]
pub(crate) struct ObjectBuffer {
    samples: Vec<TrajPoint>,
}

/// Returns `true` when interpolation may bridge the gap between two
/// consecutive samples: the number of missing ticks between them must not
/// exceed the horizon (`None` = any gap bridges, the batch semantics).
#[inline]
pub(crate) fn bridgeable(before: TimePoint, after: TimePoint, horizon: Option<TimePoint>) -> bool {
    match horizon {
        None => true,
        // The missing-tick count `after - before - 1` can exceed `i64` when a
        // negative-epoch sample meets a far-future watermark; a gap too wide
        // to even represent is certainly too wide to bridge.
        Some(h) => match after.checked_sub(before).and_then(|gap| gap.checked_sub(1)) {
            Some(missing) => missing <= h,
            None => false,
        },
    }
}

impl ObjectBuffer {
    /// The buffered samples, oldest first (checkpoint export).
    pub fn samples(&self) -> &[TrajPoint] {
        &self.samples
    }

    /// Rebuilds a buffer from checkpointed samples. Returns `None` unless the
    /// samples are non-empty and strictly increasing in time — the invariants
    /// the feed validator enforces on the live path.
    pub fn from_samples(samples: Vec<TrajPoint>) -> Option<Self> {
        if samples.is_empty() || samples.windows(2).any(|w| w[0].t >= w[1].t) {
            return None;
        }
        Some(ObjectBuffer { samples })
    }

    /// Appends a sample (the validator has already enforced feed order).
    pub fn push(&mut self, sample: TrajPoint) {
        debug_assert!(self.samples.last().is_none_or(|last| last.t < sample.t));
        self.samples.push(sample);
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Timestamp of the newest buffered sample. A buffer always holds at
    /// least one sample (it is created by its first push and trimming keeps
    /// the newest).
    pub fn last_t(&self) -> TimePoint {
        // lint: allow(no-unwrap-in-lib) — buffers are created by their first push and trimming keeps the newest
        self.samples.last().expect("buffers are never empty").t
    }

    /// The sample runs intersecting `[start, end]`, each run extended to the
    /// bracketing samples (last sample at or before `start`, first sample at
    /// or after `end`) and severed wherever consecutive samples straddle a
    /// gap larger than the horizon.
    ///
    /// With an unbounded horizon this is a single slice — exactly the
    /// samples a λ-partition's sliding-window DP must see.
    pub fn runs_for_window(
        &self,
        start: TimePoint,
        end: TimePoint,
        horizon: Option<TimePoint>,
    ) -> Vec<&[TrajPoint]> {
        // Bracket indices: [i0, i1] inclusive.
        let i0 = self
            .samples
            .partition_point(|p| p.t <= start)
            .saturating_sub(1);
        let after_end = self.samples.partition_point(|p| p.t < end);
        let i1 = after_end.min(self.samples.len() - 1);
        let window = &self.samples[i0..=i1];
        if window.is_empty() {
            return Vec::new();
        }
        let mut runs = Vec::new();
        let mut run_start = 0usize;
        for i in 1..window.len() {
            if !bridgeable(window[i - 1].t, window[i].t, horizon) {
                runs.push(&window[run_start..i]);
                run_start = i;
            }
        }
        runs.push(&window[run_start..]);
        runs
    }

    /// The object's (possibly virtual) position at tick `t`, together with
    /// whether it was interpolated. `None` outside the buffered interval or
    /// across a gap larger than the horizon.
    ///
    /// Exact samples and the shared [`TrajPoint::interpolate`] arithmetic
    /// make the result bit-identical to
    /// [`trajectory::Trajectory::location_at`] whenever the bracketing
    /// samples are buffered and the gap bridges.
    pub fn position_at(&self, t: TimePoint, horizon: Option<TimePoint>) -> Option<(Point, bool)> {
        match self.samples.binary_search_by_key(&t, |p| p.t) {
            Ok(i) => Some((self.samples[i].position(), false)),
            Err(i) => {
                if i == 0 || i == self.samples.len() {
                    return None;
                }
                let before = &self.samples[i - 1];
                let after = &self.samples[i];
                if !bridgeable(before.t, after.t, horizon) {
                    return None;
                }
                Some((TrajPoint::interpolate(before, after, t), true))
            }
        }
    }

    /// Drops samples no longer needed once the refinement fold has passed
    /// `cursor`: everything strictly before the newest sample at or before
    /// `cursor` (which stays, as the interpolation bracket for later ticks).
    /// Returns the number of samples dropped.
    pub fn trim_before(&mut self, cursor: TimePoint) -> usize {
        let keep_from = self
            .samples
            .partition_point(|p| p.t <= cursor)
            .saturating_sub(1);
        self.samples.drain(..keep_from).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(times: &[i64]) -> ObjectBuffer {
        let mut b = ObjectBuffer::default();
        for &t in times {
            b.push(TrajPoint::new(t as f64, 0.0, t));
        }
        b
    }

    #[test]
    fn runs_include_bracketing_samples() {
        let b = buffer(&[0, 2, 5, 9, 12]);
        // Window [3, 8]: bracket-before is t=2, bracket-after is t=9.
        let runs = b.runs_for_window(3, 8, None);
        assert_eq!(runs.len(), 1);
        let times: Vec<i64> = runs[0].iter().map(|p| p.t).collect();
        assert_eq!(times, vec![2, 5, 9]);
        // A window past the data clamps to the final sample.
        let runs = b.runs_for_window(20, 30, None);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].last().unwrap().t, 12);
    }

    #[test]
    fn runs_sever_at_gaps_larger_than_the_horizon() {
        let b = buffer(&[0, 1, 2, 10, 11]);
        // Gap of 7 missing ticks between t=2 and t=10.
        let runs = b.runs_for_window(0, 11, Some(5));
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].last().unwrap().t, 2);
        assert_eq!(runs[1].first().unwrap().t, 10);
        // A horizon of exactly the gap size bridges it.
        assert_eq!(b.runs_for_window(0, 11, Some(7)).len(), 1);
        assert_eq!(b.runs_for_window(0, 11, None).len(), 1);
    }

    #[test]
    fn position_matches_trajectory_interpolation() {
        use trajectory::Trajectory;
        let times = [0i64, 2, 5, 9];
        let b = buffer(&times);
        let traj = Trajectory::from_tuples(times.iter().map(|&t| (t as f64, 0.0, t))).unwrap();
        for t in -1..=10 {
            let expected = traj.location_at(t);
            let got = b.position_at(t, None).map(|(p, _)| p);
            assert_eq!(got, expected, "t={t}");
        }
        let (_, interpolated) = b.position_at(2, None).unwrap();
        assert!(!interpolated);
        let (_, interpolated) = b.position_at(3, None).unwrap();
        assert!(interpolated);
    }

    #[test]
    fn position_refuses_to_bridge_beyond_the_horizon() {
        let b = buffer(&[0, 10]);
        assert!(b.position_at(5, None).is_some());
        assert!(
            b.position_at(5, Some(9)).is_some(),
            "9 missing ticks, horizon 9: exactly at the horizon bridges"
        );
        assert!(b.position_at(5, Some(8)).is_none());
        // Exact samples are always visible.
        assert!(b.position_at(0, Some(1)).is_some());
        assert!(b.position_at(10, Some(1)).is_some());
    }

    #[test]
    fn bridgeable_survives_extreme_gaps_and_horizons() {
        // A gap wider than i64 severs instead of wrapping (debug: panicking).
        assert!(!bridgeable(i64::MIN + 10, i64::MAX - 10, Some(i64::MAX)));
        assert!(bridgeable(i64::MIN + 10, i64::MAX - 10, None));
        // Negative-epoch samples under a huge horizon always bridge.
        assert!(bridgeable(-100, -95, Some(i64::MAX)));
        // Gap of exactly i64::MAX ticks: i64::MAX - 1 missing, still bridges.
        assert!(bridgeable(0, i64::MAX, Some(i64::MAX)));
    }

    #[test]
    fn checkpoint_round_trip_preserves_samples() {
        let b = buffer(&[0, 2, 5, 9]);
        let restored = ObjectBuffer::from_samples(b.samples().to_vec()).unwrap();
        assert_eq!(restored.samples(), b.samples());
        assert!(ObjectBuffer::from_samples(Vec::new()).is_none());
        let out_of_order = vec![TrajPoint::new(0.0, 0.0, 3), TrajPoint::new(0.0, 0.0, 3)];
        assert!(ObjectBuffer::from_samples(out_of_order).is_none());
    }

    #[test]
    fn trim_keeps_the_bracket_sample() {
        let mut b = buffer(&[0, 2, 5, 9]);
        assert_eq!(
            b.trim_before(6),
            2,
            "t=0 and t=2 go, t=5 stays as the bracket"
        );
        assert_eq!(b.len(), 2);
        assert!(
            b.position_at(7, None).is_some(),
            "interpolation across the cursor still works"
        );
        assert_eq!(b.trim_before(0), 0, "nothing older than the first sample");
        assert_eq!(b.last_t(), 9);
    }
}
