//! Crash-safe checkpoint/restore for [`ConvoyStream`].
//!
//! A checkpoint captures everything a stream needs to resume
//! **bit-identically**: the feed validator (watermark + per-object cursors),
//! the per-object sample buffers, the partition cursor, the coarse candidate
//! chain, the refinement fold (including its held-back boundary partition),
//! the undrained output, and every lifetime counter. Scratch state — the
//! snapshot clusterer, the dedup index, the cached partition blocker — is
//! deliberately *not* stored: a restored stream rebuilds it empty, which is
//! output-neutral (`run N ticks → checkpoint → restore → run M ticks` equals
//! `run N+M ticks` on raw convoys and [`crate::StreamStats`] alike;
//! `tests/checkpoint_equivalence.rs` locks this in).
//!
//! ## File format (version 1)
//!
//! ```text
//! magic   8 bytes   b"CONVOYCK"
//! version u32 LE    1
//! 7 sections, fixed order, each: tag u32 LE + payload length u64 LE + payload
//!   1 CONFIG     query (m, k, e), variant, δ, λ, tolerance mode, eviction
//!   2 VALIDATOR  watermark + per-object last timestamps (ascending ids)
//!   3 BUFFERS    per-object samples (ascending ids, ascending timestamps)
//!   4 FILTER     partition cursor + candidate-chain state
//!   5 FOLD       refinement-fold state (CmcState view + boundary coverage)
//!   6 OUTPUT     undrained convoys and candidates
//!   7 STATS      stream counters not derivable from the sections above
//! crc32   u32 LE    IEEE CRC-32 of every preceding byte
//! ```
//!
//! All integers are little-endian; floats are stored as their IEEE-754 bit
//! patterns (`f64::to_le_bytes`), so a round trip is bit-exact. Collections
//! are length-prefixed (`u64`) and written in a deterministic order, so the
//! same state always serializes to the same bytes.
//!
//! [`ConvoyStream::checkpoint`] writes to a sibling temp file, syncs it, and
//! atomically renames it over the destination — a crash mid-write can lose
//! the checkpoint being written, never corrupt the previous one. Decoding is
//! strict: a truncated, bit-flipped, version-bumped or trailing-garbage file
//! is rejected with a [`CheckpointError`], never a panic or a partial
//! restore.

// This module faces arbitrary bytes; every abort path is a bug. Enforced
// three ways: convoy-lint's no-panic-decode rule, the every-byte-flip
// corruption suite, and clippy at the module level:
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::buffer::ObjectBuffer;
use crate::config::{EvictionPolicy, StreamConfig};
use crate::stream::ConvoyStream;
use convoy_core::{
    CandidateChain, CandidateChainSnapshot, CandidateConvoy, CmcStateSnapshot, Convoy, ConvoyQuery,
    CutsVariant, RefineFold, RefineFoldSnapshot,
};
use convoy_obs::Obs;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use traj_cluster::Cluster;
use traj_simplify::ToleranceMode;
use trajectory::{
    FeedValidator, FeedValidatorSnapshot, ObjectId, TimeInterval, TimePoint, TrajPoint,
};

/// The checkpoint file's magic bytes.
pub const MAGIC: [u8; 8] = *b"CONVOYCK";

/// The current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

const TAG_CONFIG: u32 = 1;
const TAG_VALIDATOR: u32 = 2;
const TAG_BUFFERS: u32 = 3;
const TAG_FILTER: u32 = 4;
const TAG_FOLD: u32 = 5;
const TAG_OUTPUT: u32 = 6;
const TAG_STATS: u32 = 7;

/// Why a checkpoint could not be written or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the encoded structure does (torn write).
    Truncated,
    /// The trailing CRC-32 does not match the file's contents.
    ChecksumMismatch,
    /// The structure decoded but violates a format invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a convoy checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the polynomial zlib and PNG use), table built at
// compile time so the hot path is one lookup per byte.

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint: allow(cast-audit) — i < 256, fits u32 exactly
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c; // lint: allow(no-panic-decode) — const loop, i < 256 == table.len()
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum the checkpoint trailer stores).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // lint: allow(no-panic-decode) — index masked to 0..=255, table length 256
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Encoder

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.i64(v);
            }
        }
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }
    fn members(&mut self, cluster: &Cluster) {
        self.u64(cluster.len() as u64);
        for id in cluster.members() {
            self.u64(id.0);
        }
    }
    fn candidate(&mut self, c: &CandidateConvoy) {
        self.members(&c.objects);
        self.i64(c.start);
        self.i64(c.end);
    }
    fn candidates(&mut self, cs: &[CandidateConvoy]) {
        self.u64(cs.len() as u64);
        for c in cs {
            self.candidate(c);
        }
    }
    fn convoys(&mut self, cs: &[Convoy]) {
        self.u64(cs.len() as u64);
        for c in cs {
            self.members(&c.objects);
            self.i64(c.start);
            self.i64(c.end);
        }
    }
    fn cmc_state(&mut self, s: &CmcStateSnapshot) {
        self.candidates(&s.current);
        self.convoys(&s.closed);
        self.u64(s.peak_candidates as u64);
        self.opt_i64(s.last_tick);
        self.u64(s.ticks_ingested);
        self.u64(s.gap_closures);
        self.u64(s.convoys_closed);
    }
    /// Writes `tag` + length prefix + the payload produced by `body`.
    fn section(&mut self, tag: u32, body: impl FnOnce(&mut Enc)) {
        self.u32(tag);
        let len_at = self.buf.len();
        self.u64(0);
        body(self);
        let len = (self.buf.len() - len_at - 8) as u64;
        // lint: allow(no-panic-decode) — encode path: span written at len_at above, buf only grows
        self.buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Decoder

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(CheckpointError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
    /// Reads exactly `N` bytes into a fixed-size array. The copy is bounded
    /// by both sides of the `zip`, so no length mismatch can panic — unlike
    /// `try_into().unwrap()` or `copy_from_slice`, there is no abort path on
    /// corrupt input.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        let src = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, byte) in out.iter_mut().zip(src) {
            *dst = *byte;
        }
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        let [b] = self.take_array::<1>()?;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }
    fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }
    fn opt_i64(&mut self) -> Result<Option<i64>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            _ => Err(CheckpointError::Malformed("option tag")),
        }
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(CheckpointError::Malformed("option tag")),
        }
    }
    /// Reads a length prefix, bounding it by the bytes actually left (each
    /// item occupies at least `min_item_size` bytes) so a corrupt count can
    /// not trigger an absurd allocation.
    fn len_prefix(&mut self, min_item_size: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let max = self.remaining() / min_item_size.max(1);
        if n as usize > max {
            return Err(CheckpointError::Truncated);
        }
        Ok(n as usize)
    }
    fn members(&mut self) -> Result<Cluster, CheckpointError> {
        let n = self.len_prefix(8)?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(ObjectId(self.u64()?));
        }
        if !ids.is_sorted_by(|a, b| a < b) {
            return Err(CheckpointError::Malformed("cluster members not ascending"));
        }
        Ok(Cluster::new(ids))
    }
    fn candidate(&mut self) -> Result<CandidateConvoy, CheckpointError> {
        let objects = self.members()?;
        let start = self.i64()?;
        let end = self.i64()?;
        if start > end {
            return Err(CheckpointError::Malformed("candidate interval inverted"));
        }
        Ok(CandidateConvoy::new(objects, start, end))
    }
    fn candidates(&mut self) -> Result<Vec<CandidateConvoy>, CheckpointError> {
        let n = self.len_prefix(24)?;
        (0..n).map(|_| self.candidate()).collect()
    }
    fn convoys(&mut self) -> Result<Vec<Convoy>, CheckpointError> {
        let n = self.len_prefix(24)?;
        (0..n)
            .map(|_| {
                let objects = self.members()?;
                let start = self.i64()?;
                let end = self.i64()?;
                if start > end {
                    return Err(CheckpointError::Malformed("convoy interval inverted"));
                }
                Ok(Convoy::new(objects, start, end))
            })
            .collect()
    }
    fn cmc_state(&mut self) -> Result<CmcStateSnapshot, CheckpointError> {
        Ok(CmcStateSnapshot {
            current: self.candidates()?,
            closed: self.convoys()?,
            peak_candidates: self.u64()? as usize,
            last_tick: self.opt_i64()?,
            ticks_ingested: self.u64()?,
            gap_closures: self.u64()?,
            convoys_closed: self.u64()?,
        })
    }
    /// Reads a section header, returning a sub-decoder over exactly the
    /// section's payload.
    fn section(&mut self, expected_tag: u32) -> Result<Dec<'a>, CheckpointError> {
        let tag = self.u32()?;
        if tag != expected_tag {
            return Err(CheckpointError::Malformed("unexpected section tag"));
        }
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(CheckpointError::Truncated);
        }
        let body = self.take(len as usize)?;
        Ok(Dec {
            bytes: body,
            pos: 0,
        })
    }
    /// Asserts the decoder consumed its input exactly.
    fn finish_section(self, what: &'static str) -> Result<(), CheckpointError> {
        if self.remaining() != 0 {
            return Err(CheckpointError::Malformed(what));
        }
        Ok(())
    }
}

fn decode_config(d: &mut Dec<'_>) -> Result<StreamConfig, CheckpointError> {
    let m = d.u64()? as usize;
    let k = d.u64()? as usize;
    let e = d.f64()?;
    let variant = match d.u8()? {
        0 => CutsVariant::Cuts,
        1 => CutsVariant::CutsPlus,
        2 => CutsVariant::CutsStar,
        _ => return Err(CheckpointError::Malformed("CuTS variant")),
    };
    let delta = d.f64()?;
    let lambda = d.u64()? as usize;
    let tolerance_mode = match d.u8()? {
        0 => ToleranceMode::Actual,
        1 => ToleranceMode::Global,
        _ => return Err(CheckpointError::Malformed("tolerance mode")),
    };
    let horizon = d.opt_i64()?;
    let max_candidates = d.opt_u64()?.map(|v| v as usize);
    if m == 0 || k == 0 || !e.is_finite() || !delta.is_finite() || lambda < 2 {
        return Err(CheckpointError::Malformed("configuration out of range"));
    }
    Ok(StreamConfig::new(ConvoyQuery::new(m, k, e), delta, lambda)
        .with_variant(variant)
        .with_tolerance_mode(tolerance_mode)
        .with_eviction(EvictionPolicy {
            horizon,
            max_candidates,
        }))
}

impl ConvoyStream {
    /// Serializes the stream's resumable state to checkpoint bytes (see the
    /// module docs for the format).
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut e = Enc {
            buf: Vec::with_capacity(256),
        };
        e.buf.extend_from_slice(&MAGIC);
        e.u32(FORMAT_VERSION);

        let config = self.config;
        e.section(TAG_CONFIG, |e| {
            e.u64(config.query.m as u64);
            e.u64(config.query.k as u64);
            e.f64(config.query.e);
            e.u8(match config.variant {
                CutsVariant::Cuts => 0,
                CutsVariant::CutsPlus => 1,
                CutsVariant::CutsStar => 2,
            });
            e.f64(config.delta);
            e.u64(config.lambda as u64);
            e.u8(match config.tolerance_mode {
                ToleranceMode::Actual => 0,
                ToleranceMode::Global => 1,
            });
            e.opt_i64(config.eviction.horizon);
            e.opt_u64(config.eviction.max_candidates.map(|v| v as u64));
        });

        let validator = self.validator.export_state();
        e.section(TAG_VALIDATOR, |e| {
            e.opt_i64(validator.watermark);
            e.u64(validator.last_per_object.len() as u64);
            for (object, t) in &validator.last_per_object {
                e.u64(object.0);
                e.i64(*t);
            }
        });

        e.section(TAG_BUFFERS, |e| {
            e.u64(self.buffers.len() as u64);
            for (object, buffer) in &self.buffers {
                e.u64(object.0);
                e.u64(buffer.samples().len() as u64);
                for p in buffer.samples() {
                    e.f64(p.x);
                    e.f64(p.y);
                    e.i64(p.t);
                }
            }
        });

        let chain = self.chain.export_state();
        e.section(TAG_FILTER, |e| {
            e.opt_i64(self.partition_start);
            e.candidates(&chain.current);
            e.candidates(&chain.closed);
            e.u64(chain.peak_open as u64);
            e.u64(chain.partitions_folded);
        });

        let fold = self.fold.export_state();
        e.section(TAG_FOLD, |e| {
            e.cmc_state(&fold.state);
            match &fold.prev {
                None => e.u8(0),
                Some((window, coverage)) => {
                    e.u8(1);
                    e.i64(window.start);
                    e.i64(window.end);
                    e.u64(coverage.len() as u64);
                    for id in coverage {
                        e.u64(id.0);
                    }
                }
            }
            e.opt_i64(fold.last_tick);
            e.u64(fold.evicted);
        });

        e.section(TAG_OUTPUT, |e| {
            e.convoys(&self.ready);
            e.candidates(&self.ready_candidates);
        });

        e.section(TAG_STATS, |e| {
            e.u64(self.partitions_closed);
            e.u64(self.filter_candidates);
            e.u64(self.chain_evicted);
            e.u64(self.peak_samples_buffered as u64);
        });

        let crc = crc32(&e.buf);
        e.u32(crc);
        e.buf
    }

    /// Restores a stream from checkpoint bytes. Strict: any truncation,
    /// corruption or format violation yields an error, never a partial
    /// stream.
    pub fn from_checkpoint_bytes(bytes: &[u8]) -> Result<ConvoyStream, CheckpointError> {
        ConvoyStream::from_checkpoint_bytes_obs(bytes, &Obs::noop())
    }

    /// Like [`ConvoyStream::from_checkpoint_bytes`], recording the restore's
    /// `checkpoint.bytes_read` and `checkpoint.crc_verify_ns` metrics into
    /// `obs`. The recorder is *not* attached to the restored stream — call
    /// [`ConvoyStream::set_obs`] (or use [`ConvoyStream::restore_with_obs`])
    /// for that.
    pub fn from_checkpoint_bytes_obs(
        bytes: &[u8],
        obs: &Obs,
    ) -> Result<ConvoyStream, CheckpointError> {
        // Trailer first: magic, then whole-file integrity, then version —
        // so a bit flip anywhere (the version field included) is reported as
        // corruption, while an intact newer-format file is reported as such.
        if bytes.len() < MAGIC.len() + 4 + 4 {
            return Err(if bytes.starts_with(&MAGIC) || MAGIC.starts_with(bytes) {
                CheckpointError::Truncated
            } else {
                CheckpointError::BadMagic
            });
        }
        if !bytes.starts_with(&MAGIC) {
            return Err(CheckpointError::BadMagic);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let mut stored = [0u8; 4];
        for (dst, byte) in stored.iter_mut().zip(trailer) {
            *dst = *byte;
        }
        let stored_crc = u32::from_le_bytes(stored);
        let live = obs.enabled();
        let crc_started_ns = if live { obs.now_ns() } else { 0 };
        let crc_ok = crc32(body) == stored_crc;
        if live {
            obs.histogram_record(
                "checkpoint.crc_verify_ns",
                obs.now_ns().saturating_sub(crc_started_ns),
            );
            obs.counter_add("checkpoint.bytes_read", bytes.len() as u64);
        }
        if !crc_ok {
            return Err(CheckpointError::ChecksumMismatch);
        }

        let mut d = Dec {
            bytes: body,
            pos: MAGIC.len(),
        };
        let version = d.u32()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }

        let mut s = d.section(TAG_CONFIG)?;
        let config = decode_config(&mut s)?;
        s.finish_section("trailing bytes in config section")?;

        let mut s = d.section(TAG_VALIDATOR)?;
        let watermark = s.opt_i64()?;
        let n = s.len_prefix(16)?;
        let mut last_per_object: Vec<(ObjectId, TimePoint)> = Vec::with_capacity(n);
        for _ in 0..n {
            let object = ObjectId(s.u64()?);
            let t = s.i64()?;
            last_per_object.push((object, t));
        }
        if !last_per_object.is_sorted_by(|a, b| a.0 < b.0) {
            return Err(CheckpointError::Malformed(
                "validator entries not ascending",
            ));
        }
        s.finish_section("trailing bytes in validator section")?;
        let validator = FeedValidator::from_state(FeedValidatorSnapshot {
            watermark,
            last_per_object,
        });

        let mut s = d.section(TAG_BUFFERS)?;
        let n = s.len_prefix(16)?;
        let mut buffers: BTreeMap<ObjectId, ObjectBuffer> = BTreeMap::new();
        let mut samples_buffered = 0usize;
        let mut prev_object: Option<ObjectId> = None;
        for _ in 0..n {
            let object = ObjectId(s.u64()?);
            if prev_object.is_some_and(|prev| prev >= object) {
                return Err(CheckpointError::Malformed("buffers not ascending"));
            }
            prev_object = Some(object);
            let count = s.len_prefix(24)?;
            let mut samples = Vec::with_capacity(count);
            for _ in 0..count {
                let x = s.f64()?;
                let y = s.f64()?;
                let t = s.i64()?;
                if !(x.is_finite() && y.is_finite()) {
                    return Err(CheckpointError::Malformed("non-finite buffered sample"));
                }
                samples.push(TrajPoint::new(x, y, t));
            }
            samples_buffered += samples.len();
            let buffer = ObjectBuffer::from_samples(samples)
                .ok_or(CheckpointError::Malformed("buffer samples out of order"))?;
            buffers.insert(object, buffer);
        }
        s.finish_section("trailing bytes in buffers section")?;

        let mut s = d.section(TAG_FILTER)?;
        let partition_start = s.opt_i64()?;
        let chain = CandidateChainSnapshot {
            current: s.candidates()?,
            closed: s.candidates()?,
            peak_open: s.u64()? as usize,
            partitions_folded: s.u64()?,
        };
        s.finish_section("trailing bytes in filter section")?;

        let mut s = d.section(TAG_FOLD)?;
        let state = s.cmc_state()?;
        let prev = match s.u8()? {
            0 => None,
            1 => {
                let start = s.i64()?;
                let end = s.i64()?;
                let count = s.len_prefix(8)?;
                let mut coverage = Vec::with_capacity(count);
                for _ in 0..count {
                    coverage.push(ObjectId(s.u64()?));
                }
                if !coverage.is_sorted_by(|a, b| a < b) {
                    return Err(CheckpointError::Malformed("fold coverage not ascending"));
                }
                if start > end {
                    return Err(CheckpointError::Malformed("fold window inverted"));
                }
                Some((TimeInterval::new(start, end), coverage))
            }
            _ => return Err(CheckpointError::Malformed("option tag")),
        };
        let fold = RefineFoldSnapshot {
            state,
            prev,
            last_tick: s.opt_i64()?,
            evicted: s.u64()?,
        };
        s.finish_section("trailing bytes in fold section")?;

        let mut s = d.section(TAG_OUTPUT)?;
        let ready = s.convoys()?;
        let ready_candidates = s.candidates()?;
        s.finish_section("trailing bytes in output section")?;

        let mut s = d.section(TAG_STATS)?;
        let partitions_closed = s.u64()?;
        let filter_candidates = s.u64()?;
        let chain_evicted = s.u64()?;
        let peak_samples_buffered = s.u64()? as usize;
        s.finish_section("trailing bytes in stats section")?;

        if d.remaining() != 0 {
            return Err(CheckpointError::Malformed("trailing bytes after sections"));
        }

        let mut stream = ConvoyStream::new(config);
        stream.validator = validator;
        stream.buffers = buffers;
        stream.partition_start = partition_start;
        stream.chain = CandidateChain::from_state(&config.query, chain);
        stream.fold = RefineFold::from_state(
            &config.query,
            config.eviction.horizon,
            config.eviction.max_candidates,
            fold,
        );
        stream.ready = ready;
        stream.ready_candidates = ready_candidates;
        stream.partitions_closed = partitions_closed;
        stream.filter_candidates = filter_candidates;
        stream.chain_evicted = chain_evicted;
        stream.samples_buffered = samples_buffered;
        stream.peak_samples_buffered = peak_samples_buffered.max(samples_buffered);
        Ok(stream)
    }

    /// Writes a checkpoint to `path` atomically: the bytes go to a sibling
    /// `<path>.tmp`, are synced to disk, and are renamed over `path` in one
    /// step — a crash mid-write never corrupts an existing checkpoint.
    pub fn checkpoint<P: AsRef<Path>>(&self, path: P) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let live = self.obs.enabled();
        // The guard ends the `checkpoint.write` span on every exit path,
        // early I/O errors included.
        let _span = self.obs.span_guard("checkpoint.write", self.root_span);
        let bytes = self.checkpoint_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            let fsync_started_ns = if live { self.obs.now_ns() } else { 0 };
            file.sync_all()?;
            if live {
                self.obs.histogram_record(
                    "checkpoint.fsync_ns",
                    self.obs.now_ns().saturating_sub(fsync_started_ns),
                );
            }
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        if live {
            self.obs.counter_add("checkpoint.writes", 1);
            self.obs
                .counter_add("checkpoint.bytes_written", bytes.len() as u64);
        }
        Ok(())
    }

    /// Restores a stream from a checkpoint file written by
    /// [`ConvoyStream::checkpoint`]. The stream's full configuration rides
    /// in the checkpoint, so nothing else needs to be supplied.
    pub fn restore<P: AsRef<Path>>(path: P) -> Result<ConvoyStream, CheckpointError> {
        let bytes = std::fs::read(path)?;
        ConvoyStream::from_checkpoint_bytes(&bytes)
    }

    /// Like [`ConvoyStream::restore`], recording the restore metrics into
    /// `obs` and attaching it to the restored stream (equivalent to calling
    /// [`ConvoyStream::set_obs`] afterwards).
    pub fn restore_with_obs<P: AsRef<Path>>(
        path: P,
        obs: &Obs,
    ) -> Result<ConvoyStream, CheckpointError> {
        let bytes = std::fs::read(path)?;
        let mut stream = ConvoyStream::from_checkpoint_bytes_obs(&bytes, obs)?;
        stream.set_obs(obs.clone());
        Ok(stream)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic on bad fixtures
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors (zlib's `crc32` agrees).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
