//! Configuration and observability types of the streaming pipeline.

use convoy_core::{CmcStats, ConvoyQuery, CutsVariant};
use convoy_obs::{MetricsSnapshot, Recorder, Registry};
use serde::{Deserialize, Serialize};
use traj_simplify::ToleranceMode;
use trajectory::TimePoint;

/// Windowed-eviction policy of a [`crate::ConvoyStream`].
///
/// Both knobs bound the stream's working set on an unbounded feed; both
/// default to unbounded, in which case replaying a finite database is
/// bit-identical to the batch pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EvictionPolicy {
    /// Maximum age in ticks. Three effects, one knob:
    ///
    /// * a refinement chain that has lived `horizon` ticks is closed (and
    ///   reported, if it satisfies `k`) before the next tick would extend it,
    ///   so no reported convoy ever exceeds `horizon` ticks;
    /// * an object silent for more than `horizon` ticks is *severed*: its
    ///   later samples never interpolate across the silence, so no convoy
    ///   bridges a feed gap larger than the horizon;
    /// * a λ-partition stops waiting for a silent object once the watermark
    ///   is more than `horizon` ticks past the object's last sample, which
    ///   bounds the stream's result latency.
    ///
    /// `None` means unbounded: chains live forever, any sample gap is
    /// interpolated (the batch semantics), and a partition only closes when
    /// every known object has reported past it (or the stream finishes).
    pub horizon: Option<TimePoint>,
    /// Maximum number of simultaneously open refinement chains. When a tick
    /// pushes the working set past the bound, the oldest chains are closed
    /// mid-tick (and reported if they satisfy `k`). `None` means unbounded.
    pub max_candidates: Option<usize>,
}

impl EvictionPolicy {
    /// No eviction: the configuration under which a finite replay is
    /// bit-identical to batch CuTS.
    pub fn unbounded() -> Self {
        EvictionPolicy::default()
    }

    /// Sets the age horizon in ticks.
    #[must_use]
    pub fn with_horizon(mut self, horizon: TimePoint) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Sets the open-chain capacity.
    #[must_use]
    pub fn with_max_candidates(mut self, max_candidates: usize) -> Self {
        self.max_candidates = Some(max_candidates);
        self
    }
}

/// Configuration of a [`crate::ConvoyStream`].
///
/// Unlike the batch [`convoy_core::CutsConfig`], δ and λ are mandatory: the
/// automatic Section 7.4 guidelines need the whole database, which a live
/// feed does not have. [`crate::ReplayStream`] derives them the batch way
/// when replaying a finite database.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// The convoy query to answer.
    pub query: ConvoyQuery,
    /// The CuTS variant whose simplifier and segment distance the
    /// incremental filter uses.
    pub variant: CutsVariant,
    /// Simplification tolerance δ for the sliding-window DP.
    pub delta: f64,
    /// λ-partition length in time points (clamped to at least 2, matching
    /// [`trajectory::TimePartition`]).
    pub lambda: usize,
    /// Tolerance mode of the filter's range searches.
    pub tolerance_mode: ToleranceMode,
    /// The windowed-eviction policy.
    pub eviction: EvictionPolicy,
}

impl StreamConfig {
    /// Creates a CuTS-variant stream configuration with no eviction.
    pub fn new(query: ConvoyQuery, delta: f64, lambda: usize) -> Self {
        StreamConfig {
            query,
            variant: CutsVariant::Cuts,
            delta,
            lambda: lambda.max(2),
            tolerance_mode: ToleranceMode::Actual,
            eviction: EvictionPolicy::unbounded(),
        }
    }

    /// Selects the CuTS variant.
    #[must_use]
    pub fn with_variant(mut self, variant: CutsVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the tolerance mode of the filter's range searches.
    #[must_use]
    pub fn with_tolerance_mode(mut self, mode: ToleranceMode) -> Self {
        self.tolerance_mode = mode;
        self
    }

    /// Sets the eviction policy.
    #[must_use]
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// The partition step in ticks (consecutive partitions share a boundary
    /// point, so a λ-point partition advances by λ − 1).
    pub(crate) fn step(&self) -> i64 {
        self.lambda as i64 - 1
    }
}

/// Lifetime counters of a [`crate::ConvoyStream`], built on the refinement
/// fold's [`CmcStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Counters of the refinement [`convoy_core::CmcState`] fold: peak open
    /// candidates, ticks ingested, gap closures, convoys closed. With an
    /// unbounded policy these agree bit-for-bit with the batch refinement
    /// fold's counters on a replay.
    pub fold: CmcStats,
    /// λ-partitions closed (clustered and folded) so far.
    pub partitions_closed: u64,
    /// Coarse filter candidates closed by the incremental filter's candidate
    /// chain (lifetime-qualifying ones, the same population batch
    /// [`convoy_core::cuts::filter::FilterOutput::candidates`] counts).
    pub filter_candidates: u64,
    /// Largest number of simultaneously open coarse filter chains.
    pub peak_filter_candidates: usize,
    /// Chains force-closed by the eviction policy (refinement and coarse
    /// filter chains combined).
    pub candidates_evicted: u64,
    /// Samples currently buffered across all objects.
    pub samples_buffered: usize,
    /// Largest number of samples ever buffered at once.
    pub peak_samples_buffered: usize,
}

/// Publishes a [`StreamStats`] into `registry` under the canonical
/// `stream.*` (and nested `cmc.*`) names — the typed-view half of the
/// streaming `--stats` rendering path. Store semantics like
/// [`convoy_core::publish_fold_stats`]: the struct is the authoritative
/// lifetime view (it survives checkpoint/restore, which live-recorded
/// counters do not), so it overwrites whatever was live-recorded.
pub fn publish_stream_stats(registry: &Registry, stats: &StreamStats) {
    convoy_core::publish_fold_stats(registry, &stats.fold);
    registry.counter_store("stream.partitions_closed", stats.partitions_closed);
    registry.counter_store("stream.filter_candidates", stats.filter_candidates);
    registry.counter_store("stream.candidates_evicted", stats.candidates_evicted);
    registry.gauge_set(
        "stream.peak_filter_candidates",
        i64::try_from(stats.peak_filter_candidates).unwrap_or(i64::MAX),
    );
    registry.gauge_set(
        "stream.samples_buffered",
        i64::try_from(stats.samples_buffered).unwrap_or(i64::MAX),
    );
    registry.gauge_set(
        "stream.peak_samples_buffered",
        i64::try_from(stats.peak_samples_buffered).unwrap_or(i64::MAX),
    );
}

/// Reads the `stream.*` metrics back out of a snapshot — the inverse of
/// [`publish_stream_stats`].
pub fn stream_stats_from_snapshot(snapshot: &MetricsSnapshot) -> StreamStats {
    let gauge_usize = |name: &str| usize::try_from(snapshot.gauge(name)).unwrap_or(0);
    StreamStats {
        fold: convoy_core::fold_stats_from_snapshot(snapshot),
        partitions_closed: snapshot.counter("stream.partitions_closed"),
        filter_candidates: snapshot.counter("stream.filter_candidates"),
        peak_filter_candidates: gauge_usize("stream.peak_filter_candidates"),
        candidates_evicted: snapshot.counter("stream.candidates_evicted"),
        samples_buffered: gauge_usize("stream.samples_buffered"),
        peak_samples_buffered: gauge_usize("stream.peak_samples_buffered"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_policy_builders() {
        let policy = EvictionPolicy::unbounded();
        assert_eq!(policy.horizon, None);
        assert_eq!(policy.max_candidates, None);
        let policy = EvictionPolicy::unbounded()
            .with_horizon(50)
            .with_max_candidates(1000);
        assert_eq!(policy.horizon, Some(50));
        assert_eq!(policy.max_candidates, Some(1000));
    }

    #[test]
    fn config_clamps_lambda_and_chains_builders() {
        let query = ConvoyQuery::new(3, 5, 1.0);
        let config = StreamConfig::new(query, 0.5, 0)
            .with_variant(CutsVariant::CutsStar)
            .with_tolerance_mode(ToleranceMode::Global)
            .with_eviction(EvictionPolicy::unbounded().with_horizon(9));
        assert_eq!(config.lambda, 2);
        assert_eq!(config.step(), 1);
        assert_eq!(config.variant, CutsVariant::CutsStar);
        assert_eq!(config.tolerance_mode, ToleranceMode::Global);
        assert_eq!(config.eviction.horizon, Some(9));
        assert_eq!(StreamConfig::new(query, 0.5, 8).step(), 7);
    }

    #[test]
    fn stream_stats_publish_round_trips() {
        let stats = StreamStats {
            fold: CmcStats {
                peak_candidates: 7,
                ticks_ingested: 40,
                gap_closures: 2,
                convoys_closed: 3,
            },
            partitions_closed: 9,
            filter_candidates: 5,
            peak_filter_candidates: 4,
            candidates_evicted: 1,
            samples_buffered: 80,
            peak_samples_buffered: 120,
        };
        let registry = Registry::new();
        // Publishing over stale live-recorded values must overwrite them.
        registry.counter_add("stream.partitions_closed", 1000);
        publish_stream_stats(&registry, &stats);
        assert_eq!(stream_stats_from_snapshot(&registry.snapshot()), stats);
    }
}
