//! # `convoy_stream` — end-to-end streaming convoy discovery
//!
//! The batch CuTS pipeline (Jeung et al., PVLDB 2008) simplifies, filters
//! and refines over a complete trajectory database. This crate turns the
//! whole pipeline incremental, so convoys are discovered over a **live
//! feed** and emitted as soon as their chains close:
//!
//! ```text
//! ingest ──► λ-close ──► incremental filter ──► CmcState ──► drain
//! (feed      (sliding-    (shared partition      (coverage    (confirmed
//!  order      window DP    clustering +           fold +       convoys,
//!  checks)    per object)  candidate chain)       eviction)    StreamStats)
//! ```
//!
//! * [`ConvoyStream`] is the pipeline; samples go in through the
//!   [`FeedIngest`] API, confirmed convoys come out of
//!   [`ConvoyStream::drain`].
//! * [`StreamConfig`] fixes the query, CuTS variant, δ and λ;
//!   [`EvictionPolicy`] bounds the working set of an unbounded feed
//!   (age horizon + open-chain capacity).
//! * [`StreamStats`] reports the pipeline's counters, built on the
//!   refinement fold's [`convoy_core::CmcStats`].
//! * [`ReplayStream`] replays a finite database through the stream with the
//!   batch parameter selection — the bridge `tests/stream_equivalence.rs`
//!   uses to assert that a replay is **bit-identical** to batch
//!   [`convoy_core::Discovery`] output.
//!
//! The correctness contract and its proof sketch live in [`stream`] (module
//! docs) and [`convoy_core::cuts::refine`] (the coverage-fold restriction
//! theorem).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod buffer;
pub mod checkpoint;
pub mod config;
pub mod stream;

pub use checkpoint::CheckpointError;
pub use config::{
    publish_stream_stats, stream_stats_from_snapshot, EvictionPolicy, StreamConfig, StreamStats,
};
pub use stream::{
    feed_order_samples, replay_config, ConvoyStream, FeedIngest, ReplayStream, StreamOutcome,
};

#[cfg(test)]
mod tests {
    use super::*;
    use convoy_core::{ConvoyQuery, CutsVariant, Discovery, Method};
    use trajectory::{FeedError, ObjectId, Trajectory, TrajectoryDatabase};

    fn push_tick(stream: &mut ConvoyStream, t: i64, rows: &[(u64, f64, f64)]) {
        for &(id, x, y) in rows {
            stream.push(ObjectId(id), t, x, y).unwrap();
        }
    }

    #[test]
    fn convoy_confirms_mid_stream_not_only_at_finish() {
        // Objects 0 and 1 travel together for ticks 0..=9, then scatter for
        // ticks 10..=29. The confirmed convoy must be drainable long before
        // the feed ends.
        let config = StreamConfig::new(ConvoyQuery::new(2, 5, 1.0), 0.2, 4);
        let mut stream = ConvoyStream::new(config);
        let mut confirmed_at = None;
        for t in 0..30i64 {
            let spread = if t < 10 { 0.5 } else { 500.0 };
            push_tick(&mut stream, t, &[(0, t as f64, 0.0), (1, t as f64, spread)]);
            if confirmed_at.is_none() {
                let drained = stream.drain();
                if !drained.is_empty() {
                    assert_eq!(drained[0].interval(), trajectory::TimeInterval::new(0, 9));
                    confirmed_at = Some(t);
                }
            }
        }
        let confirmed_at = confirmed_at.expect("the convoy must confirm mid-stream");
        assert!(
            confirmed_at < 29,
            "confirmation at t={confirmed_at} should precede the end of the feed"
        );
        let outcome = stream.finish();
        assert!(outcome.convoys.is_empty(), "already drained");
        // The coarse candidate covering the convoy is an output too, and the
        // counter matches what was drained plus what finish() flushed.
        assert!(outcome
            .candidates
            .iter()
            .any(|c| c.start <= 0 && c.end >= 9));
        assert_eq!(
            outcome.stats.filter_candidates,
            outcome.candidates.len() as u64
        );
        assert!(outcome.stats.partitions_closed > 0);
        assert_eq!(outcome.stats.fold.convoys_closed, 1);
        assert!(
            outcome.stats.samples_buffered < 60,
            "trimming must shed folded samples"
        );
    }

    #[test]
    fn out_of_order_and_duplicate_samples_are_rejected_without_corruption() {
        let config = StreamConfig::new(ConvoyQuery::new(2, 3, 1.0), 0.2, 4);
        let mut stream = ConvoyStream::new(config);
        push_tick(&mut stream, 5, &[(0, 0.0, 0.0), (1, 0.0, 0.5)]);
        assert!(matches!(
            stream.push(ObjectId(0), 3, 1.0, 1.0),
            Err(FeedError::OutOfOrder { .. })
        ));
        assert!(matches!(
            stream.push(ObjectId(0), 5, 1.0, 1.0),
            Err(FeedError::DuplicateTimestamp { .. })
        ));
        assert!(matches!(
            stream.push(ObjectId(0), 6, f64::NAN, 1.0),
            Err(FeedError::NonFiniteCoordinate { .. })
        ));
        // The stream keeps working after rejections.
        for t in 6..12 {
            push_tick(&mut stream, t, &[(0, t as f64, 0.0), (1, t as f64, 0.5)]);
        }
        let outcome = stream.finish();
        assert_eq!(outcome.convoys.len(), 1);
        assert_eq!(outcome.convoys[0].start, 5);
        assert_eq!(outcome.convoys[0].end, 11);
    }

    #[test]
    fn replay_matches_batch_on_a_small_database() {
        let mut db = TrajectoryDatabase::new();
        for lane in 0..3u64 {
            db.insert(
                ObjectId(lane),
                Trajectory::from_tuples((0..25).map(|t| {
                    let jitter = if (t + lane as i64) % 2 == 0 {
                        0.1
                    } else {
                        -0.1
                    };
                    (t as f64, lane as f64 * 0.4 + jitter, t)
                }))
                .unwrap(),
            );
        }
        db.insert(
            ObjectId(9),
            Trajectory::from_tuples((0..25).map(|t| (t as f64, 300.0, t))).unwrap(),
        );
        let query = ConvoyQuery::new(3, 8, 1.5);
        for method in [Method::Cuts, Method::CutsPlus, Method::CutsStar] {
            let discovery = Discovery::new(method);
            let outcome = discovery.replay_stream(&db, &query);
            let batch = discovery.run(&db, &query);
            assert_eq!(
                convoy_core::normalize_convoys(outcome.convoys.clone(), &query),
                batch.convoys,
                "{method} replay diverged from batch"
            );
            assert_eq!(
                outcome.stats.fold, batch.stats.fold,
                "{method} fold counters diverged"
            );
            assert_eq!(outcome.stats.candidates_evicted, 0);
        }
    }

    #[test]
    fn variant_and_parameters_flow_into_the_stream() {
        let query = ConvoyQuery::new(2, 3, 1.0);
        let config = StreamConfig::new(query, 0.7, 6).with_variant(CutsVariant::CutsStar);
        let stream = ConvoyStream::new(config);
        assert_eq!(stream.config().variant, CutsVariant::CutsStar);
        assert_eq!(stream.config().delta, 0.7);
        assert_eq!(stream.config().lambda, 6);
        assert_eq!(stream.watermark(), None);
    }

    #[test]
    fn empty_and_single_sample_streams_finish_cleanly() {
        let query = ConvoyQuery::new(2, 3, 1.0);
        let outcome = ConvoyStream::new(StreamConfig::new(query, 0.5, 4)).finish();
        assert!(outcome.convoys.is_empty());
        assert_eq!(outcome.stats, StreamStats::default());

        let mut stream = ConvoyStream::new(StreamConfig::new(query, 0.5, 4));
        stream.push(ObjectId(1), 7, 0.0, 0.0).unwrap();
        let outcome = stream.finish();
        assert!(outcome.convoys.is_empty(), "one object can never reach m=2");
        assert_eq!(outcome.stats.partitions_closed, 1);
    }

    #[test]
    fn departed_objects_are_evicted_under_a_finite_horizon() {
        // Object churn: a retiring object must not pin its buffer forever
        // once it is severed past the horizon.
        let query = ConvoyQuery::new(2, 3, 1.0);
        let config = StreamConfig::new(query, 0.2, 3)
            .with_eviction(EvictionPolicy::unbounded().with_horizon(4));
        let mut stream = ConvoyStream::new(config);
        // o9 appears briefly alongside the long-lived pair, then never again.
        for t in 0..40i64 {
            push_tick(&mut stream, t, &[(0, t as f64, 0.0), (1, t as f64, 0.5)]);
            if t < 2 {
                stream
                    .push(ObjectId(9), t, 500.0, 500.0 + t as f64)
                    .unwrap();
            }
        }
        let outcome = stream.finish();
        // o9's two samples are gone from the buffers long before the end:
        // only the live pair's trimmed window remains.
        assert!(
            outcome.stats.samples_buffered <= 8,
            "severed object's buffer must be dropped, {} samples remain",
            outcome.stats.samples_buffered
        );
        // And the pair's convoys are unaffected by the churn.
        assert!(outcome
            .convoys
            .iter()
            .all(|c| !c.objects.contains(ObjectId(9))));
        assert!(!outcome.convoys.is_empty());
    }

    #[test]
    fn huge_horizon_with_negative_timestamps_matches_unbounded() {
        // Regression: the eviction cutoff `window.end - horizon` used raw
        // subtraction, which underflows for `horizon = i64::MAX` on a
        // negative-epoch feed (panic in debug, wrapping mis-eviction in
        // release). A horizon that large can never bind, so the run must be
        // identical to the unbounded one in both build profiles.
        let query = ConvoyQuery::new(2, 3, 1.0);
        let base = StreamConfig::new(query, 0.2, 4);
        let run = |config: StreamConfig| {
            let mut stream = ConvoyStream::new(config);
            for t in -100..-80i64 {
                push_tick(&mut stream, t, &[(0, t as f64, 0.0), (1, t as f64, 0.5)]);
            }
            stream.finish()
        };
        let unbounded = run(base);
        let huge = run(base.with_eviction(EvictionPolicy::unbounded().with_horizon(i64::MAX)));
        assert_eq!(huge, unbounded);
        assert_eq!(huge.stats.candidates_evicted, 0);
        assert_eq!(huge.convoys.len(), 1);
        assert_eq!(
            huge.convoys[0].interval(),
            trajectory::TimeInterval::new(-100, -81)
        );
    }

    #[test]
    fn horizon_caps_reported_convoy_lifetimes() {
        let query = ConvoyQuery::new(2, 3, 1.0);
        let config = StreamConfig::new(query, 0.2, 3)
            .with_eviction(EvictionPolicy::unbounded().with_horizon(6));
        let mut stream = ConvoyStream::new(config);
        for t in 0..30i64 {
            push_tick(&mut stream, t, &[(0, t as f64, 0.0), (1, t as f64, 0.5)]);
        }
        let outcome = stream.finish();
        assert!(
            outcome.convoys.len() > 1,
            "the horizon splits the long convoy"
        );
        assert!(
            outcome.convoys.iter().all(|c| c.lifetime() <= 6),
            "no reported chain may outlive the horizon: {:?}",
            outcome.convoys
        );
        assert!(outcome.stats.candidates_evicted > 0);
        // The splits tile the feed without overlap.
        for pair in outcome.convoys.windows(2) {
            assert_eq!(pair[0].end + 1, pair[1].start);
        }
    }
}
