//! The streaming pipeline: ingest → λ-close → incremental filter →
//! [`convoy_core::CmcState`] fold → drain.
//!
//! [`ConvoyStream`] accepts `(object, t, x, y)` samples in feed order and
//! emits confirmed convoys as their chains close. Internally it mirrors the
//! batch CuTS pipeline stage for stage:
//!
//! ```text
//! push(o, t, x, y)
//!   │  FeedValidator: global time order, per-object strict order
//!   ▼
//! ObjectBuffer per object              (samples_buffered)
//!   │  watermark passes a λ-partition end, every object resolved
//!   ▼
//! sliding-window DP  ──►  cluster_partition  ──►  CandidateChain
//!   │                        (shared with the batch filter)
//!   ▼
//! RefineFold: coverage-restricted CmcState fold, eviction hooks
//!   │
//!   ▼
//! drain() → confirmed convoys         (StreamStats)
//! ```
//!
//! **Correctness contract.** With an unbounded [`EvictionPolicy`], replaying
//! any finite database through the stream produces refinement output
//! bit-identical to batch [`Discovery`] with the same CuTS configuration —
//! raw convoy sequence and fold counters included — even though the
//! sliding-window simplification (and hence the filter's clusters and
//! candidates) may differ from the batch filter's. The coverage fold's
//! restriction theorem (see [`convoy_core::cuts::refine`]) is what absorbs
//! the difference. `tests/stream_equivalence.rs` locks the contract in.
//!
//! **Laggy objects and the horizon.** A λ-partition only closes once every
//! known object either has a sample at or past the partition end or has been
//! silent for more than the horizon (its gap is then *severed*: later
//! samples never interpolate across it). An unbounded horizon therefore
//! waits for stragglers indefinitely — the right semantics for a replay,
//! where [`ConvoyStream::finish`] settles everything — while a finite
//! horizon bounds both the wait and the buffered window on a live feed.

use crate::buffer::{bridgeable, ObjectBuffer};
use crate::config::{EvictionPolicy, StreamConfig, StreamStats};
use convoy_core::cuts::filter::simplify_database;
use convoy_core::{
    auto_delta, auto_lambda, cluster_partition, CandidateChain, CandidateConvoy, Convoy,
    ConvoyQuery, CutsConfig, Discovery, RefineFold,
};
use convoy_obs::{Obs, SpanId};
use std::collections::{BTreeMap, BTreeSet};
use traj_cluster::{SegmentDistance, SubTrajectory};
use traj_simplify::{SlidingDp, ToleranceMode};
use trajectory::{
    FeedError, FeedValidator, ObjectId, Snapshot, SnapshotEntry, TimeInterval, TimePoint,
};

/// The sample-ingest surface of a streaming discovery pipeline.
///
/// Samples must arrive in feed order (globally non-decreasing `t`, strictly
/// increasing per object); a rejected sample leaves the pipeline unchanged.
pub trait FeedIngest {
    /// Pushes one sample into the pipeline.
    fn push(&mut self, object: ObjectId, t: TimePoint, x: f64, y: f64) -> Result<(), FeedError>;

    /// The feed watermark: the largest timestamp accepted so far.
    fn watermark(&self) -> Option<TimePoint>;
}

/// The result of a finished stream: every convoy confirmed over its lifetime
/// (in confirmation order) plus the final counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// All confirmed convoys, in the order their chains closed.
    pub convoys: Vec<Convoy>,
    /// Coarse filter candidates not taken by
    /// [`ConvoyStream::drain_candidates`] before the stream finished.
    pub candidates: Vec<CandidateConvoy>,
    /// The stream's lifetime counters.
    pub stats: StreamStats,
}

/// End-to-end streaming convoy discovery over a live feed.
///
/// ```
/// use convoy_core::ConvoyQuery;
/// use convoy_stream::{ConvoyStream, FeedIngest, StreamConfig};
/// use trajectory::ObjectId;
///
/// let config = StreamConfig::new(ConvoyQuery::new(2, 3, 1.0), 0.2, 4);
/// let mut stream = ConvoyStream::new(config);
/// for t in 0..10 {
///     for o in 0..2u64 {
///         stream.push(ObjectId(o), t, t as f64, o as f64 * 0.5).unwrap();
///     }
/// }
/// let outcome = stream.finish();
/// assert_eq!(outcome.convoys.len(), 1);
/// assert_eq!(outcome.convoys[0].lifetime(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ConvoyStream {
    // Fields are `pub(crate)` so the sibling `checkpoint` module can export
    // and rebuild the resumable state without widening the public API.
    pub(crate) config: StreamConfig,
    pub(crate) sliding: SlidingDp,
    pub(crate) distance: SegmentDistance,
    pub(crate) mode: ToleranceMode,
    pub(crate) validator: FeedValidator,
    pub(crate) buffers: BTreeMap<ObjectId, ObjectBuffer>,
    /// Start of the lowest λ-partition not yet closed (`None` before the
    /// first sample anchors the partition grid).
    pub(crate) partition_start: Option<TimePoint>,
    /// The object last observed blocking a partition close (a straggler
    /// whose samples have not reached the partition end). Re-checking the
    /// cached straggler first makes the per-push close test O(1) amortized
    /// instead of a scan over every buffer while a partition is pending.
    /// Pure cache: `None` is always a valid value (the next `advance` falls
    /// back to the full scan), so checkpoints simply do not store it.
    pub(crate) blocker: Option<ObjectId>,
    pub(crate) chain: CandidateChain,
    pub(crate) fold: RefineFold,
    pub(crate) ready: Vec<Convoy>,
    pub(crate) ready_candidates: Vec<CandidateConvoy>,
    pub(crate) partitions_closed: u64,
    pub(crate) filter_candidates: u64,
    pub(crate) chain_evicted: u64,
    pub(crate) samples_buffered: usize,
    pub(crate) peak_samples_buffered: usize,
    /// Recorder for the `stream.*` metrics (no-op by default; one branch per
    /// push when disabled). Runtime-only: checkpoints do not store it.
    pub(crate) obs: Obs,
    /// Root span of the attached recorder ([`SpanId::NONE`] when no-op).
    pub(crate) root_span: SpanId,
    /// Recorder timestamp of [`ConvoyStream::set_obs`], the baseline of the
    /// one-shot `stream.time_to_first_convoy_ns` latency.
    pub(crate) start_ns: u64,
    /// True until the first convoy is emitted with a live recorder attached
    /// from a cold start. A restored stream suppresses the metric: its first
    /// convoy may long predate the resume.
    pub(crate) ttfc_pending: bool,
}

impl ConvoyStream {
    /// Creates an empty stream for `config`.
    pub fn new(config: StreamConfig) -> Self {
        let EvictionPolicy {
            horizon,
            max_candidates,
        } = config.eviction;
        ConvoyStream {
            sliding: SlidingDp::new(config.variant.simplification(), config.delta),
            distance: config.variant.segment_distance(),
            mode: config.tolerance_mode,
            validator: FeedValidator::new(),
            buffers: BTreeMap::new(),
            partition_start: None,
            blocker: None,
            chain: CandidateChain::new(&config.query),
            fold: RefineFold::with_eviction(&config.query, horizon, max_candidates),
            ready: Vec::new(),
            ready_candidates: Vec::new(),
            partitions_closed: 0,
            filter_candidates: 0,
            chain_evicted: 0,
            samples_buffered: 0,
            peak_samples_buffered: 0,
            obs: Obs::noop(),
            root_span: SpanId::NONE,
            start_ns: 0,
            ttfc_pending: false,
            config,
        }
    }

    /// Attaches a recorder: subsequent pushes record the `stream.*` ingest
    /// and latency metrics, partition closes get `stream.partition` spans
    /// under a `stream` root span, and the refinement fold records its
    /// `cmc.*` counters. Replaces any previous recorder (each attachment
    /// starts its own root span and latency baseline).
    pub fn set_obs(&mut self, obs: Obs) {
        self.fold.set_obs(obs.clone());
        self.root_span = obs.span_start("stream", SpanId::NONE);
        self.start_ns = obs.now_ns();
        // Time-to-first-convoy is only meaningful from a cold start; a
        // restored or mid-feed stream (watermark already set) suppresses it.
        self.ttfc_pending = obs.enabled() && self.validator.watermark().is_none();
        self.obs = obs;
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Convoys confirmed since the last drain, in confirmation order.
    pub fn drain(&mut self) -> Vec<Convoy> {
        std::mem::take(&mut self.ready)
    }

    /// Coarse filter candidates (λ-partition granularity, the same
    /// population the batch filter's
    /// [`convoy_core::cuts::filter::FilterOutput::candidates`] reports)
    /// closed since the last drain.
    ///
    /// Candidates surface one λ-partition *before* the refined convoys they
    /// cover, so they make a cheap early-warning signal — "a group has
    /// plausibly been travelling together for ≥ k ticks" — while the
    /// refinement is still verifying tick-level density connection. They
    /// deliberately do **not** gate the refinement fold: exactness requires
    /// the fold's coverage to come from whole partition clusters (see
    /// [`convoy_core::cuts::refine`]), not from the intersected chains.
    pub fn drain_candidates(&mut self) -> Vec<CandidateConvoy> {
        std::mem::take(&mut self.ready_candidates)
    }

    /// The stream's counters so far.
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            fold: self.fold.stats(),
            partitions_closed: self.partitions_closed,
            filter_candidates: self.filter_candidates,
            peak_filter_candidates: self.chain.peak_open(),
            candidates_evicted: self.fold.evicted() + self.chain_evicted,
            samples_buffered: self.samples_buffered,
            peak_samples_buffered: self.peak_samples_buffered,
        }
    }

    /// Returns `true` when the silent object can no longer bridge to any
    /// future sample: even a sample arriving *right now* (at the watermark)
    /// would straddle a gap the horizon forbids. Exactly the negation of the
    /// interpolation rule, so the partition-close logic and the snapshot
    /// builder can never disagree about a gap.
    fn severed(last: TimePoint, watermark: TimePoint, horizon: Option<TimePoint>) -> bool {
        !bridgeable(last, watermark, horizon)
    }

    /// Returns `true` when the object still blocks closing a partition at
    /// `end`: its samples have not reached `end` and a future sample could
    /// still bridge into the window (not severed by the horizon).
    fn blocks(&self, id: ObjectId, end: TimePoint, watermark: TimePoint) -> bool {
        let horizon = self.config.eviction.horizon;
        self.buffers
            .get(&id)
            .is_some_and(|b| b.last_t() < end && !Self::severed(b.last_t(), watermark, horizon))
    }

    /// Finds an object blocking the close of partition `[.., end]`, if any.
    fn find_blocker(&self, end: TimePoint, watermark: TimePoint) -> Option<ObjectId> {
        let horizon = self.config.eviction.horizon;
        self.buffers
            .iter()
            .find(|(_, b)| b.last_t() < end && !Self::severed(b.last_t(), watermark, horizon))
            .map(|(&id, _)| id)
    }

    /// Closes every partition the watermark (and object resolution) allows.
    fn advance(&mut self, watermark: TimePoint) {
        let step = self.config.step();
        while let Some(start) = self.partition_start {
            // A partition grid anchored near i64::MAX runs out of axis: a
            // window that cannot even be represented can never complete.
            let Some(end) = start.checked_add(step) else {
                break;
            };
            // Samples at `end` may still arrive while the watermark sits on
            // it; wait.
            if watermark <= end {
                break;
            }
            // An unresolved straggler could still bridge into the window.
            // Re-check the cached straggler first — O(1) on the common path
            // where one laggy object holds the partition open — and only
            // fall back to the full scan once it resolves.
            if let Some(blocker) = self.blocker {
                if self.blocks(blocker, end, watermark) {
                    break;
                }
                self.blocker = None;
            }
            if let Some(blocker) = self.find_blocker(end, watermark) {
                self.blocker = Some(blocker);
                break;
            }
            self.close_partition(TimeInterval::new(start, end));
            self.partition_start = Some(end);
        }
    }

    /// Clusters one closed λ-partition, folds it into the candidate chain
    /// and the refinement fold, and applies eviction.
    fn close_partition(&mut self, window: TimeInterval) {
        let live = self.obs.enabled();
        let span = if live {
            self.obs.span_start("stream.partition", self.root_span)
        } else {
            SpanId::NONE
        };
        let started_ns = if live { self.obs.now_ns() } else { 0 };
        let evicted_before = if live {
            self.fold.evicted().saturating_add(self.chain_evicted)
        } else {
            0
        };
        let horizon = self.config.eviction.horizon;

        // Sliding-window DP per object: the λ-partition completed, so every
        // simplified segment intersecting it can now be closed.
        let mut items: Vec<SubTrajectory> = Vec::new();
        for (&id, buffer) in &self.buffers {
            let mut segments = Vec::new();
            for run in buffer.runs_for_window(window.start, window.end, horizon) {
                let Some(simplified) = self.sliding.close_window(run) else {
                    continue;
                };
                if let Some(sub) = SubTrajectory::for_window(id, &simplified, window) {
                    segments.extend(sub.segments);
                }
            }
            if !segments.is_empty() {
                items.push(SubTrajectory {
                    object: id,
                    segments,
                    global_tolerance: self.config.delta,
                });
            }
        }

        let clustered =
            cluster_partition(window, &items, &self.config.query, self.distance, self.mode);

        // Coarse candidate chain (the chaining half of Algorithm 2), with
        // horizon eviction so an unbounded feed cannot hoard old chains.
        // Candidates are an *output* (drain_candidates) and a counter — they
        // never gate the refinement, whose coverage must see whole partition
        // clusters to stay exact.
        self.chain.fold(&clustered);
        if let Some(h) = horizon {
            // `window.end - h` underflows for huge horizons on negative-epoch
            // feeds; a cutoff below the representable time axis evicts
            // nothing, which is exactly the saturating semantics we want.
            if let Some(cutoff) = window.end.checked_sub(h) {
                self.chain_evicted += self.chain.close_started_before(cutoff) as u64;
            }
        }
        let closed_candidates = self.chain.drain_closed();
        self.filter_candidates += closed_candidates.len() as u64;
        self.ready_candidates.extend(closed_candidates);

        // Refinement: the shared coverage fold, reading positions from the
        // ingest buffers with the same severing rule the filter used.
        let buffers = &self.buffers;
        let mut snapshot_at = |t: TimePoint, coverage: &BTreeSet<ObjectId>| {
            snapshot_from_buffers(buffers, t, coverage, horizon)
        };
        self.fold.push_partition(&clustered, &mut snapshot_at);
        let emitted = self.fold.drain_closed();
        if live {
            let watermark = self.validator.watermark();
            note_emissions(
                &self.obs,
                &mut self.ttfc_pending,
                self.start_ns,
                watermark,
                &emitted,
            );
        }
        self.ready.extend(emitted);

        // The fold has consumed every tick before `window.end`; drop samples
        // older than the bracket needed for the boundary tick and the next
        // partition.
        let mut dropped = 0;
        for buffer in self.buffers.values_mut() {
            dropped += buffer.trim_before(window.end);
        }
        // Object churn on a long-lived feed must not grow state forever: a
        // severed object whose samples all precede the pending boundary tick
        // can never again contribute a position, a sub-trajectory segment or
        // a partition-close blocker, so its buffer goes entirely (it is
        // re-admitted as a fresh appearance if it ever returns). The feed
        // validator's per-object memory compacts on the same schedule.
        if horizon.is_some() {
            let watermark = self.validator.watermark().unwrap_or(window.end);
            self.buffers.retain(|_, buffer| {
                let gone = buffer.last_t() < window.end
                    && !bridgeable(buffer.last_t(), watermark, horizon);
                if gone {
                    dropped += buffer.len();
                }
                !gone
            });
        }
        self.validator.compact();
        self.samples_buffered -= dropped;
        self.partitions_closed += 1;
        if live {
            let close_ns = self.obs.now_ns().saturating_sub(started_ns);
            self.obs
                .histogram_record("stream.partition_close_ns", close_ns);
            self.obs.counter_add("stream.partitions_closed", 1);
            let evicted_now = self
                .fold
                .evicted()
                .saturating_add(self.chain_evicted)
                .saturating_sub(evicted_before);
            if evicted_now > 0 {
                self.obs
                    .counter_add("stream.candidates_evicted", evicted_now);
            }
            self.obs.span_end(span);
        }
    }

    /// Ends the feed: closes every remaining λ-partition up to the
    /// watermark, flushes the candidate chain and the refinement fold, and
    /// returns every convoy not yet drained plus the final counters.
    pub fn finish(mut self) -> StreamOutcome {
        if let (Some(mut start), Some(watermark)) =
            (self.partition_start, self.validator.watermark())
        {
            // Close the remaining partitions exactly the way
            // `trajectory::TimePartition` tiles a finite domain: full
            // λ-windows, the last one clipped to the watermark.
            let step = self.config.step();
            loop {
                // `start + step` saturates to the watermark when the grid
                // overruns the time axis (the final clipped window).
                let end = start
                    .checked_add(step)
                    .map_or(watermark, |e| e.min(watermark));
                self.close_partition(TimeInterval::new(start, end));
                self.partition_start = Some(end);
                if end >= watermark {
                    break;
                }
                start = end;
            }
        }

        let final_watermark = self.validator.watermark();
        let ConvoyStream {
            config,
            buffers,
            chain,
            fold,
            mut ready,
            mut ready_candidates,
            mut filter_candidates,
            partitions_closed,
            chain_evicted,
            samples_buffered,
            peak_samples_buffered,
            obs,
            root_span,
            start_ns,
            mut ttfc_pending,
            ..
        } = self;

        let peak_filter_candidates = chain.peak_open();
        let final_candidates = chain.finish();
        filter_candidates += final_candidates.len() as u64;
        ready_candidates.extend(final_candidates);

        let horizon = config.eviction.horizon;
        let mut snapshot_at = |t: TimePoint, coverage: &BTreeSet<ObjectId>| {
            snapshot_from_buffers(&buffers, t, coverage, horizon)
        };
        let outcome = fold.finish(&mut snapshot_at);
        if obs.enabled() {
            note_emissions(
                &obs,
                &mut ttfc_pending,
                start_ns,
                final_watermark,
                &outcome.convoys,
            );
            obs.span_end(root_span);
        }
        ready.extend(outcome.convoys);
        StreamOutcome {
            convoys: ready,
            candidates: ready_candidates,
            stats: StreamStats {
                fold: outcome.stats,
                partitions_closed,
                filter_candidates,
                peak_filter_candidates,
                candidates_evicted: outcome.evicted + chain_evicted,
                samples_buffered,
                peak_samples_buffered,
            },
        }
    }
}

impl FeedIngest for ConvoyStream {
    fn push(&mut self, object: ObjectId, t: TimePoint, x: f64, y: f64) -> Result<(), FeedError> {
        if let Err(e) = self.validator.admit(object, t, x, y) {
            self.obs.counter_add("stream.samples_rejected", 1);
            return Err(e);
        }
        self.buffers
            .entry(object)
            .or_default()
            .push(trajectory::TrajPoint::new(x, y, t));
        self.samples_buffered += 1;
        self.peak_samples_buffered = self.peak_samples_buffered.max(self.samples_buffered);
        if self.partition_start.is_none() {
            self.partition_start = Some(t);
        }
        self.advance(t);
        if self.obs.enabled() {
            self.obs.counter_add("stream.samples_ingested", 1);
            // Occupancy after `advance`: partition closes trim buffers, so
            // this gauge tracks what the stream actually holds right now.
            let buffered = i64::try_from(self.samples_buffered).unwrap_or(i64::MAX);
            self.obs.gauge_set("stream.samples_buffered", buffered);
            self.obs.gauge_max("stream.peak_samples_buffered", buffered);
        }
        Ok(())
    }

    fn watermark(&self) -> Option<TimePoint> {
        self.validator.watermark()
    }
}

/// Records the emission-latency metrics for a batch of just-confirmed
/// convoys: one `stream.emission_delay_ticks` histogram sample per convoy
/// (feed watermark minus the convoy's last tick — how long the pipeline sat
/// on the result waiting for its chain to close) and, once per stream
/// lifetime, the `stream.time_to_first_convoy_ns` wall-clock latency from
/// recorder attachment to first confirmation.
fn note_emissions(
    obs: &Obs,
    ttfc_pending: &mut bool,
    start_ns: u64,
    watermark: Option<TimePoint>,
    emitted: &[Convoy],
) {
    if emitted.is_empty() {
        return;
    }
    if *ttfc_pending {
        *ttfc_pending = false;
        obs.counter_add(
            "stream.time_to_first_convoy_ns",
            obs.now_ns().saturating_sub(start_ns),
        );
    }
    let Some(watermark) = watermark else {
        return;
    };
    for convoy in emitted {
        let delay = watermark.saturating_sub(convoy.end).max(0);
        obs.histogram_record("stream.emission_delay_ticks", delay as u64);
    }
}

/// Builds the coverage-restricted snapshot of tick `t` from the ingest
/// buffers: entries in ascending object order, positions via the shared
/// virtual-point arithmetic — bit-identical to
/// [`convoy_core::restrict_snapshot`] applied to a database snapshot, as
/// long as the bracketing samples are buffered (the partition close rules
/// guarantee they are) and no gap exceeds the horizon.
fn snapshot_from_buffers(
    buffers: &BTreeMap<ObjectId, ObjectBuffer>,
    t: TimePoint,
    coverage: &BTreeSet<ObjectId>,
    horizon: Option<TimePoint>,
) -> Snapshot {
    let mut entries = Vec::with_capacity(coverage.len());
    for &id in coverage {
        let Some(buffer) = buffers.get(&id) else {
            continue;
        };
        if let Some((position, interpolated)) = buffer.position_at(t, horizon) {
            entries.push(SnapshotEntry {
                id,
                position,
                interpolated,
            });
        }
    }
    Snapshot { time: t, entries }
}

/// Derives a replay [`StreamConfig`] from a batch CuTS configuration
/// exactly the way [`Discovery::run`] selects its parameters: explicit δ/λ
/// win, the Section 7.4 guidelines fill the gaps. Shared by
/// [`ReplayStream`] and the CLI's file-replay mode so their parameters can
/// never drift apart.
pub fn replay_config(
    cuts: &CutsConfig,
    db: &trajectory::TrajectoryDatabase,
    query: &ConvoyQuery,
) -> StreamConfig {
    let delta = cuts.delta.unwrap_or_else(|| auto_delta(db, query.e));
    let lambda = cuts.lambda.unwrap_or_else(|| {
        let simplified = simplify_database(db, cuts, delta);
        auto_lambda(simplified.iter().map(|(_, s)| s), query.k)
    });
    StreamConfig::new(*query, delta, lambda)
        .with_variant(cuts.variant)
        .with_tolerance_mode(cuts.tolerance_mode)
}

/// Every sample of `db` in feed order (ascending time, object id breaking
/// ties) — the order a replay pushes them.
pub fn feed_order_samples(
    db: &trajectory::TrajectoryDatabase,
) -> Vec<(ObjectId, trajectory::TrajPoint)> {
    let mut samples = db.all_samples();
    samples.sort_by_key(|(id, p)| (p.t, *id));
    samples
}

/// Replays a finite trajectory database through the streaming pipeline,
/// deriving δ and λ exactly like the batch [`Discovery`] run would — the
/// bridge the equivalence harness uses to compare the two pipelines.
pub trait ReplayStream {
    /// Pushes every sample of `db` in feed order through a [`ConvoyStream`]
    /// configured like this discovery (unbounded eviction) and finishes it.
    fn replay_stream(
        &self,
        db: &trajectory::TrajectoryDatabase,
        query: &ConvoyQuery,
    ) -> StreamOutcome;
}

impl ReplayStream for Discovery {
    fn replay_stream(
        &self,
        db: &trajectory::TrajectoryDatabase,
        query: &ConvoyQuery,
    ) -> StreamOutcome {
        let mut stream = ConvoyStream::new(replay_config(self.config(), db, query));
        for (id, p) in feed_order_samples(db) {
            stream
                .push(id, p.t, p.x, p.y)
                // lint: allow(no-unwrap-in-lib) — replaying an already-validated database cannot fail feed validation
                .expect("database samples form a valid feed");
        }
        stream.finish()
    }
}
