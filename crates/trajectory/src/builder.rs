//! Incremental construction of trajectories.

use crate::error::Result;
use crate::point::TrajPoint;
use crate::time::TimePoint;
use crate::trajectory::Trajectory;

/// An incremental builder for [`Trajectory`] values.
///
/// Points may be pushed in any order; they are sorted by timestamp when the
/// trajectory is finalised. Duplicate timestamps are resolved by keeping the
/// **last** pushed sample for that timestamp, which matches how GPS feeds are
/// usually de-duplicated (later fix wins).
///
/// ```
/// use trajectory::TrajectoryBuilder;
///
/// let traj = TrajectoryBuilder::new()
///     .push(0.0, 0.0, 2)
///     .push(1.0, 1.0, 0)
///     .push(0.5, 0.5, 1)
///     .build()
///     .unwrap();
/// assert_eq!(traj.start_time(), 0);
/// assert_eq!(traj.end_time(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrajectoryBuilder {
    points: Vec<TrajPoint>,
}

impl TrajectoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TrajectoryBuilder { points: Vec::new() }
    }

    /// Creates an empty builder with space reserved for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        TrajectoryBuilder {
            points: Vec::with_capacity(capacity),
        }
    }

    /// Adds a sample. Returns `self` for chaining.
    #[must_use]
    pub fn push(mut self, x: f64, y: f64, t: TimePoint) -> Self {
        self.points.push(TrajPoint::new(x, y, t));
        self
    }

    /// Adds a sample through a mutable reference (non-chaining form).
    pub fn add(&mut self, x: f64, y: f64, t: TimePoint) -> &mut Self {
        self.points.push(TrajPoint::new(x, y, t));
        self
    }

    /// Adds an already-constructed point.
    pub fn add_point(&mut self, p: TrajPoint) -> &mut Self {
        self.points.push(p);
        self
    }

    /// Number of samples currently buffered.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no samples have been buffered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Finalises the builder into a [`Trajectory`], sorting samples by time
    /// and de-duplicating equal timestamps (**last sample wins** — a later
    /// duplicate is treated as a correction of the earlier fix). This is the
    /// batch half of the suite's duplicate policy; the streaming
    /// [`crate::FeedValidator`] takes the opposite stance and *rejects* a
    /// duplicate timestamp, because a live feed cannot retract what it has
    /// already emitted (see [`crate::FeedError::DuplicateTimestamp`]).
    pub fn build(mut self) -> Result<Trajectory> {
        // Stable sort preserves push order among equal timestamps, so keeping
        // the last occurrence implements "later fix wins".
        self.points.sort_by_key(|p| p.t);
        let mut deduped: Vec<TrajPoint> = Vec::with_capacity(self.points.len());
        for p in self.points {
            match deduped.last_mut() {
                Some(last) if last.t == p.t => *last = p,
                _ => deduped.push(p),
            }
        }
        Trajectory::from_points(deduped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TrajectoryError;

    #[test]
    fn builds_sorted_trajectory() {
        let t = TrajectoryBuilder::new()
            .push(2.0, 2.0, 2)
            .push(0.0, 0.0, 0)
            .push(1.0, 1.0, 1)
            .build()
            .unwrap();
        assert_eq!(t.sample_times().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_timestamps_keep_last_pushed() {
        let t = TrajectoryBuilder::new()
            .push(0.0, 0.0, 0)
            .push(9.0, 9.0, 1)
            .push(1.0, 1.0, 1)
            .build()
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.sample_at(1).unwrap().x, 1.0);
    }

    #[test]
    fn empty_builder_errors() {
        assert_eq!(
            TrajectoryBuilder::new().build().unwrap_err(),
            TrajectoryError::EmptyTrajectory
        );
    }

    #[test]
    fn mutable_add_interface() {
        let mut b = TrajectoryBuilder::with_capacity(3);
        b.add(0.0, 0.0, 0).add(1.0, 0.0, 1);
        b.add_point(TrajPoint::new(2.0, 0.0, 2));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let t = b.build().unwrap();
        assert_eq!(t.len(), 3);
    }
}
