//! The trajectory database: a collection of object trajectories with snapshot
//! extraction, the substrate every discovery algorithm operates on.

use crate::error::{Result, TrajectoryError};
use crate::geometry::point::Point;
use crate::point::TrajPoint;
use crate::stats::DatasetStats;
use crate::time::{TimeInterval, TimePoint};
use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a moving object. Wrapping `u64` in a newtype keeps object
/// ids from being confused with cluster ids or candidate indices.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// How [`TrajectoryDatabase::snapshot`] treats objects whose time interval
/// covers the snapshot time but that have no exact sample there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotPolicy {
    /// Include such objects at a linearly interpolated *virtual point*
    /// (the behaviour CMC requires, Section 4 of the paper).
    Interpolate,
    /// Only include objects with an exact sample at the snapshot time.
    ExactOnly,
}

/// One object's position within a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// The object the position belongs to.
    pub id: ObjectId,
    /// The position at the snapshot time.
    pub position: Point,
    /// `true` when the position was linearly interpolated rather than sampled.
    pub interpolated: bool,
}

/// The set `O_t` of object positions at one time point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Snapshot {
    /// The snapshot time.
    pub time: TimePoint,
    /// Object positions, ordered by object id.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Number of objects present in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no object is present at this time.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.entries.iter().map(|e| (e.id, e.position))
    }

    /// Looks up the position of a specific object.
    pub fn position_of(&self, id: ObjectId) -> Option<Point> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .map(|i| self.entries[i].position)
    }
}

/// A collection of object trajectories keyed by [`ObjectId`].
///
/// Iteration order is deterministic (ascending object id), which keeps every
/// algorithm in the stack reproducible run-to-run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryDatabase {
    objects: BTreeMap<ObjectId, Trajectory>,
}

impl TrajectoryDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        TrajectoryDatabase {
            objects: BTreeMap::new(),
        }
    }

    /// Inserts a trajectory for `id`, replacing any previous trajectory for
    /// the same object.
    pub fn insert(&mut self, id: ObjectId, trajectory: Trajectory) {
        self.objects.insert(id, trajectory);
    }

    /// Inserts a trajectory for `id`, erroring when the object already exists.
    pub fn try_insert(&mut self, id: ObjectId, trajectory: Trajectory) -> Result<()> {
        if self.objects.contains_key(&id) {
            return Err(TrajectoryError::DuplicateObject { id: id.0 });
        }
        self.objects.insert(id, trajectory);
        Ok(())
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` when the database holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Looks up the trajectory of `id`.
    pub fn get(&self, id: ObjectId) -> Option<&Trajectory> {
        self.objects.get(&id)
    }

    /// Like [`TrajectoryDatabase::get`] but returns an error for unknown ids.
    pub fn try_get(&self, id: ObjectId) -> Result<&Trajectory> {
        self.objects
            .get(&id)
            .ok_or(TrajectoryError::UnknownObject { id: id.0 })
    }

    /// Removes an object's trajectory, returning it if present.
    pub fn remove(&mut self, id: ObjectId) -> Option<Trajectory> {
        self.objects.remove(&id)
    }

    /// Returns `true` when the object is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Iterates over `(id, trajectory)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Trajectory)> + '_ {
        self.objects.iter().map(|(id, t)| (*id, t))
    }

    /// All object ids in ascending order.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }

    /// Builds a sub-database containing only the listed objects (unknown ids
    /// are silently skipped). Used by the CuTS refinement step to restrict
    /// CMC to a candidate's member objects.
    pub fn subset<I>(&self, ids: I) -> TrajectoryDatabase
    where
        I: IntoIterator<Item = ObjectId>,
    {
        let mut db = TrajectoryDatabase::new();
        for id in ids {
            if let Some(t) = self.objects.get(&id) {
                db.insert(id, t.clone());
            }
        }
        db
    }

    /// The time domain spanned by the database: the hull of every
    /// trajectory's time interval. `None` for an empty database.
    pub fn time_domain(&self) -> Option<TimeInterval> {
        let mut iter = self.objects.values();
        let first = iter.next()?.time_interval();
        Some(iter.fold(first, |acc, t| acc.hull(&t.time_interval())))
    }

    /// The set `O_t` of object positions at time `t` (Algorithm 1, line 4).
    ///
    /// With [`SnapshotPolicy::Interpolate`], any object whose interval covers
    /// `t` contributes a (possibly virtual) position; with
    /// [`SnapshotPolicy::ExactOnly`] only exact samples are reported.
    pub fn snapshot(&self, t: TimePoint, policy: SnapshotPolicy) -> Snapshot {
        let mut entries = Vec::new();
        for (id, traj) in self.iter() {
            if !traj.covers(t) {
                continue;
            }
            match policy {
                SnapshotPolicy::Interpolate => {
                    if let Some(position) = traj.location_at(t) {
                        entries.push(SnapshotEntry {
                            id,
                            position,
                            interpolated: !traj.has_sample_at(t),
                        });
                    }
                }
                SnapshotPolicy::ExactOnly => {
                    if let Some(p) = traj.sample_at(t) {
                        entries.push(SnapshotEntry {
                            id,
                            position: p.position(),
                            interpolated: false,
                        });
                    }
                }
            }
        }
        Snapshot { time: t, entries }
    }

    /// Streams the snapshots of `window` from one time-ordered pass over all
    /// samples — amortized O(total samples + objects × time points), versus
    /// one binary search per object per tick for repeated
    /// [`TrajectoryDatabase::snapshot`] calls. The yielded snapshots are
    /// identical to per-tick extraction.
    pub fn sweep_window(
        &self,
        window: TimeInterval,
        policy: SnapshotPolicy,
    ) -> crate::sweep::SnapshotSweep<'_> {
        crate::sweep::SnapshotSweep::new(self, window, policy)
    }

    /// Like [`TrajectoryDatabase::sweep_window`] over the whole time domain.
    /// An empty database yields no snapshots.
    pub fn sweep(&self, policy: SnapshotPolicy) -> crate::sweep::SnapshotSweep<'_> {
        match self.time_domain() {
            Some(window) => crate::sweep::SnapshotSweep::new(self, window, policy),
            None => crate::sweep::SnapshotSweep::empty(policy),
        }
    }

    /// Total number of stored samples across all trajectories (the "data
    /// size (points)" row of Table 3).
    pub fn total_points(&self) -> usize {
        self.objects.values().map(|t| t.len()).sum()
    }

    /// Dataset statistics in the shape of the paper's Table 3.
    pub fn stats(&self) -> DatasetStats {
        let num_objects = self.len();
        let total_points = self.total_points();
        let time_domain = self.time_domain();
        let time_domain_length = time_domain.map(|d| d.num_points()).unwrap_or(0);
        let average_trajectory_length = if num_objects == 0 {
            0.0
        } else {
            total_points as f64 / num_objects as f64
        };
        DatasetStats {
            num_objects,
            time_domain_length,
            average_trajectory_length,
            total_points,
        }
    }

    /// Restricts every trajectory to `interval` (dropping objects that have
    /// no samples inside it). Used to window the refinement step.
    pub fn restrict(&self, interval: TimeInterval) -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        for (id, traj) in self.iter() {
            if let Some(slice) = traj.slice(interval) {
                db.insert(id, slice);
            }
        }
        db
    }

    /// Collects every `(id, sample)` pair, useful for exporting.
    pub fn all_samples(&self) -> Vec<(ObjectId, TrajPoint)> {
        let mut out = Vec::with_capacity(self.total_points());
        for (id, traj) in self.iter() {
            for p in traj.points() {
                out.push((id, *p));
            }
        }
        out
    }
}

impl FromIterator<(ObjectId, Trajectory)> for TrajectoryDatabase {
    fn from_iter<I: IntoIterator<Item = (ObjectId, Trajectory)>>(iter: I) -> Self {
        let mut db = TrajectoryDatabase::new();
        for (id, t) in iter {
            db.insert(id, t);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pts: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::from_tuples(pts.iter().copied()).unwrap()
    }

    fn sample_db() -> TrajectoryDatabase {
        let mut db = TrajectoryDatabase::new();
        // o1: fully sampled on [0, 4]
        db.insert(
            ObjectId(1),
            traj(&[
                (0.0, 0.0, 0),
                (1.0, 0.0, 1),
                (2.0, 0.0, 2),
                (3.0, 0.0, 3),
                (4.0, 0.0, 4),
            ]),
        );
        // o2: missing t=2 (irregular sampling)
        db.insert(
            ObjectId(2),
            traj(&[(0.0, 1.0, 0), (1.0, 1.0, 1), (3.0, 1.0, 3), (4.0, 1.0, 4)]),
        );
        // o3: only appears from t=2
        db.insert(
            ObjectId(3),
            traj(&[(2.0, 5.0, 2), (3.0, 5.0, 3), (4.0, 5.0, 4)]),
        );
        db
    }

    #[test]
    fn insert_get_remove() {
        let mut db = sample_db();
        assert_eq!(db.len(), 3);
        assert!(db.contains(ObjectId(2)));
        assert!(db.get(ObjectId(9)).is_none());
        assert_eq!(
            db.try_get(ObjectId(9)).unwrap_err(),
            TrajectoryError::UnknownObject { id: 9 }
        );
        assert!(db.remove(ObjectId(2)).is_some());
        assert_eq!(db.len(), 2);
        assert!(!db.contains(ObjectId(2)));
    }

    #[test]
    fn try_insert_rejects_duplicates() {
        let mut db = sample_db();
        let err = db
            .try_insert(ObjectId(1), traj(&[(0.0, 0.0, 0)]))
            .unwrap_err();
        assert_eq!(err, TrajectoryError::DuplicateObject { id: 1 });
        // Plain insert replaces.
        db.insert(ObjectId(1), traj(&[(9.0, 9.0, 0)]));
        assert_eq!(db.get(ObjectId(1)).unwrap().len(), 1);
    }

    #[test]
    fn time_domain_is_hull_of_intervals() {
        let db = sample_db();
        assert_eq!(db.time_domain(), Some(TimeInterval::new(0, 4)));
        assert_eq!(TrajectoryDatabase::new().time_domain(), None);
    }

    #[test]
    fn snapshot_interpolates_missing_samples() {
        let db = sample_db();
        let snap = db.snapshot(2, SnapshotPolicy::Interpolate);
        assert_eq!(snap.len(), 3);
        // o2 has no sample at t=2: interpolated between t=1 (1,1) and t=3 (3,1).
        let o2 = snap
            .entries
            .iter()
            .find(|e| e.id == ObjectId(2))
            .expect("o2 present");
        assert!(o2.interpolated);
        assert_eq!(o2.position, Point::new(2.0, 1.0));
        // o1 has an exact sample.
        let o1 = snap.entries.iter().find(|e| e.id == ObjectId(1)).unwrap();
        assert!(!o1.interpolated);
    }

    #[test]
    fn snapshot_exact_only_skips_missing() {
        let db = sample_db();
        let snap = db.snapshot(2, SnapshotPolicy::ExactOnly);
        let ids: Vec<_> = snap.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ObjectId(1), ObjectId(3)]);
    }

    #[test]
    fn snapshot_excludes_objects_outside_their_interval() {
        let db = sample_db();
        let snap = db.snapshot(1, SnapshotPolicy::Interpolate);
        // o3 only exists from t=2.
        assert!(snap.position_of(ObjectId(3)).is_none());
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn snapshot_position_lookup() {
        let db = sample_db();
        let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
        assert_eq!(snap.position_of(ObjectId(1)), Some(Point::new(0.0, 0.0)));
        assert_eq!(snap.position_of(ObjectId(2)), Some(Point::new(0.0, 1.0)));
        assert_eq!(snap.position_of(ObjectId(99)), None);
    }

    #[test]
    fn subset_and_restrict() {
        let db = sample_db();
        let sub = db.subset([ObjectId(1), ObjectId(3), ObjectId(42)]);
        assert_eq!(sub.len(), 2);
        let restricted = db.restrict(TimeInterval::new(3, 4));
        assert_eq!(restricted.len(), 3);
        for (_, t) in restricted.iter() {
            assert!(t.start_time() >= 3);
        }
        // Restricting to a window nobody covers drops everything.
        assert!(db.restrict(TimeInterval::new(100, 200)).is_empty());
    }

    #[test]
    fn stats_match_table3_shape() {
        let db = sample_db();
        let stats = db.stats();
        assert_eq!(stats.num_objects, 3);
        assert_eq!(stats.time_domain_length, 5);
        assert_eq!(stats.total_points, 12);
        assert!((stats.average_trajectory_length - 4.0).abs() < 1e-12);
        // Empty database statistics are all zero.
        let empty = TrajectoryDatabase::new().stats();
        assert_eq!(empty.num_objects, 0);
        assert_eq!(empty.time_domain_length, 0);
        assert_eq!(empty.total_points, 0);
    }

    #[test]
    fn from_iterator_and_all_samples() {
        let db: TrajectoryDatabase = vec![
            (ObjectId(5), traj(&[(0.0, 0.0, 0), (1.0, 1.0, 1)])),
            (ObjectId(6), traj(&[(2.0, 2.0, 0)])),
        ]
        .into_iter()
        .collect();
        assert_eq!(db.len(), 2);
        let samples = db.all_samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].0, ObjectId(5));
    }

    #[test]
    fn snapshot_entries_are_sorted_by_object_id() {
        // `Snapshot::position_of` binary-searches on the id, so snapshot
        // extraction must emit entries in ascending id order regardless of
        // insertion order.
        let mut db = TrajectoryDatabase::new();
        for id in [40u64, 7, 23] {
            db.insert(ObjectId(id), traj(&[(id as f64, 0.0, 0)]));
        }
        let snap = db.snapshot(0, SnapshotPolicy::Interpolate);
        let ids: Vec<u64> = snap.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![7, 23, 40]);
        for id in [7u64, 23, 40] {
            assert_eq!(
                snap.position_of(ObjectId(id)),
                Some(Point::new(id as f64, 0.0))
            );
        }
    }

    #[test]
    fn snapshot_includes_interval_boundaries_only() {
        // o1 covers [0, 4]: both closed endpoints contribute a position, the
        // ticks just outside do not.
        let db = sample_db();
        assert!(db
            .snapshot(0, SnapshotPolicy::Interpolate)
            .position_of(ObjectId(1))
            .is_some());
        assert!(db
            .snapshot(4, SnapshotPolicy::Interpolate)
            .position_of(ObjectId(1))
            .is_some());
        assert!(db.snapshot(5, SnapshotPolicy::Interpolate).is_empty());
        assert!(db.snapshot(-1, SnapshotPolicy::Interpolate).is_empty());
    }

    #[test]
    fn restricting_preserves_snapshots_inside_the_window() {
        // Windowing the database must not change the `O_t` sets for times
        // inside the window (the refinement step depends on this).
        let db = sample_db();
        let restricted = db.restrict(TimeInterval::new(3, 4));
        assert_eq!(
            restricted.snapshot(3, SnapshotPolicy::ExactOnly),
            db.snapshot(3, SnapshotPolicy::ExactOnly)
        );
        assert_eq!(
            restricted.snapshot(4, SnapshotPolicy::ExactOnly),
            db.snapshot(4, SnapshotPolicy::ExactOnly)
        );
    }

    #[test]
    fn iteration_is_ordered_by_id() {
        let mut db = TrajectoryDatabase::new();
        db.insert(ObjectId(30), traj(&[(0.0, 0.0, 0)]));
        db.insert(ObjectId(10), traj(&[(0.0, 0.0, 0)]));
        db.insert(ObjectId(20), traj(&[(0.0, 0.0, 0)]));
        let ids: Vec<_> = db.object_ids().collect();
        assert_eq!(ids, vec![ObjectId(10), ObjectId(20), ObjectId(30)]);
    }
}
