//! Error types shared by the trajectory data model.

use std::fmt;

/// Convenience result alias for fallible trajectory operations.
pub type Result<T> = std::result::Result<T, TrajectoryError>;

/// Errors produced when constructing or querying trajectories and databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// A trajectory was constructed from an empty point sequence.
    EmptyTrajectory,
    /// The timestamps of a trajectory's points were not strictly increasing.
    NonMonotonicTime {
        /// Index of the offending point within the input sequence.
        index: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Index of the offending point within the input sequence.
        index: usize,
    },
    /// A location was requested outside the trajectory's time interval.
    TimeOutOfRange {
        /// The requested time point.
        requested: i64,
        /// Trajectory start time.
        start: i64,
        /// Trajectory end time.
        end: i64,
    },
    /// The requested object does not exist in the database.
    UnknownObject {
        /// The requested object id.
        id: u64,
    },
    /// An object id was inserted twice into a database.
    DuplicateObject {
        /// The duplicated object id.
        id: u64,
    },
    /// A parse error from textual trajectory input (CSV et al.).
    Parse {
        /// Line number (1-based) at which parsing failed.
        line: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// An I/O failure while opening or reading trajectory input. Distinct
    /// from [`TrajectoryError::Parse`]: a missing or unreadable file is not
    /// a malformed line, and reports no pretend line number.
    Io {
        /// The path that failed to open or read (empty when the input was an
        /// anonymous reader).
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A binary trajectory container failed to decode (bad magic, version,
    /// checksum, or structure). The message carries the backend's typed
    /// error, rendered.
    Format {
        /// The path of the offending file (empty when decoding from memory).
        path: String,
        /// Description of the decode failure.
        message: String,
    },
    /// An invalid parameter value was supplied (e.g. a non-positive λ).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        message: String,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::EmptyTrajectory => {
                write!(f, "trajectory must contain at least one point")
            }
            TrajectoryError::NonMonotonicTime { index } => write!(
                f,
                "trajectory timestamps must be strictly increasing (violated at point {index})"
            ),
            TrajectoryError::NonFiniteCoordinate { index } => write!(
                f,
                "trajectory coordinates must be finite (violated at point {index})"
            ),
            TrajectoryError::TimeOutOfRange {
                requested,
                start,
                end,
            } => write!(
                f,
                "time {requested} is outside the trajectory interval [{start}, {end}]"
            ),
            TrajectoryError::UnknownObject { id } => {
                write!(f, "object {id} is not present in the database")
            }
            TrajectoryError::DuplicateObject { id } => {
                write!(f, "object {id} is already present in the database")
            }
            TrajectoryError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TrajectoryError::Io { path, message } => {
                if path.is_empty() {
                    write!(f, "I/O error: {message}")
                } else {
                    write!(f, "cannot read {path}: {message}")
                }
            }
            TrajectoryError::Format { path, message } => {
                if path.is_empty() {
                    write!(f, "invalid trajectory container: {message}")
                } else {
                    write!(f, "invalid trajectory container {path}: {message}")
                }
            }
            TrajectoryError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(TrajectoryError, &str)> = vec![
            (TrajectoryError::EmptyTrajectory, "at least one point"),
            (
                TrajectoryError::NonMonotonicTime { index: 3 },
                "strictly increasing",
            ),
            (TrajectoryError::NonFiniteCoordinate { index: 1 }, "finite"),
            (
                TrajectoryError::TimeOutOfRange {
                    requested: 9,
                    start: 0,
                    end: 5,
                },
                "outside",
            ),
            (TrajectoryError::UnknownObject { id: 42 }, "42"),
            (TrajectoryError::DuplicateObject { id: 7 }, "already"),
            (
                TrajectoryError::Parse {
                    line: 12,
                    message: "bad x".into(),
                },
                "line 12",
            ),
            (
                TrajectoryError::InvalidParameter {
                    name: "lambda",
                    message: "must be positive".into(),
                },
                "lambda",
            ),
            (
                TrajectoryError::Io {
                    path: "/data/truck.csv".into(),
                    message: "No such file or directory".into(),
                },
                "cannot read /data/truck.csv",
            ),
            (
                TrajectoryError::Format {
                    path: "x.convoy".into(),
                    message: "bad magic".into(),
                },
                "invalid trajectory container x.convoy",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "`{text}` should mention `{needle}`");
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            TrajectoryError::UnknownObject { id: 1 },
            TrajectoryError::UnknownObject { id: 1 }
        );
        assert_ne!(
            TrajectoryError::UnknownObject { id: 1 },
            TrajectoryError::UnknownObject { id: 2 }
        );
    }
}
