//! Feed-order validation for live sample streams.
//!
//! A trajectory *feed* delivers `(object, t, x, y)` samples in time order:
//! the global timestamp never decreases, and each object's own timestamps
//! strictly increase (two objects may share a timestamp, one object may
//! not). Batch ingestion tolerates arbitrary order because it sorts at
//! [`crate::TrajectoryBuilder::build`] time; a streaming consumer cannot —
//! it closes time partitions as soon as the watermark passes them, so a
//! late sample would have to be silently dropped or would corrupt already
//! published results. [`FeedValidator`] rejects such samples at the door
//! with a precise error instead.

use crate::database::ObjectId;
use crate::time::TimePoint;
use std::collections::HashMap;

/// Why a feed sample was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeedError {
    /// The sample's timestamp is older than the feed watermark (the largest
    /// timestamp accepted so far). Feeds must be globally time-ordered.
    OutOfOrder {
        /// The object the rejected sample belongs to.
        object: ObjectId,
        /// The rejected sample's timestamp.
        t: TimePoint,
        /// The feed watermark at rejection time.
        watermark: TimePoint,
    },
    /// The object already has a sample at this timestamp. Per-object
    /// timestamps must strictly increase (matching [`crate::Trajectory`]'s
    /// construction invariant).
    ///
    /// This is the **first-sample-wins** half of the suite's duplicate
    /// policy: a live feed cannot retract a sample downstream consumers may
    /// already have acted on, so the later duplicate is refused. Batch CSV
    /// ingest sees the whole file before building and deliberately keeps the
    /// *last* occurrence instead ("later fix wins", see
    /// [`crate::TrajectoryBuilder::build`]); `traj-datasets` pins the
    /// divergence with a cross-path test, and `convoy convert` reports the
    /// collapsed-duplicate count.
    DuplicateTimestamp {
        /// The object the rejected sample belongs to.
        object: ObjectId,
        /// The duplicated timestamp.
        t: TimePoint,
    },
    /// A coordinate is NaN or infinite (matching the validation
    /// [`crate::Trajectory::from_points`] applies in batch).
    NonFiniteCoordinate {
        /// The object the rejected sample belongs to.
        object: ObjectId,
        /// The rejected sample's timestamp.
        t: TimePoint,
    },
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::OutOfOrder {
                object,
                t,
                watermark,
            } => write!(
                f,
                "out-of-order sample for {object} at t={t} (feed watermark is t={watermark})"
            ),
            FeedError::DuplicateTimestamp { object, t } => {
                write!(f, "duplicate sample for {object} at t={t}")
            }
            FeedError::NonFiniteCoordinate { object, t } => {
                write!(f, "non-finite coordinate for {object} at t={t}")
            }
        }
    }
}

impl std::error::Error for FeedError {}

/// Validates that a sample feed is time-ordered.
///
/// Tracks the global watermark (largest accepted timestamp) and each
/// object's last accepted timestamp. A rejected sample leaves the validator
/// unchanged, so a feed can recover by continuing with valid samples.
///
/// ```
/// use trajectory::{FeedValidator, ObjectId};
///
/// let mut feed = FeedValidator::new();
/// assert!(feed.admit(ObjectId(1), 0, 0.0, 0.0).is_ok());
/// assert!(feed.admit(ObjectId(2), 0, 1.0, 0.0).is_ok()); // same t, other object
/// assert!(feed.admit(ObjectId(1), 2, 0.5, 0.0).is_ok());
/// assert!(feed.admit(ObjectId(2), 1, 1.5, 0.0).is_err()); // behind the watermark
/// ```
#[derive(Debug, Clone, Default)]
pub struct FeedValidator {
    watermark: Option<TimePoint>,
    last_per_object: HashMap<ObjectId, TimePoint>,
}

/// A serializable view of a [`FeedValidator`]: the watermark plus every
/// object's last accepted timestamp, sorted by object id so the encoding is
/// deterministic. Restoring it reproduces the validator's decisions exactly —
/// in particular, re-feeding a log through a restored validator re-rejects
/// every sample it has already accepted (older than the watermark, or a
/// duplicate at it), which is what makes resume-by-replay exactly-once.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FeedValidatorSnapshot {
    /// The largest accepted timestamp, `None` before the first sample.
    pub watermark: Option<TimePoint>,
    /// Each object's last accepted timestamp, ascending by object id.
    pub last_per_object: Vec<(ObjectId, TimePoint)>,
}

impl FeedValidator {
    /// Creates a validator that has seen no samples.
    pub fn new() -> Self {
        FeedValidator::default()
    }

    /// Exports the validator's state for checkpointing (objects ascending).
    pub fn export_state(&self) -> FeedValidatorSnapshot {
        let mut last_per_object: Vec<(ObjectId, TimePoint)> =
            self.last_per_object.iter().map(|(&o, &t)| (o, t)).collect();
        last_per_object.sort_unstable_by_key(|&(o, _)| o);
        FeedValidatorSnapshot {
            watermark: self.watermark,
            last_per_object,
        }
    }

    /// Rebuilds a validator from an exported view.
    pub fn from_state(snapshot: FeedValidatorSnapshot) -> Self {
        FeedValidator {
            watermark: snapshot.watermark,
            last_per_object: snapshot.last_per_object.into_iter().collect(),
        }
    }

    /// The largest timestamp accepted so far, or `None` before the first
    /// sample.
    pub fn watermark(&self) -> Option<TimePoint> {
        self.watermark
    }

    /// The last accepted timestamp of `object`, if any.
    pub fn last_timestamp(&self, object: ObjectId) -> Option<TimePoint> {
        self.last_per_object.get(&object).copied()
    }

    /// Number of distinct objects seen so far.
    pub fn objects_seen(&self) -> usize {
        self.last_per_object.len()
    }

    /// Forgets per-object bookkeeping that can no longer influence
    /// validation, returning the number of entries dropped.
    ///
    /// Only objects whose last sample sits exactly on the watermark can
    /// still collide with a future sample (future timestamps are `>=` the
    /// watermark, so a duplicate requires equality); everything older is
    /// dead weight. Long-lived feeds with object churn call this
    /// periodically so the validator's memory tracks the *active* objects,
    /// not every object ever seen.
    pub fn compact(&mut self) -> usize {
        let Some(watermark) = self.watermark else {
            return 0;
        };
        let before = self.last_per_object.len();
        self.last_per_object.retain(|_, &mut t| t == watermark);
        before - self.last_per_object.len()
    }

    /// Validates one sample, updating the watermark on acceptance. Rejection
    /// leaves the validator's state untouched.
    pub fn admit(
        &mut self,
        object: ObjectId,
        t: TimePoint,
        x: f64,
        y: f64,
    ) -> Result<(), FeedError> {
        if !(x.is_finite() && y.is_finite()) {
            return Err(FeedError::NonFiniteCoordinate { object, t });
        }
        if let Some(watermark) = self.watermark {
            if t < watermark {
                return Err(FeedError::OutOfOrder {
                    object,
                    t,
                    watermark,
                });
            }
        }
        if self.last_per_object.get(&object) == Some(&t) {
            return Err(FeedError::DuplicateTimestamp { object, t });
        }
        self.watermark = Some(t);
        self.last_per_object.insert(object, t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_time_ordered_samples() {
        let mut feed = FeedValidator::new();
        assert_eq!(feed.watermark(), None);
        feed.admit(ObjectId(1), 0, 0.0, 0.0).unwrap();
        feed.admit(ObjectId(2), 0, 1.0, 1.0).unwrap();
        feed.admit(ObjectId(1), 1, 0.5, 0.0).unwrap();
        feed.admit(ObjectId(3), 5, 2.0, 2.0).unwrap(); // gaps are fine
        assert_eq!(feed.watermark(), Some(5));
        assert_eq!(feed.last_timestamp(ObjectId(1)), Some(1));
        assert_eq!(feed.objects_seen(), 3);
    }

    #[test]
    fn rejects_samples_behind_the_watermark() {
        let mut feed = FeedValidator::new();
        feed.admit(ObjectId(1), 5, 0.0, 0.0).unwrap();
        let err = feed.admit(ObjectId(2), 3, 0.0, 0.0).unwrap_err();
        assert_eq!(
            err,
            FeedError::OutOfOrder {
                object: ObjectId(2),
                t: 3,
                watermark: 5
            }
        );
        // Rejection leaves the validator usable.
        feed.admit(ObjectId(2), 5, 0.0, 0.0).unwrap();
        assert_eq!(feed.watermark(), Some(5));
        // Negative timestamps are fine as long as they are first.
        let mut feed = FeedValidator::new();
        feed.admit(ObjectId(1), -10, 0.0, 0.0).unwrap();
        assert!(feed.admit(ObjectId(1), -11, 0.0, 0.0).is_err());
    }

    #[test]
    fn rejects_duplicate_per_object_timestamps() {
        let mut feed = FeedValidator::new();
        feed.admit(ObjectId(1), 2, 0.0, 0.0).unwrap();
        let err = feed.admit(ObjectId(1), 2, 9.0, 9.0).unwrap_err();
        assert_eq!(
            err,
            FeedError::DuplicateTimestamp {
                object: ObjectId(1),
                t: 2
            }
        );
        // A different object may reuse the timestamp.
        feed.admit(ObjectId(2), 2, 9.0, 9.0).unwrap();
    }

    #[test]
    fn rejects_non_finite_coordinates() {
        let mut feed = FeedValidator::new();
        for (x, y) in [
            (f64::NAN, 0.0),
            (0.0, f64::NAN),
            (f64::INFINITY, 0.0),
            (0.0, f64::NEG_INFINITY),
        ] {
            let err = feed.admit(ObjectId(1), 0, x, y).unwrap_err();
            assert_eq!(
                err,
                FeedError::NonFiniteCoordinate {
                    object: ObjectId(1),
                    t: 0
                }
            );
        }
        // The validator saw nothing: the watermark is still unset.
        assert_eq!(feed.watermark(), None);
        feed.admit(ObjectId(1), 0, 0.0, 0.0).unwrap();
    }

    #[test]
    fn compact_forgets_only_stale_objects() {
        let mut feed = FeedValidator::new();
        assert_eq!(feed.compact(), 0, "nothing to forget before any sample");
        feed.admit(ObjectId(1), 0, 0.0, 0.0).unwrap();
        feed.admit(ObjectId(2), 5, 0.0, 0.0).unwrap();
        feed.admit(ObjectId(3), 5, 1.0, 0.0).unwrap();
        assert_eq!(feed.compact(), 1, "only o1 (behind the watermark) goes");
        assert_eq!(feed.objects_seen(), 2);
        // Validation semantics are unchanged: duplicates at the watermark
        // still bounce, and the forgotten object may resume.
        assert!(feed.admit(ObjectId(2), 5, 9.0, 9.0).is_err());
        assert!(feed.admit(ObjectId(1), 5, 9.0, 9.0).is_ok());
        assert!(
            feed.admit(ObjectId(1), 4, 0.0, 0.0).is_err(),
            "watermark still enforced"
        );
    }

    #[test]
    fn state_round_trip_preserves_validation_decisions() {
        let mut feed = FeedValidator::new();
        feed.admit(ObjectId(3), 0, 0.0, 0.0).unwrap();
        feed.admit(ObjectId(1), 4, 0.0, 0.0).unwrap();
        feed.admit(ObjectId(2), 4, 1.0, 0.0).unwrap();
        let snapshot = feed.export_state();
        assert_eq!(snapshot.watermark, Some(4));
        assert_eq!(
            snapshot.last_per_object,
            vec![(ObjectId(1), 4), (ObjectId(2), 4), (ObjectId(3), 0)],
            "entries are sorted by object id"
        );
        let mut restored = FeedValidator::from_state(snapshot);
        // Re-feeding the already-accepted log is rejected sample for sample…
        assert!(restored.admit(ObjectId(3), 0, 0.0, 0.0).is_err());
        assert!(restored.admit(ObjectId(1), 4, 0.0, 0.0).is_err());
        assert!(restored.admit(ObjectId(2), 4, 1.0, 0.0).is_err());
        // …while genuinely new samples are accepted, exactly as the original.
        assert!(restored.admit(ObjectId(3), 4, 2.0, 0.0).is_ok());
        assert!(restored.admit(ObjectId(1), 5, 0.0, 0.0).is_ok());
        assert_eq!(restored.watermark(), Some(5));
    }

    #[test]
    fn errors_render_with_context() {
        let text = FeedError::OutOfOrder {
            object: ObjectId(7),
            t: 3,
            watermark: 9,
        }
        .to_string();
        assert!(text.contains("o7") && text.contains("t=3") && text.contains("t=9"));
    }
}
